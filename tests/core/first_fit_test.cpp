#include "core/first_fit.hpp"

#include <gtest/gtest.h>

namespace aeva::core {
namespace {

using workload::ClassCounts;
using workload::ProfileClass;

std::vector<VmRequest> make_request(int count, ProfileClass profile) {
  std::vector<VmRequest> vms;
  for (int i = 0; i < count; ++i) {
    VmRequest vm;
    vm.id = i + 1;
    vm.profile = profile;
    vms.push_back(vm);
  }
  return vms;
}

std::vector<ServerState> make_servers(int count) {
  std::vector<ServerState> servers;
  for (int i = 0; i < count; ++i) {
    servers.push_back(ServerState{i, ClassCounts{}, false});
  }
  return servers;
}

TEST(FirstFit, NamesMatchPaper) {
  EXPECT_EQ(FirstFitAllocator(1).name(), "FF");
  EXPECT_EQ(FirstFitAllocator(2).name(), "FF-2");
  EXPECT_EQ(FirstFitAllocator(3).name(), "FF-3");
}

TEST(FirstFit, CapacityIsMultiplexTimesCpus) {
  EXPECT_EQ(FirstFitAllocator(1).server_capacity(), 4);
  EXPECT_EQ(FirstFitAllocator(2).server_capacity(), 8);
  EXPECT_EQ(FirstFitAllocator(3).server_capacity(), 12);
  EXPECT_EQ(FirstFitAllocator(2, 8).server_capacity(), 16);
}

TEST(FirstFit, FillsFirstServerFirst) {
  const FirstFitAllocator ff(1);
  const auto result =
      ff.allocate(make_request(3, ProfileClass::kCpu), make_servers(3));
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.placements.size(), 3u);
  for (const Placement& p : result.placements) {
    EXPECT_EQ(p.server_id, 0);
  }
}

TEST(FirstFit, OverflowsToNextServer) {
  const FirstFitAllocator ff(1);  // 4 VMs per server
  const auto result =
      ff.allocate(make_request(6, ProfileClass::kMem), make_servers(2));
  ASSERT_TRUE(result.complete);
  int on_first = 0;
  int on_second = 0;
  for (const Placement& p : result.placements) {
    (p.server_id == 0 ? on_first : on_second) += 1;
  }
  EXPECT_EQ(on_first, 4);
  EXPECT_EQ(on_second, 2);
}

TEST(FirstFit, RespectsExistingAllocations) {
  const FirstFitAllocator ff(1);
  std::vector<ServerState> servers = make_servers(2);
  servers[0].allocated = ClassCounts{3, 0, 0};  // one slot left
  const auto result =
      ff.allocate(make_request(2, ProfileClass::kIo), servers);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.placements[0].server_id, 0);
  EXPECT_EQ(result.placements[1].server_id, 1);
}

TEST(FirstFit, AllOrNothingWhenFull) {
  const FirstFitAllocator ff(1);
  std::vector<ServerState> servers = make_servers(1);
  servers[0].allocated = ClassCounts{2, 1, 0};  // one slot left
  const auto result =
      ff.allocate(make_request(2, ProfileClass::kCpu), servers);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.placements.empty());
}

TEST(FirstFit, MultiplexingRaisesCapacity) {
  const FirstFitAllocator ff3(3);  // 12 per server
  const auto result =
      ff3.allocate(make_request(12, ProfileClass::kCpu), make_servers(1));
  ASSERT_TRUE(result.complete);
  for (const Placement& p : result.placements) {
    EXPECT_EQ(p.server_id, 0);
  }
}

TEST(FirstFit, EmptyRequestIsComplete) {
  const FirstFitAllocator ff(1);
  const auto result = ff.allocate({}, make_servers(1));
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.placements.empty());
}

TEST(FirstFit, NoServersMeansIncomplete) {
  const FirstFitAllocator ff(1);
  const auto result = ff.allocate(make_request(1, ProfileClass::kCpu), {});
  EXPECT_FALSE(result.complete);
}

TEST(FirstFit, IgnoresProfiles) {
  // First-fit is blind to application classes: mixed requests pack the
  // same way as homogeneous ones.
  const FirstFitAllocator ff(1);
  std::vector<VmRequest> mixed;
  for (int i = 0; i < 4; ++i) {
    VmRequest vm;
    vm.id = i;
    vm.profile = workload::kAllProfileClasses[static_cast<std::size_t>(i) % 3];
    mixed.push_back(vm);
  }
  const auto result = ff.allocate(mixed, make_servers(2));
  ASSERT_TRUE(result.complete);
  for (const Placement& p : result.placements) {
    EXPECT_EQ(p.server_id, 0);
  }
}

TEST(FirstFit, RejectsBadConstruction) {
  EXPECT_THROW(FirstFitAllocator(0), std::invalid_argument);
  EXPECT_THROW(FirstFitAllocator(1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace aeva::core
