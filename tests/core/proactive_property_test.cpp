/// Property suites for the proactive allocator: invariants that must hold
/// for any request and any cluster state, exercised over randomized
/// scenarios.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/proactive.hpp"
#include "testing/shared_db.hpp"
#include "util/rng.hpp"

namespace aeva::core {
namespace {

using workload::ClassCounts;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

struct Scenario {
  std::vector<VmRequest> vms;
  std::vector<ServerState> servers;
  double alpha = 0.5;
};

Scenario random_scenario(util::Rng& rng) {
  Scenario scenario;
  scenario.alpha = rng.uniform(0.0, 1.0);
  const int vm_count = static_cast<int>(rng.uniform_int(1, 6));
  for (int i = 0; i < vm_count; ++i) {
    VmRequest vm;
    vm.id = i + 1;
    vm.profile = workload::kAllProfileClasses[static_cast<std::size_t>(
        rng.uniform_int(0, 2))];
    // Mix of generous and occasionally binding deadlines.
    vm.max_exec_time_s =
        rng.bernoulli(0.3) ? rng.uniform(1000.0, 4000.0) : 1e12;
    scenario.vms.push_back(vm);
  }
  const int server_count = static_cast<int>(rng.uniform_int(1, 8));
  const auto& base = db().base();
  for (int s = 0; s < server_count; ++s) {
    ServerState server;
    server.id = s;
    if (rng.bernoulli(0.5)) {
      server.allocated.cpu =
          static_cast<int>(rng.uniform_int(0, base.cpu.os()));
      server.allocated.mem =
          static_cast<int>(rng.uniform_int(0, base.mem.os()));
      server.allocated.io =
          static_cast<int>(rng.uniform_int(0, base.io.os()));
      server.powered = server.allocated.total() > 0;
    }
    scenario.servers.push_back(server);
  }
  return scenario;
}

class ProactiveProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProactiveProperty, PlacementsAreWellFormed) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 25; ++round) {
    const Scenario scenario = random_scenario(rng);
    ProactiveConfig config;
    config.alpha = scenario.alpha;
    const ProactiveAllocator allocator(db(), config);
    const AllocationResult result =
        allocator.allocate(scenario.vms, scenario.servers);
    if (!result.complete) {
      EXPECT_TRUE(result.placements.empty());
      continue;
    }
    // Every VM placed exactly once, on a known server.
    std::set<std::int64_t> placed;
    std::map<int, ClassCounts> mixes;
    for (const ServerState& server : scenario.servers) {
      mixes[server.id] = server.allocated;
    }
    for (const Placement& p : result.placements) {
      EXPECT_TRUE(placed.insert(p.vm_id).second);
      ASSERT_TRUE(mixes.count(p.server_id));
      ++mixes[p.server_id].of(
          scenario.vms[static_cast<std::size_t>(p.vm_id - 1)].profile);
    }
    EXPECT_EQ(placed.size(), scenario.vms.size());
    // Resulting mixes stay inside the OS box.
    const CostModel& model = allocator.cost_model();
    for (const auto& [id, mix] : mixes) {
      EXPECT_TRUE(model.feasible(mix)) << "server " << id;
    }
  }
}

TEST_P(ProactiveProperty, QosHonouredWheneverReported) {
  util::Rng rng(GetParam() ^ 0xfeedULL);
  for (int round = 0; round < 25; ++round) {
    const Scenario scenario = random_scenario(rng);
    ProactiveConfig config;
    config.alpha = scenario.alpha;
    const ProactiveAllocator allocator(db(), config);
    const AllocationResult result =
        allocator.allocate(scenario.vms, scenario.servers);
    if (!result.complete || !result.satisfied_qos) {
      continue;
    }
    // Reconstruct final mixes and verify every VM's estimate fits its
    // deadline under the chosen placement.
    std::map<int, ClassCounts> mixes;
    for (const ServerState& server : scenario.servers) {
      mixes[server.id] = server.allocated;
    }
    for (const Placement& p : result.placements) {
      ++mixes[p.server_id].of(
          scenario.vms[static_cast<std::size_t>(p.vm_id - 1)].profile);
    }
    // Group VM deadlines and estimated slots per (server, class); the
    // allocator promises a perfect matching, which for equal estimates
    // within one server reduces to the per-VM check.
    for (const Placement& p : result.placements) {
      const VmRequest& vm =
          scenario.vms[static_cast<std::size_t>(p.vm_id - 1)];
      const double est = allocator.cost_model().vm_time_s(
          vm.profile, mixes[p.server_id]);
      EXPECT_LE(est, vm.max_exec_time_s + 1e-6)
          << "vm " << vm.id << " on server " << p.server_id;
    }
  }
}

TEST_P(ProactiveProperty, DeterministicAcrossIdenticalCalls) {
  util::Rng rng(GetParam() ^ 0xbeefULL);
  const Scenario scenario = random_scenario(rng);
  ProactiveConfig config;
  config.alpha = scenario.alpha;
  const ProactiveAllocator allocator(db(), config);
  const AllocationResult a =
      allocator.allocate(scenario.vms, scenario.servers);
  const AllocationResult b =
      allocator.allocate(scenario.vms, scenario.servers);
  EXPECT_EQ(a.complete, b.complete);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].vm_id, b.placements[i].vm_id);
    EXPECT_EQ(a.placements[i].server_id, b.placements[i].server_id);
  }
  EXPECT_DOUBLE_EQ(a.score.combined, b.score.combined);
}

TEST_P(ProactiveProperty, AlphaZeroMinimizesTimeAmongAlphas) {
  // PA-0's estimated mean time is never beaten by other alphas on the
  // same scenario (it optimizes exactly that metric over the same
  // candidate set).
  util::Rng rng(GetParam() ^ 0x5a5aULL);
  for (int round = 0; round < 10; ++round) {
    Scenario scenario = random_scenario(rng);
    for (VmRequest& vm : scenario.vms) {
      vm.max_exec_time_s = 1e12;  // QoS off: identical candidate sets
    }
    double best_time = 0.0;
    double pa0_time = 0.0;
    bool pa0_complete = false;
    bool all_complete = true;
    for (const double alpha : {0.0, 0.5, 1.0}) {
      ProactiveConfig config;
      config.alpha = alpha;
      const ProactiveAllocator allocator(db(), config);
      const AllocationResult result =
          allocator.allocate(scenario.vms, scenario.servers);
      if (!result.complete) {
        all_complete = false;
        break;
      }
      if (alpha == 0.0) {
        pa0_time = result.score.est_time_s;
        pa0_complete = true;
      } else {
        best_time = best_time == 0.0
                        ? result.score.est_time_s
                        : std::min(best_time, result.score.est_time_s);
      }
    }
    if (all_complete && pa0_complete && best_time > 0.0) {
      EXPECT_LE(pa0_time, best_time + 1e-6);
    }
  }
}

TEST_P(ProactiveProperty, AlphaOneMinimizesEnergyAmongAlphas) {
  util::Rng rng(GetParam() ^ 0xa5a5ULL);
  for (int round = 0; round < 10; ++round) {
    Scenario scenario = random_scenario(rng);
    for (VmRequest& vm : scenario.vms) {
      vm.max_exec_time_s = 1e12;
    }
    double pa1_energy = 0.0;
    double other_best = 0.0;
    bool all_complete = true;
    for (const double alpha : {1.0, 0.5, 0.0}) {
      ProactiveConfig config;
      config.alpha = alpha;
      const ProactiveAllocator allocator(db(), config);
      const AllocationResult result =
          allocator.allocate(scenario.vms, scenario.servers);
      if (!result.complete) {
        all_complete = false;
        break;
      }
      if (alpha == 1.0) {
        pa1_energy = result.score.est_energy_j;
      } else {
        other_best = other_best == 0.0
                         ? result.score.est_energy_j
                         : std::min(other_best, result.score.est_energy_j);
      }
    }
    if (all_complete && other_best > 0.0) {
      EXPECT_LE(pa1_energy, other_best + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProactiveProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace aeva::core
