#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include "testing/shared_db.hpp"

namespace aeva::core {
namespace {

using workload::ClassCounts;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

TEST(CostModel, EmptyMixIsFeasible) {
  const CostModel model(db());
  EXPECT_TRUE(model.feasible(ClassCounts{}));
}

TEST(CostModel, FeasibilityBoundedByOsBox) {
  const CostModel model(db());
  const auto& base = db().base();
  EXPECT_TRUE(model.feasible(
      ClassCounts{base.cpu.os(), base.mem.os(), base.io.os()}));
  EXPECT_FALSE(model.feasible(ClassCounts{base.cpu.os() + 1, 0, 0}));
  EXPECT_FALSE(model.feasible(ClassCounts{0, base.mem.os() + 1, 0}));
  EXPECT_FALSE(model.feasible(ClassCounts{0, 0, base.io.os() + 1}));
}

TEST(CostModel, FeasibilityBoundedByVmCap) {
  const CostModel tight(db(), 2);
  EXPECT_TRUE(tight.feasible(ClassCounts{1, 1, 0}));
  EXPECT_FALSE(tight.feasible(ClassCounts{1, 1, 1}));
}

TEST(CostModel, NegativeCountsInfeasible) {
  const CostModel model(db());
  EXPECT_FALSE(model.feasible(ClassCounts{-1, 1, 1}));
}

TEST(CostModel, VmTimeMatchesDatabaseEstimate) {
  const CostModel model(db());
  const ClassCounts mix{2, 1, 0};
  EXPECT_DOUBLE_EQ(model.vm_time_s(ProfileClass::kCpu, mix),
                   db().estimate(mix).time_of(ProfileClass::kCpu));
}

TEST(CostModel, VmTimeRequiresClassPresent) {
  const CostModel model(db());
  EXPECT_THROW((void)model.vm_time_s(ProfileClass::kIo, ClassCounts{1, 0, 0}),
               std::invalid_argument);
}

TEST(CostModel, MixEnergyZeroForEmpty) {
  const CostModel model(db());
  EXPECT_DOUBLE_EQ(model.mix_energy_j(ClassCounts{}), 0.0);
  EXPECT_GT(model.mix_energy_j(ClassCounts{1, 0, 0}), 0.0);
}

TEST(CostModel, DynamicEnergyExcludesIdleBaseline) {
  const CostModel model(db());
  const ClassCounts mix{1, 0, 0};
  const modeldb::Record rec = db().estimate(mix);
  EXPECT_NEAR(model.dynamic_energy_j(mix),
              rec.energy_j - 125.0 * rec.time_s, rec.energy_j * 0.01);
  EXPECT_LT(model.dynamic_energy_j(mix), model.mix_energy_j(mix));
  EXPECT_DOUBLE_EQ(model.dynamic_energy_j(ClassCounts{}), 0.0);
}

TEST(CostModel, SoloTimesComeFromTableI) {
  const CostModel model(db());
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    EXPECT_DOUBLE_EQ(model.solo_time_s(profile),
                     db().base().of(profile).solo_time_s);
  }
}

TEST(CostModel, SoloEnergyIsSingleVmRecord) {
  const CostModel model(db());
  ClassCounts solo;
  solo.of(ProfileClass::kMem) = 1;
  EXPECT_DOUBLE_EQ(model.solo_energy_j(ProfileClass::kMem),
                   db().estimate(solo).energy_j);
}

TEST(CostModel, ReferencesAreClassWeightedMeans) {
  const CostModel model(db());
  const ClassCounts request{1, 1, 0};
  EXPECT_NEAR(model.time_reference_s(request),
              (model.solo_time_s(ProfileClass::kCpu) +
               model.solo_time_s(ProfileClass::kMem)) /
                  2.0,
              1e-9);
  EXPECT_NEAR(model.energy_reference_j(request),
              (model.solo_energy_j(ProfileClass::kCpu) +
               model.solo_energy_j(ProfileClass::kMem)) /
                  2.0,
              1e-6);
}

TEST(CostModel, ReferencesRejectEmptyRequest) {
  const CostModel model(db());
  EXPECT_THROW((void)model.time_reference_s(ClassCounts{}),
               std::invalid_argument);
  EXPECT_THROW((void)model.energy_reference_j(ClassCounts{}),
               std::invalid_argument);
}

TEST(CostModel, RejectsBadConstruction) {
  EXPECT_THROW(CostModel(db(), 0), std::invalid_argument);
  EXPECT_THROW(CostModel(db(), 16, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace aeva::core
