/// Failure-domain spread constraint (docs/RESILIENCE.md, "Correlated
/// failure domains") across the allocator family: hard per-domain caps,
/// the terminal kSpreadInfeasible width reject, the blast-radius
/// concentration penalty, and the bit-identity guarantees of disabled or
/// non-binding configs.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "core/baselines.hpp"
#include "core/first_fit.hpp"
#include "core/incremental.hpp"
#include "core/proactive.hpp"
#include "testing/shared_db.hpp"

namespace aeva::core {
namespace {

using workload::ClassCounts;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

std::vector<VmRequest> make_request(
    std::initializer_list<ProfileClass> profiles, double qos_s = 1e12) {
  std::vector<VmRequest> vms;
  for (const ProfileClass profile : profiles) {
    VmRequest vm;
    vm.id = static_cast<std::int64_t>(vms.size()) + 1;
    vm.profile = profile;
    vm.max_exec_time_s = qos_s;
    vms.push_back(vm);
  }
  return vms;
}

std::vector<ServerState> empty_servers(int count) {
  std::vector<ServerState> servers;
  for (int i = 0; i < count; ++i) {
    servers.push_back(ServerState{i, ClassCounts{}, false});
  }
  return servers;
}

/// Two-servers-per-domain map over `server_count` consecutive ids.
SpreadConfig paired_domains(int server_count, int max_vms_per_domain,
                            double blast_penalty = 0.0) {
  SpreadConfig spread;
  spread.enabled = true;
  spread.max_vms_per_domain = max_vms_per_domain;
  spread.blast_penalty = blast_penalty;
  spread.domain_count = (server_count + 1) / 2;
  for (int s = 0; s < server_count; ++s) {
    spread.domain_of_server.push_back(s / 2);
  }
  return spread;
}

/// The request's VM count per domain under `spread`, from placements.
std::map<int, int> domain_histogram(const AllocationResult& result,
                                    const SpreadConfig& spread) {
  std::map<int, int> per_domain;
  for (const Placement& p : result.placements) {
    ++per_domain[spread.domain_of(p.server_id)];
  }
  return per_domain;
}

// --- Reject taxonomy -------------------------------------------------------

TEST(SpreadTaxonomy, SpreadInfeasibleIsATerminalNamedReason) {
  EXPECT_STREQ(to_string(RejectReason::kSpreadInfeasible),
               "spread-infeasible");
  EXPECT_FALSE(is_retryable(RejectReason::kSpreadInfeasible));
  EXPECT_STREQ(retry_class(RejectReason::kSpreadInfeasible), "terminal");
  // Appended at the end of the enum so existing rejects_by_reason
  // tallies (snapshots, serve metrics) keep their slot indices.
  EXPECT_EQ(static_cast<std::size_t>(RejectReason::kSpreadInfeasible),
            kRejectReasonCount - 1);
}

TEST(SpreadTaxonomy, EveryReasonRendersInTheRejectTables) {
  // The datacenter_sim and aeva_serve reject tables iterate
  // [0, kRejectReasonCount) through to_string/retry_class; no slot may
  // fall through to the "?" default or an unclassified retry label.
  for (std::size_t i = 0; i < kRejectReasonCount; ++i) {
    const auto reason = static_cast<RejectReason>(i);
    EXPECT_STRNE(to_string(reason), "?") << "slot " << i;
    const std::string klass = retry_class(reason);
    EXPECT_TRUE(klass == "retryable" || klass == "terminal")
        << "slot " << i << ": " << klass;
  }
}

// --- SpreadConfig ----------------------------------------------------------

TEST(SpreadConfig_, DomainLookupTreatsUnmappedAsUnconstrained) {
  const SpreadConfig spread = paired_domains(4, 2);
  EXPECT_EQ(spread.domain_of(0), 0);
  EXPECT_EQ(spread.domain_of(3), 1);
  EXPECT_EQ(spread.domain_of(-1), -1);
  EXPECT_EQ(spread.domain_of(99), -1);
}

TEST(SpreadConfig_, FeasibleWidthBoundsTheRequest) {
  SpreadConfig spread = paired_domains(4, 2);  // 2 domains × cap 2 = 4
  EXPECT_TRUE(spread.feasible_width(4));
  EXPECT_FALSE(spread.feasible_width(5));
  spread.enabled = false;  // disabled configs never reject
  EXPECT_TRUE(spread.feasible_width(5000));
}

// --- ProactiveAllocator ----------------------------------------------------

TEST(SpreadProactive, QuotaCapsEveryDomain) {
  ProactiveConfig config;
  config.alpha = 1.0;  // energy goal: would consolidate without the cap
  config.spread = paired_domains(8, 1);
  const ProactiveAllocator allocator(db(), config);
  const auto vms = make_request({ProfileClass::kCpu, ProfileClass::kCpu,
                                 ProfileClass::kCpu, ProfileClass::kMem});
  const auto result = allocator.allocate(vms, empty_servers(8));
  ASSERT_TRUE(result.complete);
  for (const auto& [domain, count] : domain_histogram(result, config.spread)) {
    EXPECT_LE(count, 1) << "domain " << domain;
  }
}

TEST(SpreadProactive, TooWideRequestIsTerminallyRejected) {
  ProactiveConfig config;
  config.spread = paired_domains(2, 1);  // 1 domain × cap 1
  config.degrade_to_first_fit = true;    // fallback must not resurrect it
  const ProactiveAllocator allocator(db(), config);
  const auto vms = make_request({ProfileClass::kCpu, ProfileClass::kMem});
  const auto result = allocator.allocate(vms, empty_servers(2));
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.outcome.path, AllocationPath::kRejected);
  EXPECT_EQ(result.outcome.reason, RejectReason::kSpreadInfeasible);
  EXPECT_EQ(result.partitions_examined, 0u) << "reject precedes the search";
  EXPECT_FALSE(is_retryable(RejectReason::kSpreadInfeasible));
}

TEST(SpreadProactive, BlastPenaltyDisperses) {
  // Pure energy goal co-locates both VMs on one server; a dominant
  // concentration penalty flips the choice to one VM per domain.
  const auto vms = make_request({ProfileClass::kCpu, ProfileClass::kCpu});
  ProactiveConfig config;
  config.alpha = 1.0;
  config.spread = paired_domains(4, 2, 0.0);
  const auto dense =
      ProactiveAllocator(db(), config).allocate(vms, empty_servers(4));
  config.spread.blast_penalty = 100.0;
  const auto spread_out =
      ProactiveAllocator(db(), config).allocate(vms, empty_servers(4));
  ASSERT_TRUE(dense.complete);
  ASSERT_TRUE(spread_out.complete);
  EXPECT_EQ(domain_histogram(dense, config.spread).size(), 1u)
      << "energy goal consolidates when the penalty is off";
  EXPECT_EQ(domain_histogram(spread_out, config.spread).size(), 2u)
      << "the Herfindahl penalty dominates and disperses the request";
}

TEST(SpreadProactive, NonBindingSpreadMatchesSpreadFreeSearch) {
  // Domains mapped but the cap never binds and the penalty is zero: the
  // search must return the spread-free result bit-for-bit.
  const auto vms = make_request({ProfileClass::kCpu, ProfileClass::kCpu,
                                 ProfileClass::kMem, ProfileClass::kIo});
  ProactiveConfig config;
  config.alpha = 0.5;
  const auto baseline =
      ProactiveAllocator(db(), config).allocate(vms, empty_servers(6));
  config.spread = paired_domains(6, static_cast<int>(vms.size()));
  const auto lenient =
      ProactiveAllocator(db(), config).allocate(vms, empty_servers(6));
  ASSERT_TRUE(baseline.complete);
  ASSERT_TRUE(lenient.complete);
  ASSERT_EQ(baseline.placements.size(), lenient.placements.size());
  for (std::size_t i = 0; i < baseline.placements.size(); ++i) {
    EXPECT_EQ(baseline.placements[i].vm_id, lenient.placements[i].vm_id);
    EXPECT_EQ(baseline.placements[i].server_id,
              lenient.placements[i].server_id);
  }
  EXPECT_EQ(baseline.score.combined, lenient.score.combined);
  EXPECT_EQ(baseline.score.est_energy_j, lenient.score.est_energy_j);
}

TEST(SpreadProactive, OptimizedPathsMatchSerialReference) {
  // The spread quota and penalty must not break the serial/optimized
  // equivalence: grouped, memoized, pruned search vs. the plain scorer.
  const auto vms = make_request({ProfileClass::kCpu, ProfileClass::kCpu,
                                 ProfileClass::kMem, ProfileClass::kMem,
                                 ProfileClass::kIo});
  ProactiveConfig config;
  config.alpha = 0.5;
  config.spread = paired_domains(6, 2, 2.5);
  config.force_serial = true;
  const auto serial =
      ProactiveAllocator(db(), config).allocate(vms, empty_servers(6));
  config.force_serial = false;
  const auto optimized =
      ProactiveAllocator(db(), config).allocate(vms, empty_servers(6));
  ASSERT_TRUE(serial.complete);
  ASSERT_TRUE(optimized.complete);
  ASSERT_EQ(serial.placements.size(), optimized.placements.size());
  for (std::size_t i = 0; i < serial.placements.size(); ++i) {
    EXPECT_EQ(serial.placements[i].vm_id, optimized.placements[i].vm_id);
    EXPECT_EQ(serial.placements[i].server_id,
              optimized.placements[i].server_id);
  }
  EXPECT_EQ(serial.score.combined, optimized.score.combined);
  EXPECT_EQ(serial.score.est_time_s, optimized.score.est_time_s);
  EXPECT_EQ(serial.score.est_energy_j, optimized.score.est_energy_j);
}

TEST(SpreadProactive, RejectsBadSpreadConfig) {
  ProactiveConfig config;
  config.spread.enabled = true;
  config.spread.max_vms_per_domain = 0;
  config.spread.domain_count = 2;
  EXPECT_THROW(ProactiveAllocator(db(), config), std::invalid_argument);
  config.spread.max_vms_per_domain = 1;
  config.spread.domain_count = 0;
  EXPECT_THROW(ProactiveAllocator(db(), config), std::invalid_argument);
}

// --- First-fit and the degradation leg -------------------------------------

TEST(SpreadFirstFit, QuotaForcesOnePerDomain) {
  FirstFitAllocator allocator(2);
  allocator.set_spread(paired_domains(6, 1));
  const auto vms = make_request({ProfileClass::kCpu, ProfileClass::kCpu,
                                 ProfileClass::kCpu});
  const auto result = allocator.allocate(vms, empty_servers(6));
  ASSERT_TRUE(result.complete);
  for (const auto& [domain, count] :
       domain_histogram(result, allocator.spread())) {
    EXPECT_EQ(count, 1) << "domain " << domain;
  }
}

TEST(SpreadFirstFit, TooWideRequestRejectsSpreadInfeasible) {
  FirstFitAllocator allocator(2);
  allocator.set_spread(paired_domains(2, 1));  // capacity for 1 VM total
  const auto vms = make_request({ProfileClass::kCpu, ProfileClass::kMem});
  const auto result = allocator.allocate(vms, empty_servers(2));
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.outcome.reason, RejectReason::kSpreadInfeasible);
}

TEST(SpreadFirstFit, QuotaExhaustionIsAllOrNothing) {
  // Width is feasible but capacity inside the allowed domains is not: the
  // request must wait (retryable kNoFeasibleServer), not place partially.
  FirstFitAllocator allocator(1, 1);  // one slot per server
  SpreadConfig spread = paired_domains(4, 2);
  spread.domain_of_server = {0, 0, 0, 0};  // every server in domain 0
  spread.domain_count = 2;                 // width check passes (2 × 2)
  allocator.set_spread(spread);
  const auto vms = make_request({ProfileClass::kCpu, ProfileClass::kCpu,
                                 ProfileClass::kCpu});
  const auto result = allocator.allocate(vms, empty_servers(4));
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.placements.empty());
  EXPECT_EQ(result.outcome.reason, RejectReason::kNoFeasibleServer);
}

TEST(SpreadFirstFit, DegradationLegInheritsTheConstraint) {
  // Drive the proactive search into its first-fit fallback (zero QoS
  // headroom) and check the fallback still honors the domain cap.
  ProactiveConfig config;
  config.alpha = 0.5;
  config.degrade_to_first_fit = true;
  config.spread = paired_domains(8, 1);
  const ProactiveAllocator allocator(db(), config);
  const auto vms = make_request(
      {ProfileClass::kCpu, ProfileClass::kCpu, ProfileClass::kCpu}, 1e-9);
  const auto result = allocator.allocate(vms, empty_servers(8));
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.outcome.path, AllocationPath::kFallbackFirstFit);
  for (const auto& [domain, count] : domain_histogram(result, config.spread)) {
    EXPECT_LE(count, 1) << "domain " << domain;
  }
}

// --- Baselines -------------------------------------------------------------

TEST(SpreadBaselines, SlotFitHonorsQuotaAndWidth) {
  for (const auto policy :
       {SlotFitAllocator::Policy::kBestFit, SlotFitAllocator::Policy::kWorstFit}) {
    SlotFitAllocator allocator(policy, 2);
    allocator.set_spread(paired_domains(6, 1));
    const auto vms = make_request({ProfileClass::kCpu, ProfileClass::kCpu});
    const auto result = allocator.allocate(vms, empty_servers(6));
    ASSERT_TRUE(result.complete);
    std::set<int> domains;
    for (const Placement& p : result.placements) {
      EXPECT_TRUE(domains.insert(p.server_id / 2).second)
          << "two VMs share domain " << p.server_id / 2;
    }

    SlotFitAllocator narrow(policy, 2);
    narrow.set_spread(paired_domains(2, 1));
    const auto wide = make_request({ProfileClass::kCpu, ProfileClass::kCpu});
    const auto rejected = narrow.allocate(wide, empty_servers(2));
    EXPECT_FALSE(rejected.complete);
    EXPECT_EQ(rejected.outcome.reason, RejectReason::kSpreadInfeasible);
  }
}

TEST(SpreadBaselines, RandomFitFiltersCandidatesBeforeThePick) {
  RandomFitAllocator allocator(1234, 2);
  allocator.set_spread(paired_domains(8, 1));
  const auto vms = make_request({ProfileClass::kCpu, ProfileClass::kCpu,
                                 ProfileClass::kCpu, ProfileClass::kCpu});
  const auto result = allocator.allocate(vms, empty_servers(8));
  ASSERT_TRUE(result.complete);
  std::set<int> domains;
  for (const Placement& p : result.placements) {
    EXPECT_TRUE(domains.insert(p.server_id / 2).second)
        << "two VMs share domain " << p.server_id / 2;
  }
}

TEST(SpreadBaselines, VectorFitHonorsQuota) {
  VectorFitAllocator allocator = VectorFitAllocator::from_registry(1.0);
  allocator.set_spread(paired_domains(6, 1));
  const auto vms = make_request({ProfileClass::kCpu, ProfileClass::kMem});
  const auto result = allocator.allocate(vms, empty_servers(6));
  ASSERT_TRUE(result.complete);
  std::set<int> domains;
  for (const Placement& p : result.placements) {
    EXPECT_TRUE(domains.insert(p.server_id / 2).second)
        << "two VMs share domain " << p.server_id / 2;
  }
}

// --- FleetState ------------------------------------------------------------

TEST(SpreadFleetState, RejectsSpreadEnabledConfig) {
  ProactiveConfig config;
  config.spread = paired_domains(4, 1);
  EXPECT_THROW(FleetState(db(), config), std::invalid_argument);
}

TEST(SpreadFleetState, DomainGranularCrashAndRepair) {
  FleetState fleet(db(), ProactiveConfig{});
  const auto servers = empty_servers(4);
  fleet.reset(servers);
  const int rack[] = {0, 1};
  fleet.crash_domain(rack);
  {
    const auto& up = fleet.up_servers();
    ASSERT_EQ(up.size(), 2u);
    EXPECT_EQ(up[0].id, 2);
    EXPECT_EQ(up[1].id, 3);
  }
  fleet.crash_domain(rack);  // overlapping fault: idempotent
  fleet.repair_domain(rack);
  EXPECT_EQ(fleet.up_servers().size(), 4u);
}

}  // namespace
}  // namespace aeva::core
