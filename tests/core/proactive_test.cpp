#include "core/proactive.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "testing/shared_db.hpp"

namespace aeva::core {
namespace {

using workload::ClassCounts;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

ProactiveAllocator make_allocator(double alpha) {
  ProactiveConfig config;
  config.alpha = alpha;
  return ProactiveAllocator(db(), config);
}

std::vector<VmRequest> make_request(
    std::initializer_list<ProfileClass> profiles,
    double qos_s = 1e12) {
  std::vector<VmRequest> vms;
  for (const ProfileClass profile : profiles) {
    VmRequest vm;
    vm.id = static_cast<std::int64_t>(vms.size()) + 1;
    vm.profile = profile;
    vm.max_exec_time_s = qos_s;
    vms.push_back(vm);
  }
  return vms;
}

std::vector<ServerState> empty_servers(int count) {
  std::vector<ServerState> servers;
  for (int i = 0; i < count; ++i) {
    servers.push_back(ServerState{i, ClassCounts{}, false});
  }
  return servers;
}

TEST(Proactive, NamesEncodeAlpha) {
  EXPECT_EQ(make_allocator(1.0).name(), "PA-1");
  EXPECT_EQ(make_allocator(0.0).name(), "PA-0");
  EXPECT_EQ(make_allocator(0.5).name(), "PA-0.5");
  EXPECT_EQ(make_allocator(0.75).name(), "PA-0.75");
}

TEST(Proactive, RejectsBadConfig) {
  ProactiveConfig config;
  config.alpha = 1.5;
  EXPECT_THROW(ProactiveAllocator(db(), config), std::invalid_argument);
  config.alpha = -0.1;
  EXPECT_THROW(ProactiveAllocator(db(), config), std::invalid_argument);
  config.alpha = 0.5;
  config.max_partitions = 0;
  EXPECT_THROW(ProactiveAllocator(db(), config), std::invalid_argument);
}

TEST(Proactive, EmptyRequestIsComplete) {
  const auto allocator = make_allocator(0.5);
  const auto result = allocator.allocate({}, empty_servers(2));
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.placements.empty());
}

TEST(Proactive, PlacesEveryVmExactlyOnce) {
  const auto allocator = make_allocator(0.5);
  const auto vms = make_request({ProfileClass::kCpu, ProfileClass::kCpu,
                                 ProfileClass::kMem, ProfileClass::kIo});
  const auto result = allocator.allocate(vms, empty_servers(4));
  ASSERT_TRUE(result.complete);
  std::set<std::int64_t> placed;
  for (const Placement& p : result.placements) {
    EXPECT_TRUE(placed.insert(p.vm_id).second) << "VM placed twice";
    EXPECT_GE(p.server_id, 0);
    EXPECT_LT(p.server_id, 4);
  }
  EXPECT_EQ(placed.size(), vms.size());
}

TEST(Proactive, ResultingMixesStayFeasible) {
  const auto allocator = make_allocator(0.5);
  const auto vms = make_request(
      {ProfileClass::kCpu, ProfileClass::kCpu, ProfileClass::kCpu,
       ProfileClass::kMem, ProfileClass::kMem, ProfileClass::kIo});
  auto servers = empty_servers(3);
  servers[0].allocated = ClassCounts{2, 0, 0};
  servers[0].powered = true;
  const auto result = allocator.allocate(vms, servers);
  ASSERT_TRUE(result.complete);
  std::map<int, ClassCounts> mixes;
  for (auto& s : servers) {
    mixes[s.id] = s.allocated;
  }
  for (const Placement& p : result.placements) {
    ++mixes[p.server_id].of(
        vms[static_cast<std::size_t>(p.vm_id - 1)].profile);
  }
  const CostModel& model = allocator.cost_model();
  for (const auto& [id, mix] : mixes) {
    EXPECT_TRUE(model.feasible(mix)) << "server " << id;
  }
}

TEST(Proactive, ExaminesAllTypedPartitions) {
  const auto allocator = make_allocator(0.5);
  // (2,2,2) multiset has a known typed-partition count of 66 (validated in
  // the partition suite against the Orlov quotient).
  const auto vms =
      make_request({ProfileClass::kCpu, ProfileClass::kCpu,
                    ProfileClass::kMem, ProfileClass::kMem,
                    ProfileClass::kIo, ProfileClass::kIo});
  const auto result = allocator.allocate(vms, empty_servers(6));
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.partitions_examined, 66u);
}

TEST(Proactive, PartitionBudgetStopsSearchButStillAllocates) {
  ProactiveConfig config;
  config.alpha = 0.5;
  config.max_partitions = 5;
  const ProactiveAllocator allocator(db(), config);
  const auto vms =
      make_request({ProfileClass::kCpu, ProfileClass::kCpu,
                    ProfileClass::kMem, ProfileClass::kMem,
                    ProfileClass::kIo, ProfileClass::kIo});
  const auto result = allocator.allocate(vms, empty_servers(6));
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.partitions_examined, 5u);
}

TEST(Proactive, IncompleteWhenClusterFull) {
  const auto allocator = make_allocator(0.5);
  auto servers = empty_servers(1);
  const auto& base = db().base();
  servers[0].allocated =
      ClassCounts{base.cpu.os(), base.mem.os(), base.io.os()};
  servers[0].powered = true;
  const auto result =
      allocator.allocate(make_request({ProfileClass::kCpu}), servers);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.placements.empty());
}

TEST(Proactive, IncompleteWithNoServers) {
  const auto allocator = make_allocator(0.5);
  const auto result =
      allocator.allocate(make_request({ProfileClass::kMem}), {});
  EXPECT_FALSE(result.complete);
}

TEST(Proactive, QosRejectionLeavesRequestUnplaced) {
  // An impossible execution-time bound (shorter than solo runtime) must be
  // rejected rather than best-effort placed.
  const auto allocator = make_allocator(0.0);
  const auto vms = make_request({ProfileClass::kCpu}, 10.0);
  const auto result = allocator.allocate(vms, empty_servers(2));
  EXPECT_FALSE(result.complete);
}

TEST(Proactive, QosFallbackPlacesBestEffort) {
  ProactiveConfig config;
  config.alpha = 0.0;
  config.fallback_best_effort = true;
  const ProactiveAllocator allocator(db(), config);
  const auto vms = make_request({ProfileClass::kCpu}, 10.0);
  const auto result = allocator.allocate(vms, empty_servers(2));
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.satisfied_qos);
}

TEST(Proactive, QosDisabledIgnoresDeadlines) {
  ProactiveConfig config;
  config.alpha = 0.0;
  config.enforce_qos = false;
  const ProactiveAllocator allocator(db(), config);
  const auto vms = make_request({ProfileClass::kCpu}, 10.0);
  const auto result = allocator.allocate(vms, empty_servers(2));
  EXPECT_TRUE(result.complete);
}

TEST(Proactive, GenerousQosIsSatisfied) {
  const auto allocator = make_allocator(0.5);
  const auto vms = make_request({ProfileClass::kIo, ProfileClass::kIo},
                                1e9);
  const auto result = allocator.allocate(vms, empty_servers(2));
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(result.satisfied_qos);
}

TEST(Proactive, QosBindsAgainstContendedServers) {
  // A tight (but feasible-solo) bound forces the allocator to avoid
  // co-locating with a heavy existing mix.
  const auto allocator = make_allocator(1.0);  // energy goal would co-locate
  const double solo = db().base().cpu.solo_time_s;
  auto servers = empty_servers(2);
  const auto& base = db().base();
  servers[0].allocated =
      ClassCounts{base.cpu.os() - 1, base.mem.os(), base.io.os()};
  servers[0].powered = true;
  const auto vms = make_request({ProfileClass::kCpu}, solo * 1.05);
  const auto result = allocator.allocate(vms, servers);
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(result.satisfied_qos);
  ASSERT_EQ(result.placements.size(), 1u);
  EXPECT_EQ(result.placements[0].server_id, 1) << "should avoid busy server";
}

TEST(Proactive, EnergyGoalConsolidates) {
  // α = 1: co-locating with an existing compatible mix beats waking a
  // second server.
  const auto allocator = make_allocator(1.0);
  auto servers = empty_servers(2);
  servers[0].allocated = ClassCounts{1, 0, 0};
  servers[0].powered = true;
  const auto vms = make_request({ProfileClass::kIo});
  const auto result = allocator.allocate(vms, servers);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.placements[0].server_id, 0);
}

TEST(Proactive, PerformanceGoalSpreads) {
  // α = 0: an empty server gives the shortest estimated time.
  const auto allocator = make_allocator(0.0);
  auto servers = empty_servers(2);
  const auto& base = db().base();
  servers[0].allocated = ClassCounts{base.cpu.os() - 1, 1, 1};
  servers[0].powered = true;
  const auto vms = make_request({ProfileClass::kCpu});
  const auto result = allocator.allocate(vms, servers);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.placements[0].server_id, 1);
}

TEST(Proactive, DeterministicTieBreaking) {
  const auto allocator = make_allocator(0.5);
  const auto vms = make_request({ProfileClass::kMem, ProfileClass::kMem});
  const auto a = allocator.allocate(vms, empty_servers(4));
  const auto b = allocator.allocate(vms, empty_servers(4));
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].vm_id, b.placements[i].vm_id);
    EXPECT_EQ(a.placements[i].server_id, b.placements[i].server_id);
  }
}

TEST(Proactive, TightestDeadlineGetsFastestSlot) {
  // Two same-class VMs with different deadlines: when the chosen partition
  // splits them across servers with different estimated times, the tight
  // deadline must take the faster slot.
  const auto allocator = make_allocator(0.0);
  auto servers = empty_servers(2);
  servers[0].allocated = ClassCounts{2, 1, 0};  // slower co-location
  servers[0].powered = true;
  std::vector<VmRequest> vms;
  VmRequest tight;
  tight.id = 1;
  tight.profile = ProfileClass::kCpu;
  tight.max_exec_time_s = db().base().cpu.solo_time_s * 1.01;
  VmRequest loose;
  loose.id = 2;
  loose.profile = ProfileClass::kCpu;
  loose.max_exec_time_s = 1e12;
  vms = {loose, tight};  // deliberately out of deadline order

  const auto result = allocator.allocate(vms, servers);
  ASSERT_TRUE(result.complete);
  ASSERT_TRUE(result.satisfied_qos);
  // VM 1 (loose) may land anywhere, VM 2 (tight) must be on a placement
  // whose estimate meets its bound; verify via the cost model.
  std::map<int, ClassCounts> mixes;
  mixes[0] = servers[0].allocated;
  mixes[1] = servers[1].allocated;
  for (const Placement& p : result.placements) {
    ++mixes[p.server_id].of(ProfileClass::kCpu);
  }
  for (const Placement& p : result.placements) {
    if (p.vm_id == 2) {
      const double est = allocator.cost_model().vm_time_s(
          ProfileClass::kCpu, mixes[p.server_id]);
      EXPECT_LE(est, tight.max_exec_time_s + 1e-9);
    }
  }
}

TEST(Proactive, ScoreFieldsPopulated) {
  const auto allocator = make_allocator(0.5);
  const auto result = allocator.allocate(
      make_request({ProfileClass::kCpu, ProfileClass::kIo}),
      empty_servers(2));
  ASSERT_TRUE(result.complete);
  EXPECT_GT(result.score.est_time_s, 0.0);
  EXPECT_GT(result.score.est_energy_j, 0.0);
  EXPECT_GT(result.score.combined, 0.0);
  EXPECT_GE(result.partitions_examined, 1u);
}

TEST(Proactive, AlphaOneIgnoresTimeInScore) {
  // With α = 1 the combined score equals the normalized energy term.
  const auto allocator = make_allocator(1.0);
  const auto result = allocator.allocate(
      make_request({ProfileClass::kMem}), empty_servers(1));
  ASSERT_TRUE(result.complete);
  const double energy_ref = allocator.cost_model().energy_reference_j(
      ClassCounts{0, 1, 0});
  EXPECT_NEAR(result.score.combined,
              result.score.est_energy_j / (1.0 * energy_ref), 1e-9);
}

TEST(Proactive, EdpGoalHasItsOwnName) {
  ProactiveConfig config;
  config.goal = ProactiveGoal::kEnergyDelayProduct;
  const ProactiveAllocator allocator(db(), config);
  EXPECT_EQ(allocator.name(), "PA-EDP");
}

TEST(Proactive, EdpGoalAllocatesAndScoresAsProduct) {
  ProactiveConfig config;
  config.goal = ProactiveGoal::kEnergyDelayProduct;
  const ProactiveAllocator allocator(db(), config);
  const auto vms = make_request({ProfileClass::kCpu, ProfileClass::kIo});
  const auto result = allocator.allocate(vms, empty_servers(2));
  ASSERT_TRUE(result.complete);
  const ClassCounts request{1, 0, 1};
  const double e_norm = result.score.est_energy_j /
                        (2.0 * allocator.cost_model().energy_reference_j(
                                   request));
  const double t_norm = result.score.est_time_s /
                        allocator.cost_model().time_reference_s(request);
  EXPECT_NEAR(result.score.combined, e_norm * t_norm, 1e-9);
}

TEST(Proactive, EdpGoalBetweenTheExtremes) {
  // On a scenario where the goals diverge, EDP's estimated time must not
  // beat PA-0's nor its energy beat PA-1's.
  auto servers = empty_servers(3);
  servers[0].allocated = ClassCounts{1, 1, 0};
  servers[0].powered = true;
  const auto vms = make_request(
      {ProfileClass::kCpu, ProfileClass::kMem, ProfileClass::kIo,
       ProfileClass::kIo});

  const auto run = [&](ProactiveConfig config) {
    const ProactiveAllocator allocator(db(), config);
    return allocator.allocate(vms, servers);
  };
  ProactiveConfig edp;
  edp.goal = ProactiveGoal::kEnergyDelayProduct;
  ProactiveConfig fast;
  fast.alpha = 0.0;
  ProactiveConfig green;
  green.alpha = 1.0;
  const auto r_edp = run(edp);
  const auto r_fast = run(fast);
  const auto r_green = run(green);
  ASSERT_TRUE(r_edp.complete);
  ASSERT_TRUE(r_fast.complete);
  ASSERT_TRUE(r_green.complete);
  EXPECT_GE(r_edp.score.est_time_s, r_fast.score.est_time_s - 1e-6);
  EXPECT_GE(r_edp.score.est_energy_j, r_green.score.est_energy_j - 1e-6);
}

TEST(Proactive, NeverMutatesServerStates) {
  const auto allocator = make_allocator(0.5);
  auto servers = empty_servers(2);
  servers[0].allocated = ClassCounts{1, 1, 0};
  const auto before = servers;
  (void)allocator.allocate(make_request({ProfileClass::kIo}), servers);
  for (std::size_t i = 0; i < servers.size(); ++i) {
    EXPECT_EQ(servers[i].allocated, before[i].allocated);
  }
}

}  // namespace
}  // namespace aeva::core
