/// Incremental-vs-exhaustive parity (ISSUE 8 satellite): over 30 random
/// seeds, FleetState::plan must reproduce ProactiveAllocator::allocate
/// bit-for-bit — identical placements, scores, outcomes, and search effort
/// — both on drift-free snapshots and under sustained churn (commits,
/// releases, crashes, repairs) where the batch allocator is re-pointed at
/// the fleet's own up-server view each round. The churn suite additionally
/// asserts the ISSUE's operational bound: accumulated planned energy
/// within 1% of the exhaustive baseline (exact parity makes it 0).

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/incremental.hpp"
#include "core/proactive.hpp"
#include "testing/shared_db.hpp"
#include "util/rng.hpp"

namespace aeva::core {
namespace {

using workload::ClassCounts;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

std::vector<VmRequest> random_request(util::Rng& rng, int max_vms = 5) {
  const int vm_count = static_cast<int>(rng.uniform_int(1, max_vms));
  std::vector<VmRequest> vms;
  for (int i = 0; i < vm_count; ++i) {
    VmRequest vm;
    vm.id = i + 1;
    vm.profile = workload::kAllProfileClasses[static_cast<std::size_t>(
        rng.uniform_int(0, 2))];
    vm.max_exec_time_s =
        rng.bernoulli(0.3) ? rng.uniform(1000.0, 4000.0) : 1e12;
    vms.push_back(vm);
  }
  return vms;
}

std::vector<ServerState> random_servers(util::Rng& rng, int count) {
  const auto& base = db().base();
  std::vector<ServerState> servers;
  for (int s = 0; s < count; ++s) {
    ServerState server;
    server.id = s;
    if (rng.bernoulli(0.5)) {
      server.allocated.cpu =
          static_cast<int>(rng.uniform_int(0, base.cpu.os()));
      server.allocated.mem =
          static_cast<int>(rng.uniform_int(0, base.mem.os()));
      server.allocated.io =
          static_cast<int>(rng.uniform_int(0, base.io.os()));
      server.powered = server.allocated.total() > 0;
    }
    servers.push_back(server);
  }
  return servers;
}

/// Full-result equality. The incremental planner relabels its successful
/// primary results kIncremental; everything else must match verbatim.
void expect_identical(const AllocationResult& inc,
                      const AllocationResult& batch) {
  EXPECT_EQ(inc.complete, batch.complete);
  EXPECT_EQ(inc.satisfied_qos, batch.satisfied_qos);
  EXPECT_EQ(inc.partitions_examined, batch.partitions_examined);
  const auto normalize = [](AllocationPath path) {
    return path == AllocationPath::kIncremental ? AllocationPath::kPrimary
                                                : path;
  };
  EXPECT_EQ(normalize(inc.outcome.path), normalize(batch.outcome.path));
  EXPECT_EQ(inc.outcome.reason, batch.outcome.reason);
  EXPECT_EQ(inc.outcome.search_truncated, batch.outcome.search_truncated);
  // Bitwise, not approximate: the planner reuses the exact expressions.
  EXPECT_EQ(inc.score.est_time_s, batch.score.est_time_s);
  EXPECT_EQ(inc.score.est_energy_j, batch.score.est_energy_j);
  EXPECT_EQ(inc.score.combined, batch.score.combined);
  ASSERT_EQ(inc.placements.size(), batch.placements.size());
  for (std::size_t i = 0; i < inc.placements.size(); ++i) {
    EXPECT_EQ(inc.placements[i].vm_id, batch.placements[i].vm_id);
    EXPECT_EQ(inc.placements[i].server_id, batch.placements[i].server_id);
  }
}

class IncrementalParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalParity, DriftFreeSnapshotsPlaceIdentically) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    ProactiveConfig config;
    config.alpha = rng.uniform(0.0, 1.0);
    if (rng.bernoulli(0.25)) {
      config.degrade_to_first_fit = true;
    }
    if (rng.bernoulli(0.15)) {
      config.max_partitions = static_cast<std::size_t>(
          rng.uniform_int(1, 5));  // budget-truncation parity too
    }
    const auto servers =
        random_servers(rng, static_cast<int>(rng.uniform_int(1, 10)));
    const auto vms = random_request(rng);

    FleetState fleet(db(), config);
    fleet.reset(servers);
    const ProactiveAllocator batch(db(), config);
    expect_identical(fleet.plan(vms), batch.allocate(vms, servers));
  }
}

TEST_P(IncrementalParity, ChurnKeepsParityAndEnergyWithinBound) {
  util::Rng rng(GetParam() ^ 0xc0ffeeULL);
  ProactiveConfig config;
  config.alpha = rng.uniform(0.0, 1.0);
  const int server_count = static_cast<int>(rng.uniform_int(4, 12));

  FleetState fleet(db(), config);
  std::vector<ServerState> init;
  for (int s = 0; s < server_count; ++s) {
    init.push_back(ServerState{s, ClassCounts{}, false});
  }
  fleet.reset(init);
  const ProactiveAllocator batch(db(), config);

  // Independent mirror of what should be committed, keyed by server id —
  // validates the delta bookkeeping, not just plan().
  std::map<int, ClassCounts> mirror;
  std::map<int, bool> down;
  for (int s = 0; s < server_count; ++s) {
    mirror[s] = ClassCounts{};
    down[s] = false;
  }
  struct Resident {
    int server_id = 0;
    ProfileClass profile = ProfileClass::kCpu;
  };
  std::vector<Resident> residents;

  double inc_energy = 0.0;
  double batch_energy = 0.0;
  for (int round = 0; round < 40; ++round) {
    // The fleet's view must equal the mirror-derived up list exactly.
    std::vector<ServerState> expected_up;
    for (const auto& [id, mix] : mirror) {
      if (down[id]) {
        continue;
      }
      ServerState server;
      server.id = id;
      server.allocated = mix;
      server.powered = fleet.node(id).powered;
      expected_up.push_back(server);
    }
    const auto up = fleet.up_servers();
    ASSERT_EQ(up.size(), expected_up.size());
    for (std::size_t i = 0; i < up.size(); ++i) {
      EXPECT_EQ(up[i].id, expected_up[i].id);
      EXPECT_TRUE(up[i].allocated == expected_up[i].allocated);
    }

    const auto vms = random_request(rng, 4);
    const AllocationResult inc = fleet.plan(vms);
    const AllocationResult bat = batch.allocate(vms, expected_up);
    expect_identical(inc, bat);

    if (inc.complete) {
      inc_energy += inc.score.est_energy_j;
      batch_energy += bat.score.est_energy_j;
      for (const Placement& p : inc.placements) {
        const ProfileClass profile =
            vms[static_cast<std::size_t>(p.vm_id - 1)].profile;
        fleet.allocate(p.server_id, profile);
        ++mirror[p.server_id].of(profile);
        residents.push_back(Resident{p.server_id, profile});
      }
    }
    // Random releases of committed VMs.
    while (!residents.empty() && rng.bernoulli(0.4)) {
      const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(residents.size()) - 1));
      const Resident r = residents[pick];
      residents.erase(residents.begin() +
                      static_cast<std::ptrdiff_t>(pick));
      fleet.deallocate(r.server_id, r.profile);
      --mirror[r.server_id].of(r.profile);
    }
    // Occasional crash / repair churn.
    if (rng.bernoulli(0.15)) {
      const int victim =
          static_cast<int>(rng.uniform_int(0, server_count - 1));
      if (down[victim]) {
        fleet.repair(victim);
        down[victim] = false;
        mirror[victim] = ClassCounts{};
      } else if (fleet.up_count() > 1) {
        fleet.crash(victim);
        down[victim] = true;
        mirror[victim] = ClassCounts{};
        // Its residents died with it — the serve loop re-admits them as
        // fresh requests; here they simply leave the release pool.
        std::erase_if(residents, [victim](const Resident& r) {
          return r.server_id == victim;
        });
      }
    }
  }
  // ISSUE 8 bound: accumulated planned energy within 1% of the exhaustive
  // baseline under churn. Exact parity makes the delta identically zero.
  if (batch_energy != 0.0) {
    EXPECT_LT(std::abs(inc_energy - batch_energy) / std::abs(batch_energy),
              0.01);
  }
  EXPECT_EQ(inc_energy, batch_energy);
}

TEST_P(IncrementalParity, RepeatedPlansAreDeterministic) {
  util::Rng rng(GetParam() ^ 0xd15eULL);
  ProactiveConfig config;
  config.alpha = rng.uniform(0.0, 1.0);
  const auto servers = random_servers(rng, 6);
  const auto vms = random_request(rng);
  FleetState fleet(db(), config);
  fleet.reset(servers);
  const AllocationResult a = fleet.plan(vms);
  const AllocationResult b = fleet.plan(vms);  // memo-hot replay
  expect_identical(a, b);
  EXPECT_GT(fleet.stats().memo_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalParity,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace aeva::core
