/// Unit coverage for the incremental fleet state (core/incremental.hpp):
/// node bookkeeping under allocate/deallocate deltas, crash masking and
/// repair, group-index consistency, memo persistence across resyncs, and
/// the argument-validation contract. Search parity against the batch
/// allocator lives in incremental_parity_test.cpp.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/incremental.hpp"
#include "testing/shared_db.hpp"

namespace aeva::core {
namespace {

using workload::ClassCounts;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

std::vector<ServerState> empty_servers(int count) {
  std::vector<ServerState> servers;
  for (int i = 0; i < count; ++i) {
    servers.push_back(ServerState{i, ClassCounts{}, false});
  }
  return servers;
}

std::vector<VmRequest> cpu_request(int count, double qos_s = 1e12) {
  std::vector<VmRequest> vms;
  for (int i = 0; i < count; ++i) {
    VmRequest vm;
    vm.id = i + 1;
    vm.profile = ProfileClass::kCpu;
    vm.max_exec_time_s = qos_s;
    vms.push_back(vm);
  }
  return vms;
}

FleetState make_fleet(int servers, ProactiveConfig config = {}) {
  FleetState fleet(db(), config);
  fleet.reset(empty_servers(servers));
  return fleet;
}

TEST(FleetState, ResetBuildsNodesInIdOrder) {
  FleetState fleet = make_fleet(4);
  EXPECT_EQ(fleet.size(), 4u);
  EXPECT_EQ(fleet.up_count(), 4u);
  const auto up = fleet.up_servers();
  ASSERT_EQ(up.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(up[static_cast<std::size_t>(i)].id, i);
    EXPECT_TRUE(fleet.node(i).empty());
    EXPECT_FALSE(fleet.node(i).down);
  }
}

TEST(FleetState, AllocateDeltaUpdatesNodeAndUpServers) {
  FleetState fleet = make_fleet(2);
  fleet.allocate(1, ProfileClass::kMem);
  fleet.allocate(1, ProfileClass::kMem);
  fleet.allocate(0, ProfileClass::kIo, 3);
  EXPECT_EQ(fleet.node(1).allocated.mem, 2);
  EXPECT_TRUE(fleet.node(1).powered);
  EXPECT_EQ(fleet.node(0).allocated.io, 3);
  const auto up = fleet.up_servers();
  EXPECT_EQ(up[0].allocated.io, 3);
  EXPECT_EQ(up[1].allocated.mem, 2);

  fleet.deallocate(0, ProfileClass::kIo, 2);
  EXPECT_EQ(fleet.node(0).allocated.io, 1);
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.allocs, 3u);
  EXPECT_EQ(stats.deallocs, 1u);
}

TEST(FleetState, UpServersScratchStopsGrowingOnceWarm) {
  FleetState fleet = make_fleet(8);
  // First call may grow the scratch up to the fleet size...
  (void)fleet.up_servers();
  const std::uint64_t warm_grows = fleet.stats().up_scratch_grows;
  EXPECT_LE(warm_grows, 1u);
  // ...after which a steady-state window of calls — including ones
  // interleaved with capacity changes and crash/repair churn — never
  // reallocates: the counter stays flat.
  for (int i = 0; i < 100; ++i) {
    fleet.allocate(i % 8, ProfileClass::kCpu);
    (void)fleet.up_servers();
    fleet.deallocate(i % 8, ProfileClass::kCpu);
    fleet.crash(i % 8);
    (void)fleet.up_servers();
    fleet.repair(i % 8);
  }
  EXPECT_EQ(fleet.stats().up_scratch_grows, warm_grows);
}

TEST(FleetState, DeltaValidation) {
  FleetState fleet = make_fleet(2);
  EXPECT_THROW(fleet.allocate(7, ProfileClass::kCpu), std::invalid_argument);
  EXPECT_THROW(fleet.allocate(0, ProfileClass::kCpu, 0),
               std::invalid_argument);
  EXPECT_THROW(fleet.deallocate(0, ProfileClass::kCpu),
               std::invalid_argument);  // underflow
  fleet.crash(1);
  EXPECT_THROW(fleet.allocate(1, ProfileClass::kCpu), std::invalid_argument);
  EXPECT_THROW((void)fleet.node(7), std::invalid_argument);
}

TEST(FleetState, ResetRejectsDuplicateIdsAndBadMask) {
  FleetState fleet(db(), ProactiveConfig{});
  auto servers = empty_servers(2);
  servers[1].id = 0;
  EXPECT_THROW(fleet.reset(servers), std::invalid_argument);
  const std::vector<std::uint8_t> short_mask = {0};
  EXPECT_THROW(fleet.reset(empty_servers(2), &short_mask),
               std::invalid_argument);
}

TEST(FleetState, CrashMasksAndRepairReturnsColdEmpty) {
  FleetState fleet = make_fleet(3);
  fleet.allocate(1, ProfileClass::kCpu, 2);
  fleet.crash(1);
  fleet.crash(1);  // idempotent, like the serve capacity model
  EXPECT_EQ(fleet.up_count(), 2u);
  EXPECT_TRUE(fleet.node(1).down);
  EXPECT_TRUE(fleet.node(1).empty());  // residents zeroed with the crash
  const auto up = fleet.up_servers();
  ASSERT_EQ(up.size(), 2u);
  EXPECT_EQ(up[0].id, 0);
  EXPECT_EQ(up[1].id, 2);

  fleet.repair(1);
  EXPECT_EQ(fleet.up_count(), 3u);
  EXPECT_FALSE(fleet.node(1).down);
  EXPECT_FALSE(fleet.node(1).powered);  // cold
  EXPECT_TRUE(fleet.node(1).empty());
}

TEST(FleetState, ResetHonoursDownMask) {
  FleetState fleet(db(), ProactiveConfig{});
  const std::vector<std::uint8_t> mask = {0, 1, 0};
  fleet.reset(empty_servers(3), &mask);
  EXPECT_EQ(fleet.size(), 3u);
  EXPECT_EQ(fleet.up_count(), 2u);
  EXPECT_TRUE(fleet.node(1).down);
  // A down server never reaches the planner's world.
  const auto result = fleet.plan(cpu_request(2));
  ASSERT_TRUE(result.complete);
  for (const Placement& p : result.placements) {
    EXPECT_NE(p.server_id, 1);
  }
}

TEST(FleetState, PlanMarksIncrementalPath) {
  FleetState fleet = make_fleet(2);
  const auto result = fleet.plan(cpu_request(2));
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.outcome.path, AllocationPath::kIncremental);
  EXPECT_EQ(result.outcome.reason, RejectReason::kNone);
  EXPECT_STREQ(to_string(result.outcome.path), "incremental");
}

TEST(FleetState, EmptyRequestCompletesTrivially) {
  FleetState fleet = make_fleet(1);
  const auto result = fleet.plan({});
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.placements.empty());
}

TEST(FleetState, AllServersDownRejectsWithNoServers) {
  FleetState fleet = make_fleet(2);
  fleet.crash(0);
  fleet.crash(1);
  const auto result = fleet.plan(cpu_request(1));
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.outcome.path, AllocationPath::kRejected);
  EXPECT_EQ(result.outcome.reason, RejectReason::kNoServers);
}

TEST(FleetState, MemoSurvivesResyncAndFillsOnce) {
  FleetState fleet = make_fleet(8);
  (void)fleet.plan(cpu_request(3));
  const FleetStats first = fleet.stats();
  EXPECT_GT(first.memo_misses, 0u);
  EXPECT_GT(first.memo_entries, 0u);

  // Resync rebuilds nodes and groups but keeps the score memo: replanning
  // the same request shape adds no new entries.
  fleet.reset(empty_servers(8));
  (void)fleet.plan(cpu_request(3));
  const FleetStats second = fleet.stats();
  EXPECT_EQ(second.memo_misses, first.memo_misses);
  EXPECT_GT(second.memo_hits, first.memo_hits);
  EXPECT_EQ(second.resyncs, first.resyncs + 1);
}

TEST(FleetState, IdenticalEmptyServersCollapseToOneGroup) {
  FleetState fleet = make_fleet(16);
  (void)fleet.plan(cpu_request(1));
  EXPECT_EQ(fleet.stats().groups, 1u);
  fleet.allocate(5, ProfileClass::kMem);
  EXPECT_EQ(fleet.stats().groups, 2u);
  fleet.deallocate(5, ProfileClass::kMem);
  EXPECT_EQ(fleet.stats().groups, 1u);
}

TEST(FleetState, ConfigValidation) {
  ProactiveConfig bad_alpha;
  bad_alpha.alpha = 1.5;
  EXPECT_THROW(FleetState(db(), bad_alpha), std::invalid_argument);
  ProactiveConfig bad_fallback;
  bad_fallback.degrade_to_first_fit = true;
  bad_fallback.fallback_multiplex = 0;
  EXPECT_THROW(FleetState(db(), bad_fallback), std::invalid_argument);
  EXPECT_THROW(
      FleetState(std::vector<const modeldb::ModelDatabase*>{}, {}),
      std::invalid_argument);
  EXPECT_THROW(
      FleetState(std::vector<const modeldb::ModelDatabase*>{nullptr}, {}),
      std::invalid_argument);
  // Unknown hardware class surfaces at reset, not at plan time.
  FleetState fleet(db(), ProactiveConfig{});
  std::vector<ServerState> servers = empty_servers(1);
  servers[0].hardware = 3;
  EXPECT_THROW(fleet.reset(servers), std::invalid_argument);
}

}  // namespace
}  // namespace aeva::core
