#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace aeva::core {
namespace {

using workload::ClassCounts;
using workload::ProfileClass;

std::vector<VmRequest> make_request(int count, ProfileClass profile) {
  std::vector<VmRequest> vms;
  for (int i = 0; i < count; ++i) {
    VmRequest vm;
    vm.id = i + 1;
    vm.profile = profile;
    vms.push_back(vm);
  }
  return vms;
}

std::vector<ServerState> make_servers(
    std::initializer_list<ClassCounts> allocations) {
  std::vector<ServerState> servers;
  int id = 0;
  for (const ClassCounts& counts : allocations) {
    servers.push_back(ServerState{id++, counts, counts.total() > 0});
  }
  return servers;
}

TEST(SlotFit, Names) {
  EXPECT_EQ(SlotFitAllocator(SlotFitAllocator::Policy::kBestFit, 1).name(),
            "BF");
  EXPECT_EQ(SlotFitAllocator(SlotFitAllocator::Policy::kWorstFit, 2).name(),
            "WF-2");
}

TEST(SlotFit, BestFitPicksTightestServer) {
  const SlotFitAllocator bf(SlotFitAllocator::Policy::kBestFit, 1);
  const auto servers =
      make_servers({ClassCounts{1, 0, 0}, ClassCounts{3, 0, 0},
                    ClassCounts{}});
  const auto result =
      bf.allocate(make_request(1, ProfileClass::kCpu), servers);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.placements[0].server_id, 1);  // only one free slot
}

TEST(SlotFit, WorstFitPicksEmptiestServer) {
  const SlotFitAllocator wf(SlotFitAllocator::Policy::kWorstFit, 1);
  const auto servers =
      make_servers({ClassCounts{1, 0, 0}, ClassCounts{3, 0, 0},
                    ClassCounts{}});
  const auto result =
      wf.allocate(make_request(1, ProfileClass::kCpu), servers);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.placements[0].server_id, 2);
}

TEST(SlotFit, BestFitTieBreaksToFirstServer) {
  const SlotFitAllocator bf(SlotFitAllocator::Policy::kBestFit, 1);
  const auto servers = make_servers({ClassCounts{}, ClassCounts{}});
  const auto result =
      bf.allocate(make_request(1, ProfileClass::kMem), servers);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.placements[0].server_id, 0);
}

TEST(SlotFit, AllOrNothing) {
  const SlotFitAllocator bf(SlotFitAllocator::Policy::kBestFit, 1);
  const auto servers = make_servers({ClassCounts{3, 0, 0}});
  const auto result =
      bf.allocate(make_request(2, ProfileClass::kCpu), servers);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.placements.empty());
}

TEST(SlotFit, RespectsMultiplexCapacity) {
  const SlotFitAllocator bf(SlotFitAllocator::Policy::kBestFit, 2);  // 8/srv
  const auto servers = make_servers({ClassCounts{6, 0, 0}});
  const auto result =
      bf.allocate(make_request(2, ProfileClass::kIo), servers);
  EXPECT_TRUE(result.complete);
}

TEST(SlotFit, RejectsBadConstruction) {
  EXPECT_THROW(SlotFitAllocator(SlotFitAllocator::Policy::kBestFit, 0),
               std::invalid_argument);
}

TEST(RandomFit, DeterministicForSameSeedAndRequest) {
  const RandomFitAllocator a(42, 1);
  const RandomFitAllocator b(42, 1);
  const auto servers = make_servers(
      {ClassCounts{}, ClassCounts{}, ClassCounts{}, ClassCounts{}});
  const auto vms = make_request(3, ProfileClass::kCpu);
  const auto ra = a.allocate(vms, servers);
  const auto rb = b.allocate(vms, servers);
  ASSERT_EQ(ra.placements.size(), rb.placements.size());
  for (std::size_t i = 0; i < ra.placements.size(); ++i) {
    EXPECT_EQ(ra.placements[i].server_id, rb.placements[i].server_id);
  }
}

TEST(RandomFit, SpreadsAcrossServersOverManyRequests) {
  const RandomFitAllocator rand(7, 1);
  const auto servers = make_servers(
      {ClassCounts{}, ClassCounts{}, ClassCounts{}, ClassCounts{}});
  std::set<int> chosen;
  for (int i = 0; i < 64; ++i) {
    std::vector<VmRequest> vm = {VmRequest{i + 1, ProfileClass::kCpu, 1e9}};
    const auto result = rand.allocate(vm, servers);
    ASSERT_TRUE(result.complete);
    chosen.insert(result.placements[0].server_id);
  }
  EXPECT_EQ(chosen.size(), 4u);
}

TEST(RandomFit, FailsWhenFull) {
  const RandomFitAllocator rand(7, 1);
  const auto servers = make_servers({ClassCounts{4, 0, 0}});
  const auto result =
      rand.allocate(make_request(1, ProfileClass::kCpu), servers);
  EXPECT_FALSE(result.complete);
}

TEST(VectorFit, FromRegistryBuildsNormalizedDemands) {
  const VectorFitAllocator vec = VectorFitAllocator::from_registry(1.0);
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    const DemandVector& d = vec.demand_of(profile);
    EXPECT_GT(d.cpu + d.mem + d.disk + d.net, 0.0);
    EXPECT_LE(d.cpu, 1.0);
    EXPECT_LE(d.mem, 1.0);
    EXPECT_LE(d.disk, 1.0);
    EXPECT_LE(d.net, 1.0);
  }
  // IO class is disk-heavy, CPU class is cpu-heavy.
  EXPECT_GT(vec.demand_of(ProfileClass::kIo).disk,
            vec.demand_of(ProfileClass::kCpu).disk);
  EXPECT_GT(vec.demand_of(ProfileClass::kCpu).cpu,
            vec.demand_of(ProfileClass::kIo).cpu);
}

TEST(VectorFit, PacksComplementaryClassesTogether) {
  // After seeding one server with CPU VMs and one with IO VMs, an incoming
  // IO VM prefers the CPU-loaded server's ample disk headroom over the
  // disk-loaded one... dot-product favours residual capacity along disk.
  const VectorFitAllocator vec = VectorFitAllocator::from_registry(1.0);
  const auto servers =
      make_servers({ClassCounts{0, 0, 3}, ClassCounts{3, 0, 0}});
  const auto result =
      vec.allocate(make_request(1, ProfileClass::kIo), servers);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.placements[0].server_id, 1);
}

TEST(VectorFit, RespectsCapacityPerDimension) {
  // Four beffio VMs saturate the disk (4 × ~0.26 ≈ 1.0): a fifth IO VM
  // must go elsewhere.
  const VectorFitAllocator vec = VectorFitAllocator::from_registry(1.0);
  const auto servers =
      make_servers({ClassCounts{0, 0, 4}, ClassCounts{}});
  const auto result =
      vec.allocate(make_request(1, ProfileClass::kIo), servers);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.placements[0].server_id, 1);
}

TEST(VectorFit, OvercommitRelaxesFit) {
  const VectorFitAllocator strict = VectorFitAllocator::from_registry(1.0);
  const VectorFitAllocator loose = VectorFitAllocator::from_registry(1.5);
  const auto servers = make_servers({ClassCounts{0, 0, 4}});
  const auto vms = make_request(1, ProfileClass::kIo);
  EXPECT_FALSE(strict.allocate(vms, servers).complete);
  EXPECT_TRUE(loose.allocate(vms, servers).complete);
}

TEST(VectorFit, Names) {
  EXPECT_EQ(VectorFitAllocator::from_registry(1.0).name(), "VEC");
  EXPECT_EQ(VectorFitAllocator::from_registry(1.5).name(), "VEC-1.5");
}

TEST(VectorFit, RejectsBadConstruction) {
  EXPECT_THROW((void)VectorFitAllocator::from_registry(0.5),
               std::invalid_argument);
  std::array<DemandVector, workload::kProfileClassCount> zero{};
  EXPECT_THROW((void)VectorFitAllocator(zero, 1.0), std::invalid_argument);
}

TEST(Baselines, EmptyRequestsComplete) {
  const auto servers = make_servers({ClassCounts{}});
  EXPECT_TRUE(SlotFitAllocator(SlotFitAllocator::Policy::kBestFit, 1)
                  .allocate({}, servers)
                  .complete);
  EXPECT_TRUE(RandomFitAllocator(1, 1).allocate({}, servers).complete);
  EXPECT_TRUE(
      VectorFitAllocator::from_registry(1.0).allocate({}, servers).complete);
}

}  // namespace
}  // namespace aeva::core
