#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/proactive.hpp"
#include "testing/shared_db.hpp"
#include "util/rng.hpp"

/// Determinism contract of the search-execution knobs (docs/PERFORMANCE.md):
/// the parallel, memoized, pruned search must return the same *bits* as the
/// plain serial reference — placements, exact score doubles, the number of
/// partitions examined, and the degradation record.

namespace aeva::core {
namespace {

using workload::ClassCounts;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

void expect_identical(const AllocationResult& got,
                      const AllocationResult& want, std::uint64_t seed) {
  EXPECT_EQ(got.complete, want.complete) << "seed " << seed;
  EXPECT_EQ(got.satisfied_qos, want.satisfied_qos) << "seed " << seed;
  EXPECT_EQ(got.partitions_examined, want.partitions_examined)
      << "seed " << seed;
  EXPECT_EQ(static_cast<int>(got.outcome.path),
            static_cast<int>(want.outcome.path))
      << "seed " << seed;
  EXPECT_EQ(static_cast<int>(got.outcome.reason),
            static_cast<int>(want.outcome.reason))
      << "seed " << seed;
  // Bit-exact doubles — the contract, not a tolerance.
  EXPECT_EQ(got.score.combined, want.score.combined) << "seed " << seed;
  EXPECT_EQ(got.score.est_time_s, want.score.est_time_s) << "seed " << seed;
  EXPECT_EQ(got.score.est_energy_j, want.score.est_energy_j)
      << "seed " << seed;
  ASSERT_EQ(got.placements.size(), want.placements.size()) << "seed " << seed;
  for (std::size_t i = 0; i < got.placements.size(); ++i) {
    EXPECT_EQ(got.placements[i].vm_id, want.placements[i].vm_id)
        << "seed " << seed << " placement " << i;
    EXPECT_EQ(got.placements[i].server_id, want.placements[i].server_id)
        << "seed " << seed << " placement " << i;
  }
}

std::vector<VmRequest> random_request(util::Rng& rng) {
  const std::int64_t n = rng.uniform_int(1, 6);
  std::vector<VmRequest> vms;
  for (std::int64_t i = 0; i < n; ++i) {
    VmRequest vm;
    vm.id = i + 1;
    vm.profile = static_cast<ProfileClass>(rng.uniform_int(0, 2));
    // A mix of loose and potentially-binding deadlines so the sweep also
    // exercises QoS rejection and the relaxed fallback.
    vm.max_exec_time_s = rng.bernoulli(0.5) ? 1e12 : rng.uniform(50.0, 5000.0);
    vms.push_back(vm);
  }
  return vms;
}

std::vector<ServerState> random_servers(util::Rng& rng) {
  const std::int64_t n = rng.uniform_int(2, 10);
  std::vector<ServerState> servers;
  for (std::int64_t i = 0; i < n; ++i) {
    ServerState server;
    server.id = static_cast<int>(i);
    if (rng.bernoulli(0.4)) {
      server.allocated =
          ClassCounts{static_cast<int>(rng.uniform_int(0, 2)),
                      static_cast<int>(rng.uniform_int(0, 2)),
                      static_cast<int>(rng.uniform_int(0, 1))};
    }
    server.powered = server.allocated.total() > 0 || rng.bernoulli(0.25);
    servers.push_back(server);
  }
  return servers;
}

ProactiveConfig optimized_config(ProactiveConfig base) {
  base.force_serial = false;
  base.search_threads = 4;
  base.search_chunk = 4;  // small chunks so multi-chunk dispatch is exercised
  base.memoize_estimates = true;
  base.prune_search = true;
  return base;
}

ProactiveConfig serial_config(ProactiveConfig base) {
  base.force_serial = true;
  return base;
}

void sweep_seeds(const ProactiveConfig& base, std::uint64_t first_seed) {
  for (std::uint64_t seed = first_seed; seed < first_seed + 30; ++seed) {
    util::Rng rng(seed);
    const std::vector<VmRequest> vms = random_request(rng);
    const std::vector<ServerState> servers = random_servers(rng);
    const ProactiveAllocator reference(db(), serial_config(base));
    const ProactiveAllocator optimized(db(), optimized_config(base));
    expect_identical(optimized.allocate(vms, servers),
                     reference.allocate(vms, servers), seed);
  }
}

TEST(ProactiveParallel, MatchesSerialOverRandomizedRequests) {
  ProactiveConfig base;
  base.alpha = 0.5;
  sweep_seeds(base, 1000);
}

TEST(ProactiveParallel, MatchesSerialWithQosRelaxed) {
  ProactiveConfig base;
  base.alpha = 0.5;
  base.enforce_qos = false;
  sweep_seeds(base, 2000);
}

TEST(ProactiveParallel, MatchesSerialWithBestEffortFallback) {
  ProactiveConfig base;
  base.alpha = 0.3;
  base.fallback_best_effort = true;
  sweep_seeds(base, 3000);
}

TEST(ProactiveParallel, MatchesSerialAtAlphaExtremes) {
  for (const double alpha : {0.0, 1.0}) {
    ProactiveConfig base;
    base.alpha = alpha;
    sweep_seeds(base, 4000 + static_cast<std::uint64_t>(alpha * 100));
  }
}

TEST(ProactiveParallel, MatchesSerialOnEdpGoal) {
  // The EDP rank is not separable per block, so pruning must auto-disarm;
  // the result still has to match the reference exactly.
  ProactiveConfig base;
  base.goal = ProactiveGoal::kEnergyDelayProduct;
  sweep_seeds(base, 5000);
}

TEST(ProactiveParallel, MatchesSerialSingleThreadOptimized) {
  // threads=1 without force_serial takes the incremental-evaluator path
  // (memo + pruning, no pool); it must match the reference too.
  for (std::uint64_t seed = 6000; seed < 6030; ++seed) {
    util::Rng rng(seed);
    const std::vector<VmRequest> vms = random_request(rng);
    const std::vector<ServerState> servers = random_servers(rng);
    ProactiveConfig base;
    base.alpha = 0.5;
    ProactiveConfig opt = optimized_config(base);
    opt.search_threads = 1;
    const ProactiveAllocator reference(db(), serial_config(base));
    const ProactiveAllocator optimized(db(), opt);
    expect_identical(optimized.allocate(vms, servers),
                     reference.allocate(vms, servers), seed);
  }
}

TEST(ProactiveParallel, ConcurrentAllocateCallsStayDeterministic) {
  // allocate() is const and re-entrant: hammer one allocator from several
  // threads with different inputs; every call must still produce the
  // serial-reference bits for its input.
  ProactiveConfig base;
  base.alpha = 0.5;
  const ProactiveAllocator optimized(db(), optimized_config(base));
  const ProactiveAllocator reference(db(), serial_config(base));

  constexpr int kThreads = 4;
  std::vector<AllocationResult> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &optimized, &got] {
      util::Rng rng(7000 + static_cast<std::uint64_t>(t));
      const std::vector<VmRequest> vms = random_request(rng);
      const std::vector<ServerState> servers = random_servers(rng);
      for (int round = 0; round < 5; ++round) {
        got[static_cast<std::size_t>(t)] = optimized.allocate(vms, servers);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    util::Rng rng(7000 + static_cast<std::uint64_t>(t));
    const std::vector<VmRequest> vms = random_request(rng);
    const std::vector<ServerState> servers = random_servers(rng);
    expect_identical(got[static_cast<std::size_t>(t)],
                     reference.allocate(vms, servers),
                     7000 + static_cast<std::uint64_t>(t));
  }
}

TEST(ProactiveParallel, MemoStatsAccumulateAcrossCalls) {
  ProactiveConfig base;
  base.alpha = 0.5;
  const ProactiveAllocator optimized(db(), optimized_config(base));
  EXPECT_EQ(optimized.memo_stats().hits + optimized.memo_stats().misses, 0u);
  util::Rng rng(8000);
  const std::vector<VmRequest> vms = random_request(rng);
  const std::vector<ServerState> servers = random_servers(rng);
  (void)optimized.allocate(vms, servers);
  const modeldb::EstimateCache::Stats first = optimized.memo_stats();
  EXPECT_GT(first.hits + first.misses, 0u);
  (void)optimized.allocate(vms, servers);
  const modeldb::EstimateCache::Stats second = optimized.memo_stats();
  // The repeat call reuses the cache: no new misses, only hits.
  EXPECT_EQ(second.misses, first.misses);
  EXPECT_GT(second.hits, first.hits);

  // The escape hatch runs bare: no cache is even attached.
  const ProactiveAllocator serial(db(), serial_config(base));
  (void)serial.allocate(vms, servers);
  EXPECT_EQ(serial.memo_stats().hits + serial.memo_stats().misses, 0u);
}

}  // namespace
}  // namespace aeva::core
