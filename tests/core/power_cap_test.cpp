#include "core/power_cap.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "datacenter/simulator.hpp"
#include "testing/shared_db.hpp"

namespace aeva::core {
namespace {

using workload::ClassCounts;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

PowerCapAllocator make_guard(double cap_w) {
  ProactiveConfig config;
  config.alpha = 0.5;
  return PowerCapAllocator(std::make_unique<ProactiveAllocator>(db(), config),
                           db(), cap_w);
}

std::vector<ServerState> empty_servers(int count) {
  std::vector<ServerState> servers;
  for (int i = 0; i < count; ++i) {
    servers.push_back(ServerState{i, ClassCounts{}, false, 0});
  }
  return servers;
}

std::vector<VmRequest> one_vm(ProfileClass profile) {
  return {VmRequest{1, profile, 1e12}};
}

TEST(PowerCap, NameEncodesBudget) {
  EXPECT_EQ(make_guard(9000.0).name(), "CAP9.0kW(PA-0.5)");
}

TEST(PowerCap, GenerousCapIsTransparent) {
  const PowerCapAllocator guard = make_guard(1e9);
  const auto result = guard.allocate(one_vm(ProfileClass::kCpu),
                                     empty_servers(2));
  EXPECT_TRUE(result.complete);
}

TEST(PowerCap, TightCapRejectsPlacement) {
  // A single busy server draws ≥125 W; a 100 W budget admits nothing.
  const PowerCapAllocator guard = make_guard(100.0);
  const auto result = guard.allocate(one_vm(ProfileClass::kIo),
                                     empty_servers(2));
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.placements.empty());
}

TEST(PowerCap, PredictedPowerCountsBusyServersOnly) {
  const PowerCapAllocator guard = make_guard(1e9);
  std::vector<ServerState> servers = empty_servers(3);
  EXPECT_DOUBLE_EQ(guard.predicted_power_w(servers), 0.0);
  servers[1].allocated = ClassCounts{2, 0, 0};
  const double one = guard.predicted_power_w(servers);
  EXPECT_GT(one, 125.0);
  servers[2].allocated = ClassCounts{0, 1, 1};
  EXPECT_GT(guard.predicted_power_w(servers), one);
}

TEST(PowerCap, BudgetBindsOnTheMarginalServer) {
  // Budget for roughly one busy server: the first placement lands, a
  // second one that needs another machine is rejected.
  const double solo_power =
      db().estimate(ClassCounts{1, 0, 0}).avg_power_w();
  const auto& base = db().base();
  const PowerCapAllocator guard = make_guard(solo_power + 60.0);

  std::vector<ServerState> servers = empty_servers(2);
  const auto first = guard.allocate(one_vm(ProfileClass::kCpu), servers);
  ASSERT_TRUE(first.complete);
  // Saturate server 0 up to the OS box so the next VM needs server 1.
  servers[0].allocated =
      ClassCounts{base.cpu.os(), base.mem.os(), base.io.os()};
  servers[0].powered = true;
  const auto second = guard.allocate(one_vm(ProfileClass::kCpu), servers);
  EXPECT_FALSE(second.complete);
}

TEST(PowerCap, RejectsBadConstruction) {
  ProactiveConfig config;
  EXPECT_THROW(PowerCapAllocator(nullptr, db(), 1000.0),
               std::invalid_argument);
  EXPECT_THROW(
      PowerCapAllocator(std::make_unique<ProactiveAllocator>(db(), config),
                        db(), 0.0),
      std::invalid_argument);
}

TEST(PowerCap, SimulationRespectsTheBudgetThroughout) {
  // End to end: the observer verifies the instantaneous cluster draw never
  // exceeds the cap (modulo the accounting granularity).
  trace::PreparedWorkload workload;
  long long id = 1;
  for (int i = 0; i < 12; ++i) {
    trace::JobRequest job;
    job.id = id++;
    job.submit_s = i * 40.0;
    job.profile = workload::kAllProfileClasses[static_cast<std::size_t>(i) % 3];
    job.vm_count = 2;
    job.runtime_scale = 1.0;
    job.deadline_s = 1e9;
    workload.jobs.push_back(job);
    workload.total_vms += 2;
  }
  datacenter::CloudConfig cloud;
  cloud.server_count = 8;
  const datacenter::Simulator sim(db(), cloud);
  const double cap = 900.0;
  const PowerCapAllocator guard = make_guard(cap);
  double peak = 0.0;
  const datacenter::SimMetrics metrics = sim.run(
      workload, guard, [&](double, double, const std::vector<double>& p) {
        double total = 0.0;
        for (const double w : p) {
          total += w;
        }
        peak = std::max(peak, total);
      });
  EXPECT_EQ(metrics.vms, 24u);
  EXPECT_LE(peak, cap * 1.001);
}

}  // namespace
}  // namespace aeva::core
