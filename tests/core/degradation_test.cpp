/// The allocator degradation chain (proactive → first-fit → reject with a
/// reason): every trigger of the chain must surface an AllocationOutcome
/// callers can assert on — no allocation path may fail silently.

#include <gtest/gtest.h>

#include "core/first_fit.hpp"
#include "core/power_cap.hpp"
#include "core/proactive.hpp"
#include "datacenter/simulator.hpp"
#include "testing/shared_db.hpp"

namespace aeva::core {
namespace {

using workload::ClassCounts;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

std::vector<VmRequest> cpu_request(int count, double qos_s = 1e12) {
  std::vector<VmRequest> vms;
  for (int i = 0; i < count; ++i) {
    VmRequest vm;
    vm.id = i + 1;
    vm.profile = ProfileClass::kCpu;
    vm.max_exec_time_s = qos_s;
    vms.push_back(vm);
  }
  return vms;
}

std::vector<ServerState> empty_servers(int count) {
  std::vector<ServerState> servers;
  for (int i = 0; i < count; ++i) {
    servers.push_back(ServerState{i, ClassCounts{}, false});
  }
  return servers;
}

/// Servers pre-loaded to the measured optimal-scenario ceiling for CPU
/// VMs: any additional CPU block is infeasible for the proactive model,
/// while a slot-based first-fit still sees free capacity.
std::vector<ServerState> cpu_saturated_servers(int count) {
  const int osc = db().base().cpu.os();
  std::vector<ServerState> servers;
  for (int i = 0; i < count; ++i) {
    ClassCounts full;
    full.of(ProfileClass::kCpu) = osc;
    servers.push_back(ServerState{i, full, true});
  }
  return servers;
}

ProactiveAllocator make_allocator(bool degrade,
                                  std::size_t max_partitions = 200000) {
  ProactiveConfig config;
  config.alpha = 0.5;
  config.degrade_to_first_fit = degrade;
  config.max_partitions = max_partitions;
  return ProactiveAllocator(db(), config);
}

TEST(Degradation, PrimarySuccessReportsPrimaryPath) {
  const auto result =
      make_allocator(true).allocate(cpu_request(2), empty_servers(2));
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.outcome.path, AllocationPath::kPrimary);
  EXPECT_EQ(result.outcome.reason, RejectReason::kNone);
}

TEST(Degradation, SearchBudgetExhaustionTriggersFallback) {
  // Budget of one partition, and the one partition examined cannot fit on
  // the saturated servers: the primary gives up for budget reasons and the
  // slot-based fallback (which still has free slots) recovers.
  const auto servers = cpu_saturated_servers(2);
  const auto rejected =
      make_allocator(false, 1).allocate(cpu_request(2), servers);
  EXPECT_FALSE(rejected.complete);
  EXPECT_EQ(rejected.outcome.path, AllocationPath::kRejected);
  EXPECT_EQ(rejected.outcome.reason, RejectReason::kSearchBudgetExhausted);
  EXPECT_EQ(rejected.partitions_examined, 1u);

  const auto degraded =
      make_allocator(true, 1).allocate(cpu_request(2), servers);
  ASSERT_TRUE(degraded.complete);
  EXPECT_EQ(degraded.placements.size(), 2u);
  EXPECT_EQ(degraded.outcome.path, AllocationPath::kFallbackFirstFit);
  EXPECT_EQ(degraded.outcome.reason, RejectReason::kSearchBudgetExhausted);
  EXPECT_FALSE(degraded.satisfied_qos);
  EXPECT_EQ(degraded.partitions_examined, 1u);
}

TEST(Degradation, NoFeasibleServerTriggersFallback) {
  // Full budget this time: the search proves no partition fits inside the
  // optimal-scenario box, which is a different reason than running out of
  // budget.
  const auto servers = cpu_saturated_servers(2);
  const auto rejected =
      make_allocator(false).allocate(cpu_request(2), servers);
  EXPECT_FALSE(rejected.complete);
  EXPECT_EQ(rejected.outcome.path, AllocationPath::kRejected);
  EXPECT_EQ(rejected.outcome.reason, RejectReason::kNoFeasibleServer);

  const auto degraded = make_allocator(true).allocate(cpu_request(2), servers);
  ASSERT_TRUE(degraded.complete);
  EXPECT_EQ(degraded.outcome.path, AllocationPath::kFallbackFirstFit);
  EXPECT_EQ(degraded.outcome.reason, RejectReason::kNoFeasibleServer);
}

TEST(Degradation, AllServersMaskedReportsNoServers) {
  // A cloud whose every server is masked by failures hands the allocator
  // an empty list; even the fallback cannot place, so the chain ends at
  // reject-with-reason.
  const auto result = make_allocator(true).allocate(cpu_request(1), {});
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.placements.empty());
  EXPECT_EQ(result.outcome.path, AllocationPath::kRejected);
  EXPECT_EQ(result.outcome.reason, RejectReason::kNoServers);
}

TEST(Degradation, QosInfeasibleTriggersFallback) {
  // A deadline below the solo time cannot be met by any placement: the
  // primary refuses, the QoS-blind fallback places anyway and says so.
  const double impossible =
      0.5 * db().base().of(ProfileClass::kCpu).solo_time_s;
  const auto rejected = make_allocator(false).allocate(
      cpu_request(2, impossible), empty_servers(2));
  EXPECT_FALSE(rejected.complete);
  EXPECT_EQ(rejected.outcome.path, AllocationPath::kRejected);
  EXPECT_EQ(rejected.outcome.reason, RejectReason::kQosInfeasible);

  const auto degraded = make_allocator(true).allocate(
      cpu_request(2, impossible), empty_servers(2));
  ASSERT_TRUE(degraded.complete);
  EXPECT_EQ(degraded.outcome.path, AllocationPath::kFallbackFirstFit);
  EXPECT_EQ(degraded.outcome.reason, RejectReason::kQosInfeasible);
  EXPECT_FALSE(degraded.satisfied_qos);
}

TEST(Degradation, FallbackMarkerInName) {
  EXPECT_EQ(make_allocator(true).name(), "PA-0.5+FF");
  EXPECT_EQ(make_allocator(false).name(), "PA-0.5");
}

TEST(Degradation, RejectsBadFallbackConfig) {
  ProactiveConfig config;
  config.degrade_to_first_fit = true;
  config.fallback_multiplex = 0;
  EXPECT_THROW(ProactiveAllocator(db(), config), std::invalid_argument);
}

TEST(Degradation, FirstFitRejectsWithReason) {
  const FirstFitAllocator ff(1);
  const auto no_servers = ff.allocate(cpu_request(1), {});
  EXPECT_FALSE(no_servers.complete);
  EXPECT_EQ(no_servers.outcome.path, AllocationPath::kRejected);
  EXPECT_EQ(no_servers.outcome.reason, RejectReason::kNoServers);

  // One server already at the FF capacity of 4: nothing fits.
  ClassCounts full;
  full.of(ProfileClass::kCpu) = 4;
  const std::vector<ServerState> servers = {ServerState{0, full, true}};
  const auto no_room = ff.allocate(cpu_request(1), servers);
  EXPECT_FALSE(no_room.complete);
  EXPECT_EQ(no_room.outcome.path, AllocationPath::kRejected);
  EXPECT_EQ(no_room.outcome.reason, RejectReason::kNoFeasibleServer);
}

TEST(Degradation, PowerCapGuardReportsGuardRejected) {
  PowerCapAllocator capped(std::make_unique<FirstFitAllocator>(1), db(),
                           1.0);  // 1 W: everything is over budget
  const auto result = capped.allocate(cpu_request(1), empty_servers(1));
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.outcome.path, AllocationPath::kRejected);
  EXPECT_EQ(result.outcome.reason, RejectReason::kGuardRejected);
}

TEST(Degradation, SimulatorCountsFallbackAllocations) {
  // A job whose execution-time QoS bound is below the solo time forces the
  // proactive leg to refuse every placement; with degradation enabled the
  // request lands via first-fit and the run counts it.
  trace::PreparedWorkload workload;
  trace::JobRequest job;
  job.id = 1;
  job.submit_s = 0.0;
  job.profile = ProfileClass::kCpu;
  job.vm_count = 1;
  job.runtime_scale = 1.0;
  job.deadline_s = 1e12;
  job.max_exec_stretch = 0.5;  // bound = 0.5 · solo: unsatisfiable
  workload.jobs.push_back(job);
  workload.total_vms = 1;

  datacenter::CloudConfig cloud;
  cloud.server_count = 2;
  const datacenter::Simulator sim(db(), cloud);
  const auto strategy = make_allocator(true);
  const datacenter::SimMetrics m = sim.run(workload, strategy);
  EXPECT_EQ(m.vms, 1u);
  EXPECT_EQ(m.fallback_allocations, 1u);
}

}  // namespace
}  // namespace aeva::core
