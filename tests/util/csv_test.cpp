#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

namespace aeva::util {
namespace {

TEST(CsvEncode, PlainFields) {
  EXPECT_EQ(csv_encode_row({"a", "b", "c"}), "a,b,c");
}

TEST(CsvEncode, QuotesWhenNeeded) {
  EXPECT_EQ(csv_encode_row({"a,b"}), "\"a,b\"");
  EXPECT_EQ(csv_encode_row({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_encode_row({"line\nbreak"}), "\"line\nbreak\"");
}

TEST(CsvEncode, EmptyFieldsPreserved) {
  EXPECT_EQ(csv_encode_row({"", "", ""}), ",,");
}

TEST(CsvDecode, PlainRow) {
  const CsvRow row = csv_decode_row("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[2], "c");
}

TEST(CsvDecode, QuotedFieldWithComma) {
  const CsvRow row = csv_decode_row("\"a,b\",c");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "a,b");
  EXPECT_EQ(row[1], "c");
}

TEST(CsvDecode, EscapedQuote) {
  const CsvRow row = csv_decode_row("\"say \"\"hi\"\"\"");
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], "say \"hi\"");
}

TEST(CsvDecode, ToleratesCarriageReturn) {
  const CsvRow row = csv_decode_row("a,b\r");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
}

TEST(CsvDecode, RejectsUnterminatedQuote) {
  EXPECT_THROW((void)csv_decode_row("\"oops"), std::invalid_argument);
}

TEST(CsvRoundTrip, EncodeDecodeIsIdentity) {
  const CsvRow original = {"plain", "with,comma", "with\"quote", "", "end"};
  EXPECT_EQ(csv_decode_row(csv_encode_row(original)), original);
}

TEST(ParseCsv, HeaderAndRows) {
  const CsvTable table = parse_csv_text("x,y\n1,2\n3,4\n");
  ASSERT_EQ(table.header.size(), 2u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][1], "4");
}

TEST(ParseCsv, EmbeddedNewlineInQuotes) {
  const CsvTable table = parse_csv_text("x\n\"a\nb\"\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "a\nb");
}

TEST(ParseCsv, MissingFinalNewline) {
  const CsvTable table = parse_csv_text("x,y\n5,6");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "5");
}

TEST(ParseCsv, RejectsRaggedRows) {
  EXPECT_THROW((void)parse_csv_text("x,y\n1\n"), std::invalid_argument);
}

TEST(ParseCsv, EmptyDocument) {
  const CsvTable table = parse_csv_text("");
  EXPECT_TRUE(table.header.empty());
  EXPECT_TRUE(table.rows.empty());
}

TEST(ParseCsv, CrLfLineEndings) {
  const CsvTable table = parse_csv_text("x,y\r\n1,2\r\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][1], "2");
}

TEST(CsvTable, ColumnLookup) {
  const CsvTable table = parse_csv_text("alpha,beta\n1,2\n");
  EXPECT_EQ(table.column("beta"), 1u);
  EXPECT_TRUE(table.has_column("alpha"));
  EXPECT_FALSE(table.has_column("gamma"));
  EXPECT_THROW((void)table.column("gamma"), std::invalid_argument);
}

TEST(WriteCsv, RoundTripThroughStream) {
  CsvTable table;
  table.header = {"name", "note"};
  table.rows = {{"a", "plain"}, {"b", "has,comma"}};
  std::ostringstream out;
  write_csv(out, table);
  const CsvTable parsed = parse_csv_text(out.str());
  EXPECT_EQ(parsed.header, table.header);
  EXPECT_EQ(parsed.rows, table.rows);
}

TEST(CsvFiles, RoundTripOnDisk) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "aeva_csv_test.csv").string();
  CsvTable table;
  table.header = {"k", "v"};
  table.rows = {{"1", "one"}, {"2", "two"}};
  write_csv_file(path, table);
  const CsvTable loaded = read_csv_file(path);
  EXPECT_EQ(loaded.header, table.header);
  EXPECT_EQ(loaded.rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvFiles, ReadMissingFileThrows) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/definitely/missing.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace aeva::util
