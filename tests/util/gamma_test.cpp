#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace aeva::util {
namespace {

TEST(Gamma, MomentsMatchForShapeAboveOne) {
  Rng rng(21);
  const double shape = 2.5;
  const double scale = 3.0;
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(shape, scale);
    EXPECT_GT(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, shape * scale, 0.05 * shape * scale);
  EXPECT_NEAR(var, shape * scale * scale, 0.10 * shape * scale * scale);
}

TEST(Gamma, MomentsMatchForShapeBelowOne) {
  Rng rng(22);
  const double shape = 0.5;
  const double scale = 2.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(shape, scale);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, shape * scale, 0.05 * shape * scale);
}

TEST(Gamma, ShapeOneIsExponential) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.gamma(1.0, 4.0);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Gamma, DeterministicInSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.gamma(1.8, 800.0), b.gamma(1.8, 800.0));
  }
}

TEST(Gamma, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW((void)rng.gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.gamma(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.gamma(-1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace aeva::util
