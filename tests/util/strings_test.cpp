#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace aeva::util {
namespace {

TEST(Split, BasicDelimiter) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Split, NoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWhitespace, CollapsesRuns) {
  const auto parts = split_whitespace("  1  \t2\n3  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "1");
  EXPECT_EQ(parts[1], "2");
  EXPECT_EQ(parts[2], "3");
}

TEST(SplitWhitespace, EmptyAndBlank) {
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace("   \t\n ").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-op"), "no-op");
}

TEST(ParseInt, ValidInputs) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_EQ(parse_int("0").value(), 0);
}

TEST(ParseInt, RejectsMalformed) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4x").has_value());
  EXPECT_FALSE(parse_int("4.5").has_value());
  EXPECT_FALSE(parse_int(" 4").has_value());
}

TEST(ParseDouble, ValidInputs) {
  EXPECT_DOUBLE_EQ(parse_double("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double("7").value(), 7.0);
}

TEST(ParseDouble, RejectsMalformed) {
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("x").has_value());
  EXPECT_FALSE(parse_double("1.2.3").has_value());
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-f", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace aeva::util
