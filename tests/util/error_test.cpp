// Tests for the error-handling macros (util/error.hpp): exception types,
// message formatting, and single evaluation of the condition.

#include "util/error.hpp"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace aeva {
namespace {

TEST(ErrorMacros, RequireThrowsInvalidArgumentWithFormattedMessage) {
  const int vms = -3;
  try {
    AEVA_REQUIRE(vms >= 0, "vm count must be non-negative, got ", vms);
    FAIL() << "AEVA_REQUIRE did not throw";
  } catch (const std::invalid_argument& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("requirement failed"), std::string::npos) << what;
    EXPECT_NE(what.find("vms >= 0"), std::string::npos)
        << "stringified condition missing: " << what;
    EXPECT_NE(what.find("vm count must be non-negative, got -3"),
              std::string::npos)
        << "streamed parts missing: " << what;
  }
}

TEST(ErrorMacros, InvariantThrowsLogicErrorWithFormattedMessage) {
  const double energy = -1.5;
  try {
    AEVA_INVARIANT(energy > 0.0, "energy went negative: ", energy);
    FAIL() << "AEVA_INVARIANT did not throw";
  } catch (const std::logic_error& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("invariant violated"), std::string::npos) << what;
    EXPECT_NE(what.find("energy > 0.0"), std::string::npos) << what;
    EXPECT_NE(what.find("energy went negative: -1.5"), std::string::npos)
        << what;
  }
}

TEST(ErrorMacros, RequireIsDistinguishableFromInvariant) {
  // The two macros throw different types so callers can tell "you passed
  // bad data" (invalid_argument) from "aeva has a bug" (logic_error).
  EXPECT_THROW(AEVA_REQUIRE(false, "precondition"), std::invalid_argument);
  EXPECT_THROW(AEVA_INVARIANT(false, "invariant"), std::logic_error);
  // logic_error is not an invalid_argument; the reverse subtyping holds in
  // the standard hierarchy (invalid_argument derives from logic_error).
  EXPECT_THROW(AEVA_REQUIRE(false, "precondition"), std::logic_error);
}

TEST(ErrorMacros, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  const auto touch = [&]() {
    ++evaluations;
    return true;
  };
  AEVA_REQUIRE(touch(), "never thrown");
  EXPECT_EQ(evaluations, 1);
  AEVA_INVARIANT(touch(), "never thrown");
  EXPECT_EQ(evaluations, 2);

  evaluations = 0;
  const auto fail = [&]() {
    ++evaluations;
    return false;
  };
  EXPECT_THROW(AEVA_REQUIRE(fail(), "thrown"), std::invalid_argument);
  EXPECT_EQ(evaluations, 1);
}

TEST(ErrorMacros, MessagePartsAreStreamedInOrder) {
  EXPECT_EQ(format_message("a=", 1, ", b=", 2.5, ", c=", "three"),
            "a=1, b=2.5, c=three");
  EXPECT_EQ(format_message("solo"), "solo");
}

}  // namespace
}  // namespace aeva
