#include "util/time_series.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aeva::util {
namespace {

TEST(TimeSeries, NameAndUnit) {
  const TimeSeries ts("power", "W");
  EXPECT_EQ(ts.name(), "power");
  EXPECT_EQ(ts.unit(), "W");
  EXPECT_TRUE(ts.empty());
}

TEST(TimeSeries, AppendEnforcesTimeOrder) {
  TimeSeries ts;
  ts.append(0.0, 1.0);
  ts.append(1.0, 2.0);
  ts.append(1.0, 3.0);  // equal times allowed (step encoding)
  EXPECT_THROW(ts.append(0.5, 4.0), std::invalid_argument);
  EXPECT_EQ(ts.size(), 3u);
}

TEST(TimeSeries, AppendRejectsNonFinite) {
  TimeSeries ts;
  EXPECT_THROW(ts.append(std::nan(""), 1.0), std::invalid_argument);
  EXPECT_THROW(ts.append(0.0, std::nan("")), std::invalid_argument);
}

TEST(TimeSeries, StartEndTimes) {
  TimeSeries ts;
  ts.append(2.0, 0.0);
  ts.append(5.0, 0.0);
  EXPECT_DOUBLE_EQ(ts.start_time(), 2.0);
  EXPECT_DOUBLE_EQ(ts.end_time(), 5.0);
  const TimeSeries empty;
  EXPECT_THROW((void)empty.start_time(), std::invalid_argument);
  EXPECT_THROW((void)empty.end_time(), std::invalid_argument);
}

TEST(TimeSeries, IntegrateConstant) {
  TimeSeries ts;
  ts.append(0.0, 100.0);
  ts.append(10.0, 100.0);
  EXPECT_DOUBLE_EQ(ts.integrate(), 1000.0);  // 100 W × 10 s = 1000 J
}

TEST(TimeSeries, IntegrateRamp) {
  TimeSeries ts;
  ts.append(0.0, 0.0);
  ts.append(4.0, 8.0);
  EXPECT_DOUBLE_EQ(ts.integrate(), 16.0);  // triangle area
}

TEST(TimeSeries, IntegrateStepFunction) {
  // Step encoded as duplicate timestamps: 100 W for 2 s then 200 W for 3 s.
  TimeSeries ts;
  ts.append(0.0, 100.0);
  ts.append(2.0, 100.0);
  ts.append(2.0, 200.0);
  ts.append(5.0, 200.0);
  EXPECT_DOUBLE_EQ(ts.integrate(), 200.0 + 600.0);
}

TEST(TimeSeries, IntegrateDegenerate) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.integrate(), 0.0);
  ts.append(1.0, 5.0);
  EXPECT_DOUBLE_EQ(ts.integrate(), 0.0);
}

TEST(TimeSeries, TimeWeightedMean) {
  TimeSeries ts;
  ts.append(0.0, 100.0);
  ts.append(2.0, 100.0);
  ts.append(2.0, 200.0);
  ts.append(4.0, 200.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(), 150.0);
}

TEST(TimeSeries, TimeWeightedMeanZeroSpan) {
  TimeSeries ts;
  ts.append(1.0, 7.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(), 7.0);
}

TEST(TimeSeries, MaxValue) {
  TimeSeries ts;
  ts.append(0.0, 3.0);
  ts.append(1.0, 9.0);
  ts.append(2.0, 5.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 9.0);
}

TEST(TimeSeries, ValueAtInterpolatesAndClamps) {
  TimeSeries ts;
  ts.append(0.0, 0.0);
  ts.append(10.0, 100.0);
  EXPECT_DOUBLE_EQ(ts.value_at(5.0), 50.0);
  EXPECT_DOUBLE_EQ(ts.value_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.value_at(20.0), 100.0);
}

TEST(TimeSeries, ValueAtStepDiscontinuity) {
  TimeSeries ts;
  ts.append(0.0, 1.0);
  ts.append(2.0, 1.0);
  ts.append(2.0, 5.0);
  ts.append(4.0, 5.0);
  // At the discontinuity the later sample wins.
  EXPECT_DOUBLE_EQ(ts.value_at(2.0), 5.0);
  EXPECT_DOUBLE_EQ(ts.value_at(1.999), 1.0);
}

TEST(TimeSeries, ResampleUniformGrid) {
  TimeSeries ts;
  ts.append(0.0, 0.0);
  ts.append(10.0, 10.0);
  const TimeSeries grid = ts.resample(2.5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0].time_s, 0.0);
  EXPECT_DOUBLE_EQ(grid[4].time_s, 10.0);
  EXPECT_DOUBLE_EQ(grid[2].value, 5.0);
}

TEST(TimeSeries, ResamplePreservesIntegralOfLinearSignal) {
  TimeSeries ts;
  ts.append(0.0, 0.0);
  ts.append(100.0, 200.0);
  const TimeSeries grid = ts.resample(1.0);
  EXPECT_NEAR(grid.integrate(), ts.integrate(), 1e-6);
}

TEST(TimeSeries, ResampleCoversEndWithNonDividingPeriod) {
  TimeSeries ts;
  ts.append(0.0, 1.0);
  ts.append(10.0, 1.0);
  const TimeSeries grid = ts.resample(3.0);
  EXPECT_DOUBLE_EQ(grid.samples().back().time_s, 10.0);
}

TEST(TimeSeries, ResampleRejectsBadPeriod) {
  TimeSeries ts;
  ts.append(0.0, 1.0);
  EXPECT_THROW((void)ts.resample(0.0), std::invalid_argument);
  const TimeSeries empty;
  EXPECT_THROW((void)empty.resample(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace aeva::util
