#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace aeva::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
  EXPECT_TRUE(std::isinf(stats.min()));
  EXPECT_TRUE(std::isinf(stats.max()));
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Population variance of this classic sample is 4; unbiased = 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(99);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    whole.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> sample = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(sample, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 1.0), 5.0);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> sample = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(sample, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(sample, 0.75), 7.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, -0.5), std::invalid_argument);
}

// Regression: sorting a sample containing NaN is undefined behaviour (NaN
// comparisons break strict weak ordering), so non-finite input must be
// rejected before the sort rather than producing an arbitrary quantile.
TEST(Percentile, RejectsNonFiniteSample) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)percentile({1.0, nan, 3.0}, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)percentile({nan}, 0.0), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0, inf}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile({-inf, 1.0}, 0.5), std::invalid_argument);
}

TEST(MeanOf, RejectsNonFinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)mean_of({1.0, nan}), std::invalid_argument);
  EXPECT_THROW(
      (void)mean_of({std::numeric_limits<double>::infinity()}),
      std::invalid_argument);
}

TEST(WeightedMean, RejectsNonFinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)weighted_mean({nan}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)weighted_mean({1.0}, {nan}), std::invalid_argument);
}

TEST(Pearson, RejectsNonFinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)pearson({1.0, nan}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)pearson({1.0, 2.0}, {nan, 2.0}),
               std::invalid_argument);
}

TEST(MeanOf, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW((void)mean_of({}), std::invalid_argument);
}

TEST(WeightedMean, Basic) {
  EXPECT_DOUBLE_EQ(weighted_mean({1.0, 3.0}, {1.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(weighted_mean({1.0, 3.0}, {3.0, 1.0}), 1.5);
}

TEST(WeightedMean, RejectsBadWeights) {
  EXPECT_THROW((void)weighted_mean({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)weighted_mean({1.0}, {-1.0}), std::invalid_argument);
  EXPECT_THROW((void)weighted_mean({1.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW((void)weighted_mean({}, {}), std::invalid_argument);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, NearZeroForIndependentStreams) {
  Rng rng(123);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 10000; ++i) {
    xs.push_back(rng.uniform());
    ys.push_back(rng.uniform());
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.05);
}

TEST(Pearson, RejectsDegenerateInput) {
  EXPECT_THROW((void)pearson({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)pearson({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)pearson({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
}

/// Property: Welford mean/variance agree with the naive two-pass formulas
/// across random samples.
class StatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsProperty, WelfordMatchesTwoPass) {
  Rng rng(GetParam());
  std::vector<double> sample;
  RunningStats stats;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(-100.0, 100.0);
    sample.push_back(v);
    stats.add(v);
  }
  double mean = 0.0;
  for (const double v : sample) {
    mean += v;
  }
  mean /= n;
  double var = 0.0;
  for (const double v : sample) {
    var += (v - mean) * (v - mean);
  }
  var /= (n - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), var, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL));

}  // namespace
}  // namespace aeva::util
