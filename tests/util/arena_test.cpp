/// \file arena_test.cpp
/// ScratchPool contract: take<T>() hands out empty buffers whose capacity
/// survives reset(), a second take<T>() in the same cycle is a distinct
/// buffer, and a warm cycle performs no pool growth (grows() flat ⇒ the
/// pool itself allocates nothing in steady state).

#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <string>

namespace aeva::util {
namespace {

TEST(ScratchPool, TakeReturnsEmptyBufferWithSurvivingCapacity) {
  ScratchPool pool;
  std::vector<int>& a = pool.take<int>();
  a.assign(100, 7);
  const int* data = a.data();
  const std::size_t cap = a.capacity();
  ASSERT_GE(cap, 100u);

  pool.reset();
  std::vector<int>& b = pool.take<int>();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.capacity(), cap);
  EXPECT_EQ(b.data(), data);  // literally the same storage, recycled
}

TEST(ScratchPool, SecondTakeSameCycleIsADistinctBuffer) {
  ScratchPool pool;
  std::vector<int>& a = pool.take<int>();
  std::vector<int>& b = pool.take<int>();
  EXPECT_NE(&a, &b);
  a.push_back(1);
  b.push_back(2);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(ScratchPool, DistinctTypesGetDistinctSlots) {
  ScratchPool pool;
  std::vector<int>& ints = pool.take<int>();
  std::vector<double>& doubles = pool.take<double>();
  std::vector<std::string>& strings = pool.take<std::string>();
  ints.push_back(1);
  doubles.push_back(2.0);
  strings.emplace_back("three");
  EXPECT_EQ(ints.size(), 1u);
  EXPECT_EQ(doubles.size(), 1u);
  EXPECT_EQ(strings.size(), 1u);
}

TEST(ScratchPool, WarmCyclesStopGrowing) {
  ScratchPool pool;
  // Cold cycle: every take may grow the pool.
  pool.reset();
  pool.take<int>().assign(32, 0);
  pool.take<int>().assign(64, 0);
  pool.take<double>().assign(16, 0.0);
  const std::size_t warm = pool.grows();
  EXPECT_GT(warm, 0u);
  // Warm cycles with the same take pattern: grows() must stay flat.
  for (int cycle = 0; cycle < 50; ++cycle) {
    pool.reset();
    pool.take<int>().assign(32, 0);
    pool.take<int>().assign(64, 0);
    pool.take<double>().assign(16, 0.0);
  }
  EXPECT_EQ(pool.grows(), warm);
}

TEST(ScratchPool, GrowthResumesOnlyForNewTakesOrTypes) {
  ScratchPool pool;
  pool.reset();
  (void)pool.take<int>();
  const std::size_t one = pool.grows();
  pool.reset();
  (void)pool.take<int>();
  (void)pool.take<int>();  // deeper take pattern: one new buffer
  EXPECT_GT(pool.grows(), one);
  const std::size_t two = pool.grows();
  pool.reset();
  (void)pool.take<int>();
  (void)pool.take<int>();
  EXPECT_EQ(pool.grows(), two);
}

}  // namespace
}  // namespace aeva::util
