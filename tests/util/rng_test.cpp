#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace aeva::util {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  std::uint64_t s1 = 1234;
  std::uint64_t s2 = 1234;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t state = 42;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  EXPECT_NE(a, b);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 11.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 11.0);
  }
}

TEST(Rng, UniformRejectsBadBounds) {
  Rng rng(3);
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(9, 9), 9);
  }
}

TEST(Rng, UniformIntRejectsBadBounds) {
  Rng rng(5);
  EXPECT_THROW((void)rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW((void)rng.bernoulli(1.5), std::invalid_argument);
  EXPECT_THROW((void)rng.bernoulli(-0.1), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(8);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(9);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.1);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, LognormalMedian) {
  Rng rng(11);
  std::vector<double> values;
  const int n = 50001;
  values.reserve(n);
  for (int i = 0; i < n; ++i) {
    values.push_back(rng.lognormal(1.0, 0.5));
  }
  std::sort(values.begin(), values.end());
  EXPECT_NEAR(values[n / 2], std::exp(1.0), 0.1);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.weibull(1.0, 3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);  // mean of Exp(scale=3)
  EXPECT_THROW((void)rng.weibull(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.weibull(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(13);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1() == c2()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, RepeatedForksWithSameLabelDiffer) {
  Rng parent(14);
  Rng c1 = parent.fork(7);
  Rng c2 = parent.fork(7);
  EXPECT_NE(c1(), c2());
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(15);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = values;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, values);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(16);
  std::vector<int> values(50);
  for (int i = 0; i < 50; ++i) {
    values[static_cast<std::size_t>(i)] = i;
  }
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);
}

TEST(NamedStream, DeterministicPerSeedAndLabel) {
  Rng a = named_stream(2026, "failures");
  Rng b = named_stream(2026, "failures");
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(NamedStream, DistinctLabelsDecorrelate) {
  Rng a = named_stream(2026, "failures");
  Rng b = named_stream(2026, "meter-noise");
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LE(equal, 1);
}

TEST(NamedStream, DistinctSeedsDecorrelate) {
  Rng a = named_stream(1, "failures");
  Rng b = named_stream(2, "failures");
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LE(equal, 1);
}

TEST(NamedStream, NeverAliasesTheRootSeedStream) {
  // The whole point of named streams: drawing from one must not replay (or
  // perturb) the sequence a plain Rng(seed) consumer sees. A root consumer
  // observes the same values whether or not the named stream was used.
  Rng root_before(2026);
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 16; ++i) {
    expected.push_back(root_before());
  }
  Rng side = named_stream(2026, "failures");
  for (int i = 0; i < 100; ++i) {
    (void)side();  // heavy side-channel use
  }
  Rng root_after(2026);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(root_after(), expected[static_cast<std::size_t>(i)]);
  }
  // And the named stream itself differs from the root sequence.
  Rng named = named_stream(2026, "failures");
  Rng root(2026);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += named() == root() ? 1 : 0;
  }
  EXPECT_LE(equal, 1);
}

TEST(NamedStream, LabelHashIsStable) {
  EXPECT_EQ(stream_label("failures"), stream_label("failures"));
  EXPECT_NE(stream_label("failures"), stream_label("failure"));
  EXPECT_NE(stream_label(""), stream_label("a"));
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformIntUnbiasedOverSmallRange) {
  Rng rng(GetParam());
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 4))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1ULL, 42ULL, 0xdeadbeefULL,
                                           0xffffffffffffffffULL, 2026ULL));

}  // namespace
}  // namespace aeva::util
