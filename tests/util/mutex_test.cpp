// Tests for the annotated synchronization primitives (util/mutex.hpp).
// The interesting property — "guarded field touched without the lock
// fails the build" — is enforced by clang's -Wthread-safety in the CI
// analyze job and cannot be a runtime test; here we pin the runtime
// semantics of the wrappers: mutual exclusion, RAII release, try_lock,
// and condition-variable wakeups.

#include "util/mutex.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace aeva::util {
namespace {

TEST(Mutex, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  // A second owner must be refused while we hold it.
  std::thread contender([&] { EXPECT_FALSE(mu.try_lock()); });
  contender.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexGuard, ReleasesOnScopeExit) {
  Mutex mu;
  {
    const MutexGuard lock(mu);
    std::thread contender([&] { EXPECT_FALSE(mu.try_lock()); });
    contender.join();
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexGuard, ProvidesMutualExclusion) {
  Mutex mu;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const MutexGuard lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(CondVar, WaitWakesOnNotifyAndReholdsTheLock) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;

  std::thread waiter([&] {
    const MutexGuard lock(mu);
    while (!ready) {
      cv.wait(mu);
    }
    // The mutex is held again here; flipping under it is race-free.
    observed = true;
  });

  {
    const MutexGuard lock(mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();

  const MutexGuard lock(mu);
  EXPECT_TRUE(observed);
}

TEST(CondVar, NotifyOneWakesExactlyWaitersEventually) {
  Mutex mu;
  CondVar cv;
  int tokens = 0;
  int consumed = 0;
  constexpr int kConsumers = 4;

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&] {
      const MutexGuard lock(mu);
      while (tokens == 0) {
        cv.wait(mu);
      }
      --tokens;
      ++consumed;
    });
  }

  for (int i = 0; i < kConsumers; ++i) {
    {
      const MutexGuard lock(mu);
      ++tokens;
    }
    cv.notify_all();
  }
  for (std::thread& t : consumers) {
    t.join();
  }
  EXPECT_EQ(consumed, kConsumers);
  EXPECT_EQ(tokens, 0);
}

}  // namespace
}  // namespace aeva::util
