// Hardening cases for the CSV layer added with the fuzz harnesses: arity
// bombs are rejected and oversized malformed lines don't balloon into
// oversized exception messages.

#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace aeva::util {
namespace {

TEST(CsvHardening, RejectsRowsWithAbsurdFieldCounts) {
  // 150k commas → 150k+1 fields, over the 100k bound.
  const std::string bomb(150000, ',');
  EXPECT_THROW((void)csv_decode_row(bomb), std::invalid_argument);
  EXPECT_THROW((void)parse_csv_text(bomb + "\n"), std::invalid_argument);
}

TEST(CsvHardening, WideButSaneRowsStillParse) {
  const std::string row(999, ',');  // 1000 empty fields
  EXPECT_EQ(csv_decode_row(row).size(), 1000u);
}

TEST(CsvHardening, UnterminatedQuoteMessageIsBounded) {
  const std::string huge = "\"" + std::string(1 << 20, 'x');
  try {
    (void)csv_decode_row(huge);
    FAIL() << "unterminated quote accepted";
  } catch (const std::invalid_argument& err) {
    EXPECT_LT(std::string(err.what()).size(), 512u)
        << "exception message embeds the megabyte line";
  }
}

TEST(CsvHardening, ParseCsvRejectsUnterminatedQuoteAtEof) {
  EXPECT_THROW((void)parse_csv_text("a,b\n\"trunc"), std::invalid_argument);
}

}  // namespace
}  // namespace aeva::util
