#include "util/table_printer.hpp"

#include <gtest/gtest.h>

namespace aeva::util {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(TablePrinter, HeaderUnderline) {
  TablePrinter table({"a"});
  table.add_row({"1"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(TablePrinter, RejectsArityMismatch) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, EmptyBodyStillPrintsHeader) {
  TablePrinter table({"col"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("col"), std::string::npos);
}

}  // namespace
}  // namespace aeva::util
