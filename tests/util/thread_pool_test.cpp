#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

namespace aeva::util {
namespace {

TEST(ThreadPool, RejectsBadInput) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), std::invalid_argument);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  constexpr int kTasks = 200;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> runs(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&runs, i] { runs[static_cast<std::size_t>(i)].fetch_add(1); });
  }
  pool.wait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
  EXPECT_EQ(pool.completed_count(), static_cast<std::uint64_t>(kTasks));
}

TEST(ThreadPool, ConcurrentIncrementsAreAllVisibleAfterWait) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kTasks = 1000;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  // Join-before-destroy: every task submitted before destruction runs,
  // even without an explicit wait().
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, WaitRethrowsEarliestSubmittedFailure) {
  ThreadPool pool(4);
  // Several tasks fail; the surfaced exception must be the one from the
  // earliest submission, independent of worker interleaving.
  pool.submit([] { throw std::runtime_error("first"); });
  for (int i = 0; i < 16; ++i) {
    pool.submit([] {});
  }
  pool.submit([] { throw std::runtime_error("second"); });
  try {
    pool.wait();
    FAIL() << "wait() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPool, UsableAfterFailureWasObserved) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.wait(), std::logic_error);
  // The failure list is cleared by the observing wait(); the pool keeps
  // accepting and running work.
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, SubmitFromInsideATask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.submit([&counter] { counter.fetch_add(1); });
  });
  // wait() covers only tasks submitted before the call, so the nested task
  // may still be pending after the first wait. It was submitted before the
  // outer task's completion was counted, so a second wait() must cover it.
  pool.wait();
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ReusableAcrossWaitRounds) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, RecommendedWorkers) {
  EXPECT_EQ(ThreadPool::recommended_workers(4), 4u);
  EXPECT_EQ(ThreadPool::recommended_workers(1), 1u);
  // 0 → hardware concurrency, which is at least one worker.
  EXPECT_GE(ThreadPool::recommended_workers(0), 1u);
}

}  // namespace
}  // namespace aeva::util
