#include "util/args.hpp"

#include <gtest/gtest.h>

namespace aeva::util {
namespace {

Args make_args(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, OptionWithValue) {
  const Args args = make_args({"--alpha", "0.5"});
  EXPECT_EQ(args.get("alpha").value(), "0.5");
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.5);
}

TEST(Args, BooleanFlagAtEnd) {
  const Args args = make_args({"--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose").value(), "");
}

TEST(Args, FlagFollowedByOption) {
  const Args args = make_args({"--quiet", "--n", "7"});
  EXPECT_TRUE(args.has("quiet"));
  EXPECT_EQ(args.get_int("n", 0), 7);
}

TEST(Args, Positional) {
  const Args args = make_args({"input.swf", "--n", "3", "output.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.swf");
  EXPECT_EQ(args.positional()[1], "output.csv");
}

TEST(Args, Defaults) {
  const Args args = make_args({});
  EXPECT_EQ(args.get_string("mode", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("count", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(args.has("anything"));
}

TEST(Args, TypedParseErrors) {
  const Args args = make_args({"--n", "seven"});
  EXPECT_THROW((void)args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("n", 0.0), std::invalid_argument);
}

TEST(Args, RejectsMalformedToken) {
  EXPECT_THROW(make_args({"---x"}), std::invalid_argument);
}

TEST(Args, LastOccurrenceWins) {
  const Args args = make_args({"--n", "1", "--n", "2"});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

}  // namespace
}  // namespace aeva::util
