#include "util/args.hpp"

#include <gtest/gtest.h>

namespace aeva::util {
namespace {

Args make_args(std::initializer_list<const char*> tokens,
               std::vector<std::string> flags = {}) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args(static_cast<int>(argv.size()), argv.data(), std::move(flags));
}

TEST(Args, OptionWithValue) {
  const Args args = make_args({"--alpha", "0.5"});
  EXPECT_EQ(args.get("alpha").value(), "0.5");
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.5);
}

TEST(Args, BooleanFlagAtEnd) {
  const Args args = make_args({"--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose").value(), "");
}

TEST(Args, FlagFollowedByOption) {
  const Args args = make_args({"--quiet", "--n", "7"});
  EXPECT_TRUE(args.has("quiet"));
  EXPECT_EQ(args.get_int("n", 0), 7);
}

TEST(Args, Positional) {
  const Args args = make_args({"input.swf", "--n", "3", "output.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.swf");
  EXPECT_EQ(args.positional()[1], "output.csv");
}

TEST(Args, Defaults) {
  const Args args = make_args({});
  EXPECT_EQ(args.get_string("mode", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("count", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(args.has("anything"));
}

TEST(Args, TypedParseErrors) {
  const Args args = make_args({"--n", "seven"});
  EXPECT_THROW((void)args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("n", 0.0), std::invalid_argument);
}

TEST(Args, RejectsMalformedToken) {
  EXPECT_THROW(make_args({"---x"}), std::invalid_argument);
}

TEST(Args, LastOccurrenceWins) {
  const Args args = make_args({"--n", "1", "--n", "2"});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

// Regression: a declared boolean flag must not swallow the following
// positional (`tool --quick trace.swf` used to bind quick="trace.swf").
TEST(Args, DeclaredFlagKeepsPositional) {
  const Args args = make_args({"--quick", "trace.swf"}, {"quick"});
  EXPECT_TRUE(args.has("quick"));
  EXPECT_EQ(args.get("quick").value(), "");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "trace.swf");
}

// Without the declaration the greedy binding is still the documented
// `--name value` rule — options keep working unchanged.
TEST(Args, UndeclaredOptionStillBindsValue) {
  const Args args = make_args({"--out", "result.csv"});
  EXPECT_EQ(args.get_string("out", ""), "result.csv");
  EXPECT_TRUE(args.positional().empty());
}

TEST(Args, EqualsSyntaxBindsValue) {
  const Args args = make_args({"--alpha=0.25", "--name=x=y"});
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.25);
  // Only the first '=' splits; the value may itself contain '='.
  EXPECT_EQ(args.get_string("name", ""), "x=y");
}

TEST(Args, EqualsSyntaxNeverConsumesNextToken) {
  const Args args = make_args({"--mode=fast", "input.swf"}, {});
  EXPECT_EQ(args.get_string("mode", ""), "fast");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.swf");
}

// Negative numbers start with a single dash and must still parse as
// values of the preceding option.
TEST(Args, NegativeValueBinds) {
  const Args args = make_args({"--offset", "-3"});
  EXPECT_EQ(args.get_int("offset", 0), -3);
  const Args eq = make_args({"--offset=-3"});
  EXPECT_EQ(eq.get_int("offset", 0), -3);
}

TEST(Args, TrailingBareFlags) {
  const Args args = make_args({"input.swf", "--verbose", "--dry-run"});
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.has("dry-run"));
}

TEST(Args, DeclaredFlagBeforeOption) {
  const Args args = make_args({"--quick", "--rounds", "9"}, {"quick"});
  EXPECT_TRUE(args.has("quick"));
  EXPECT_EQ(args.get_int("rounds", 0), 9);
}

// Present-without-a-value is an error on typed lookups, not a silent
// fallback: absent and empty must stay distinguishable.
TEST(Args, EmptyValueOnTypedLookupThrows) {
  const Args args = make_args({"--out", "--n", "7"});  // --out parsed as flag
  EXPECT_THROW((void)args.get_string("out", "default"),
               std::invalid_argument);
  const Args empty = make_args({"--out="});
  EXPECT_THROW((void)empty.get_string("out", "default"),
               std::invalid_argument);
  EXPECT_THROW((void)empty.get_int("out", 1), std::invalid_argument);
  EXPECT_THROW((void)empty.get_double("out", 1.0), std::invalid_argument);
  // Absent still returns the fallback.
  EXPECT_EQ(empty.get_string("missing", "default"), "default");
}

TEST(Args, RejectsMalformedEqualsToken) {
  EXPECT_THROW(make_args({"--=value"}), std::invalid_argument);
  EXPECT_THROW(make_args({"---x=1"}), std::invalid_argument);
}

}  // namespace
}  // namespace aeva::util
