#include "modeldb/learned_model.hpp"

#include <gtest/gtest.h>

#include "testing/shared_db.hpp"

namespace aeva::modeldb {
namespace {

using workload::ClassCounts;
using workload::ProfileClass;

const ModelDatabase& db() { return testing::shared_db(); }

const LearnedModel& model() {
  static const LearnedModel m(db());
  return m;
}

TEST(LearnedModel, TrainsOnWholeDatabase) {
  EXPECT_EQ(model().training_size(), db().size());
}

TEST(LearnedModel, ExactTrainingKeysReproduceMeasurements) {
  for (const Record& truth : db().records()) {
    const Record guess = model().predict(truth.key);
    EXPECT_DOUBLE_EQ(guess.time_s, truth.time_s);
    EXPECT_DOUBLE_EQ(guess.energy_j, truth.energy_j);
    EXPECT_DOUBLE_EQ(guess.max_power_w, truth.max_power_w);
  }
}

TEST(LearnedModel, PredictsPositiveOutcomesOffGrid) {
  const Record guess = model().predict(ClassCounts{3, 4, 5});
  EXPECT_GT(guess.time_s, 0.0);
  EXPECT_GT(guess.energy_j, 0.0);
  EXPECT_GT(guess.max_power_w, 0.0);
  EXPECT_NEAR(guess.avg_time_vm_s, guess.time_s / 12.0, 1e-9);
  EXPECT_NEAR(guess.edp, guess.energy_j * guess.time_s, 1e-3);
}

TEST(LearnedModel, ClassColumnsFollowKey) {
  const Record guess = model().predict(ClassCounts{2, 0, 3});
  EXPECT_GT(guess.time_cpu_s, 0.0);
  EXPECT_DOUBLE_EQ(guess.time_mem_s, 0.0);
  EXPECT_GT(guess.time_io_s, 0.0);
}

TEST(LearnedModel, PredictionInterpolatesBetweenNeighbours) {
  // An off-grid key between two measured pure-CPU packs should land
  // between their per-VM times (the base curve is locally monotone).
  const Record lo = *db().find(ClassCounts{4, 1, 0});
  const Record hi = *db().find(ClassCounts{4, 3, 0});
  const Record mid = model().predict(ClassCounts{4, 2, 0});
  // (4,2,0) is itself measured; use the exact-hit contract instead.
  EXPECT_DOUBLE_EQ(mid.time_s, db().find(ClassCounts{4, 2, 0})->time_s);
  (void)lo;
  (void)hi;
}

TEST(LearnedModel, LeaveOneOutErrorIsBounded) {
  const LooStats stats = model().leave_one_out();
  EXPECT_EQ(stats.samples, db().size());
  // IDW k-NN on the measured grid: useful but imperfect — the headline
  // number for the extension bench. Bound it loosely so calibration
  // changes do not break the suite.
  EXPECT_LT(stats.time_mape, 0.35);
  EXPECT_LT(stats.energy_mape, 0.35);
  EXPECT_GT(stats.time_mape, 0.0);
}

TEST(LearnedModel, MaterializeCoversTheBox) {
  const ModelDatabase learned =
      model().materialize(ClassCounts{2, 2, 2});
  EXPECT_EQ(learned.size(), 3u * 3 * 3 - 1);
  EXPECT_TRUE(learned.measured(ClassCounts{2, 2, 2}));
  EXPECT_TRUE(learned.measured(ClassCounts{1, 0, 0}));
  EXPECT_EQ(learned.base().cpu.os(), db().base().cpu.os());
}

TEST(LearnedModel, MaterializedDatabaseDrivesEstimates) {
  const ModelDatabase learned =
      model().materialize(ClassCounts{4, 4, 4});
  const Record est = learned.estimate(ClassCounts{2, 2, 2});
  EXPECT_GT(est.time_s, 0.0);
  EXPECT_GT(est.energy_j, 0.0);
}

TEST(LearnedModel, DeterministicPredictions) {
  const Record a = model().predict(ClassCounts{5, 2, 7});
  const Record b = model().predict(ClassCounts{5, 2, 7});
  EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
}

TEST(LearnedModel, RejectsBadInputs) {
  EXPECT_THROW((void)model().predict(ClassCounts{0, 0, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)model().materialize(ClassCounts{0, 0, 0}),
               std::invalid_argument);
  LearnedModelConfig bad;
  bad.neighbours = 0;
  EXPECT_THROW((void)LearnedModel(db(), bad), std::invalid_argument);
  bad = LearnedModelConfig{};
  bad.distance_power = 0.0;
  EXPECT_THROW((void)LearnedModel(db(), bad), std::invalid_argument);
}

TEST(LearnedModel, MoreNeighboursSmoothPredictions) {
  LearnedModelConfig k1;
  k1.neighbours = 1;
  LearnedModelConfig k8;
  k8.neighbours = 8;
  const LearnedModel nearest(db(), k1);
  const LearnedModel smooth(db(), k8);
  // k=1 equals the nearest measured record exactly.
  const ClassCounts off{5, 6, 6};
  const Record n1 = nearest.predict(off);
  bool matches_some_training_intensives = false;
  for (const Record& r : db().records()) {
    if (std::abs(r.avg_time_vm_s - n1.avg_time_vm_s) < 1e-9) {
      matches_some_training_intensives = true;
      break;
    }
  }
  EXPECT_TRUE(matches_some_training_intensives);
  // k=8 blends, so it generally differs from any single record.
  const Record n8 = smooth.predict(off);
  EXPECT_NE(n1.avg_time_vm_s, n8.avg_time_vm_s);
}

}  // namespace
}  // namespace aeva::modeldb
