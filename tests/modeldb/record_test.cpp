#include "modeldb/record.hpp"

#include <gtest/gtest.h>

namespace aeva::modeldb {
namespace {

using workload::ProfileClass;

Record sample_record() {
  Record r;
  r.key = {2, 1, 1};
  r.time_s = 2000.0;
  r.avg_time_vm_s = 500.0;
  r.energy_j = 400000.0;
  r.max_power_w = 220.0;
  r.edp = r.energy_j * r.time_s;
  r.time_cpu_s = 1800.0;
  r.time_mem_s = 1600.0;
  r.time_io_s = 2000.0;
  return r;
}

TEST(Record, AvgPower) {
  EXPECT_DOUBLE_EQ(sample_record().avg_power_w(), 200.0);
  Record empty;
  EXPECT_DOUBLE_EQ(empty.avg_power_w(), 0.0);
}

TEST(Record, TimeOfUsesExtensionColumns) {
  const Record r = sample_record();
  EXPECT_DOUBLE_EQ(r.time_of(ProfileClass::kCpu), 1800.0);
  EXPECT_DOUBLE_EQ(r.time_of(ProfileClass::kMem), 1600.0);
  EXPECT_DOUBLE_EQ(r.time_of(ProfileClass::kIo), 2000.0);
}

TEST(Record, TimeOfFallsBackToAvgTime) {
  Record r = sample_record();
  r.time_mem_s = 0.0;  // class column absent
  EXPECT_DOUBLE_EQ(r.time_of(ProfileClass::kMem), r.avg_time_vm_s);
}

TEST(Record, EnergyPerVm) {
  EXPECT_DOUBLE_EQ(sample_record().energy_per_vm_j(), 100000.0);
  Record empty;
  EXPECT_DOUBLE_EQ(empty.energy_per_vm_j(), 0.0);
}

TEST(BaseParameters, PerClassAccessors) {
  BaseParameters base;
  base.cpu.osp = 4;
  base.mem.ose = 7;
  base.io.solo_time_s = 1100.0;
  EXPECT_EQ(base.of(ProfileClass::kCpu).osp, 4);
  EXPECT_EQ(base.of(ProfileClass::kMem).ose, 7);
  EXPECT_DOUBLE_EQ(base.of(ProfileClass::kIo).solo_time_s, 1100.0);

  base.of(ProfileClass::kCpu).ose = 9;
  EXPECT_EQ(base.cpu.ose, 9);
}

TEST(BaseParameters, OsIsMaxOfOspOse) {
  BaseParameters::PerClass entry;
  entry.osp = 5;
  entry.ose = 3;
  EXPECT_EQ(entry.os(), 5);
  entry.ose = 8;
  EXPECT_EQ(entry.os(), 8);
}

TEST(BaseParameters, CombinationCountMatchesPaperFormula) {
  // (OSC+1)(OSM+1)(OSI+1) − (1+OSC+OSM+OSI), Sect. III-B.
  BaseParameters base;
  base.cpu.osp = base.cpu.ose = 5;
  base.mem.osp = base.mem.ose = 6;
  base.io.osp = base.io.ose = 4;
  EXPECT_EQ(base.combination_experiment_count(),
            6LL * 7 * 5 - (1 + 5 + 6 + 4));
}

TEST(BaseParameters, CombinationCountDegenerate) {
  BaseParameters base;  // all OS = 1
  EXPECT_EQ(base.combination_experiment_count(), 2LL * 2 * 2 - 4);
}

}  // namespace
}  // namespace aeva::modeldb
