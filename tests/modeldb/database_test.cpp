#include "modeldb/database.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

namespace aeva::modeldb {
namespace {

using workload::ClassCounts;

Record make_record(ClassCounts key, double time_s, double energy_j) {
  Record r;
  r.key = key;
  r.time_s = time_s;
  r.avg_time_vm_s = time_s / key.total();
  r.energy_j = energy_j;
  r.max_power_w = energy_j / time_s * 1.1;
  r.edp = energy_j * time_s;
  r.time_cpu_s = key.cpu > 0 ? time_s * 0.9 : 0.0;
  r.time_mem_s = key.mem > 0 ? time_s * 0.8 : 0.0;
  r.time_io_s = key.io > 0 ? time_s : 0.0;
  return r;
}

BaseParameters make_base() {
  BaseParameters base;
  base.cpu.osp = base.cpu.ose = 2;
  base.mem.osp = base.mem.ose = 2;
  base.io.osp = base.io.ose = 2;
  base.cpu.solo_time_s = 1200.0;
  base.mem.solo_time_s = 1000.0;
  base.io.solo_time_s = 1100.0;
  return base;
}

/// A small but complete grid: pure keys to 4, mixed keys within the 2-box.
ModelDatabase small_db() {
  std::vector<Record> records;
  for (int n = 1; n <= 4; ++n) {
    records.push_back(make_record({n, 0, 0}, 1200.0 * (1 + 0.1 * (n - 1)),
                                  150000.0 * n));
    records.push_back(make_record({0, n, 0}, 1000.0 * (1 + 0.2 * (n - 1)),
                                  140000.0 * n));
    records.push_back(make_record({0, 0, n}, 1100.0 * (1 + 0.15 * (n - 1)),
                                  145000.0 * n));
  }
  for (int a = 0; a <= 2; ++a) {
    for (int b = 0; b <= 2; ++b) {
      for (int c = 0; c <= 2; ++c) {
        const int nonzero = (a > 0) + (b > 0) + (c > 0);
        if (nonzero <= 1) {
          continue;
        }
        records.push_back(make_record({a, b, c}, 1000.0 + 100.0 * (a + b + c),
                                      120000.0 * (a + b + c)));
      }
    }
  }
  return ModelDatabase(std::move(records), make_base());
}

TEST(ModelDatabase, FindExactHit) {
  const ModelDatabase db = small_db();
  const Record* r = db.find({2, 0, 0});
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->key, (ClassCounts{2, 0, 0}));
}

TEST(ModelDatabase, FindMiss) {
  const ModelDatabase db = small_db();
  EXPECT_EQ(db.find({9, 9, 9}), nullptr);
  EXPECT_EQ(db.find({0, 0, 0}), nullptr);
}

TEST(ModelDatabase, RecordsSortedByKey) {
  const ModelDatabase db = small_db();
  for (std::size_t i = 1; i < db.records().size(); ++i) {
    EXPECT_TRUE(db.records()[i - 1].key < db.records()[i].key);
  }
}

TEST(ModelDatabase, GridExtentTracksMaxima) {
  const ModelDatabase db = small_db();
  EXPECT_EQ(db.grid_extent(), (ClassCounts{4, 4, 4}));
}

TEST(ModelDatabase, RejectsDuplicateKeys) {
  std::vector<Record> records = {make_record({1, 0, 0}, 100.0, 1000.0),
                                 make_record({1, 0, 0}, 200.0, 2000.0)};
  EXPECT_THROW(ModelDatabase(std::move(records), make_base()),
               std::invalid_argument);
}

TEST(ModelDatabase, RejectsEmptyAndInvalidRecords) {
  EXPECT_THROW(ModelDatabase({}, make_base()), std::invalid_argument);

  std::vector<Record> zero_key = {make_record({1, 0, 0}, 100.0, 1000.0)};
  zero_key[0].key = {0, 0, 0};
  EXPECT_THROW(ModelDatabase(std::move(zero_key), make_base()),
               std::invalid_argument);

  std::vector<Record> bad_time = {make_record({1, 0, 0}, 100.0, 1000.0)};
  bad_time[0].time_s = 0.0;
  EXPECT_THROW(ModelDatabase(std::move(bad_time), make_base()),
               std::invalid_argument);
}

TEST(ModelDatabase, EstimateExactHitIsIdentity) {
  const ModelDatabase db = small_db();
  const Record est = db.estimate({1, 1, 0});
  const Record* exact = db.find({1, 1, 0});
  ASSERT_NE(exact, nullptr);
  EXPECT_DOUBLE_EQ(est.time_s, exact->time_s);
  EXPECT_DOUBLE_EQ(est.energy_j, exact->energy_j);
}

TEST(ModelDatabase, EstimatePureKeyBeyondExtentScalesProportionally) {
  const ModelDatabase db = small_db();
  const Record anchor = *db.find({4, 0, 0});
  const Record est = db.estimate({8, 0, 0});
  EXPECT_DOUBLE_EQ(est.time_s, anchor.time_s * 2.0);
  EXPECT_DOUBLE_EQ(est.energy_j, anchor.energy_j * 2.0);
  EXPECT_DOUBLE_EQ(est.avg_time_vm_s, est.time_s / 8.0);
  EXPECT_DOUBLE_EQ(est.edp, est.energy_j * est.time_s);
  EXPECT_EQ(est.key, (ClassCounts{8, 0, 0}));
}

TEST(ModelDatabase, EstimateMixedKeyClampsToOsBox) {
  const ModelDatabase db = small_db();
  // (3,3,0) clamps to (2,2,0) and scales by 6/4.
  const Record anchor = *db.find({2, 2, 0});
  const Record est = db.estimate({3, 3, 0});
  EXPECT_DOUBLE_EQ(est.time_s, anchor.time_s * 1.5);
  EXPECT_DOUBLE_EQ(est.energy_j, anchor.energy_j * 1.5);
}

TEST(ModelDatabase, EstimateScalesPerClassTimes) {
  const ModelDatabase db = small_db();
  const Record anchor = *db.find({2, 2, 0});
  const Record est = db.estimate({3, 3, 0});
  EXPECT_DOUBLE_EQ(est.time_cpu_s, anchor.time_cpu_s * 1.5);
  EXPECT_DOUBLE_EQ(est.time_mem_s, anchor.time_mem_s * 1.5);
}

TEST(ModelDatabase, ExtrapolatedExactHitIsIdentity) {
  const ModelDatabase db = small_db();
  const Record est = db.estimate_extrapolated({2, 2, 0});
  EXPECT_DOUBLE_EQ(est.time_s, db.find({2, 2, 0})->time_s);
}

TEST(ModelDatabase, ExtrapolatedUsesAtLeastLinearGrowth) {
  // The synthetic pure-CPU curve grows 10% per extra VM near the edge —
  // below linear — so the extrapolator falls back to the per-VM linear
  // ratio: time(8) = time(4) × (5/4)^4.
  const ModelDatabase db = small_db();
  const Record anchor = *db.find({4, 0, 0});
  const Record est = db.estimate_extrapolated({8, 0, 0});
  EXPECT_NEAR(est.time_s, anchor.time_s * std::pow(1.25, 4), 1e-6);
  // Proportional scaling gives time(4) × 2; the extrapolation is above it.
  EXPECT_GT(est.time_s, db.estimate({8, 0, 0}).time_s);
}

TEST(ModelDatabase, ExtrapolatedUsesEdgeSlopeWhenSuperLinear) {
  // Hand-built two-point curve with 3× growth per step: the edge slope
  // dominates the linear floor.
  std::vector<Record> records = {make_record({1, 0, 0}, 100.0, 1000.0),
                                 make_record({2, 0, 0}, 300.0, 3000.0)};
  BaseParameters base = make_base();
  const ModelDatabase db(std::move(records), base);
  const Record est = db.estimate_extrapolated({3, 0, 0});
  EXPECT_NEAR(est.time_s, 300.0 * 3.0, 1e-9);
  EXPECT_NEAR(est.energy_j, 3000.0 * 3.0, 1e-9);
}

TEST(ModelDatabase, ExtrapolatedConsistentFields) {
  const ModelDatabase db = small_db();
  const Record est = db.estimate_extrapolated({6, 6, 0});
  EXPECT_NEAR(est.avg_time_vm_s, est.time_s / 12.0, 1e-9);
  EXPECT_NEAR(est.edp, est.energy_j * est.time_s, 1e-3);
  EXPECT_EQ(est.key, (ClassCounts{6, 6, 0}));
}

TEST(ModelDatabase, ExtrapolatedRejectsBadKeys) {
  const ModelDatabase db = small_db();
  EXPECT_THROW((void)db.estimate_extrapolated({0, 0, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)db.estimate_extrapolated({-1, 1, 0}),
               std::invalid_argument);
}

TEST(ModelDatabase, EstimateRejectsEmptyOrNegative) {
  const ModelDatabase db = small_db();
  EXPECT_THROW((void)db.estimate({0, 0, 0}), std::invalid_argument);
  EXPECT_THROW((void)db.estimate({-1, 1, 0}), std::invalid_argument);
}

TEST(ModelDatabase, MeasuredPredicate) {
  const ModelDatabase db = small_db();
  EXPECT_TRUE(db.measured({1, 1, 1}));
  EXPECT_FALSE(db.measured({3, 3, 3}));
}

TEST(ModelDatabase, CsvRoundTripPreservesEverything) {
  const ModelDatabase db = small_db();
  const ModelDatabase loaded =
      ModelDatabase::from_csv(db.to_csv(), db.aux_to_csv());
  ASSERT_EQ(loaded.size(), db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    const Record& a = db.records()[i];
    const Record& b = loaded.records()[i];
    EXPECT_EQ(a.key, b.key);
    EXPECT_NEAR(a.time_s, b.time_s, 1e-3);
    EXPECT_NEAR(a.energy_j, b.energy_j, 1e-1);
    EXPECT_NEAR(a.time_mem_s, b.time_mem_s, 1e-3);
  }
  EXPECT_EQ(loaded.base().cpu.os(), db.base().cpu.os());
  EXPECT_NEAR(loaded.base().io.solo_time_s, db.base().io.solo_time_s, 1e-3);
}

TEST(ModelDatabase, CsvSchemaMatchesTableII) {
  const util::CsvTable csv = small_db().to_csv();
  // The paper's fields first, extension columns after.
  const std::vector<std::string> expected = {
      "Ncpu", "Nmem", "Nio", "Time", "avgTimeVM", "Energy", "MaxPower",
      "EDP",  "timeCpu", "timeMem", "timeIo"};
  EXPECT_EQ(csv.header, expected);
}

TEST(ModelDatabase, LoadsLegacyCsvWithoutExtensionColumns) {
  // A database written by the paper's own toolchain (Table II only) loads;
  // per-class times fall back to avgTimeVM.
  util::CsvTable csv;
  csv.header = {"Ncpu", "Nmem", "Nio", "Time", "avgTimeVM", "Energy",
                "MaxPower", "EDP"};
  csv.rows = {{"1", "0", "0", "1200", "1200", "150000", "180", "1.8e8"}};
  const ModelDatabase db =
      ModelDatabase::from_csv(csv, small_db().aux_to_csv());
  EXPECT_DOUBLE_EQ(db.records()[0].time_of(workload::ProfileClass::kCpu),
                   1200.0);
}

TEST(ModelDatabase, FromCsvRejectsBadCells) {
  util::CsvTable csv = small_db().to_csv();
  csv.rows[0][3] = "not-a-number";
  EXPECT_THROW((void)ModelDatabase::from_csv(csv, small_db().aux_to_csv()),
               std::invalid_argument);
}

TEST(ModelDatabase, AuxRejectsUnknownParameter) {
  util::CsvTable aux = small_db().aux_to_csv();
  aux.rows.push_back({"BOGUS", "1"});
  EXPECT_THROW((void)ModelDatabase::from_csv(small_db().to_csv(), aux),
               std::invalid_argument);
}

TEST(ModelDatabase, SaveLoadFiles) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "aeva_db_test.csv").string();
  const std::string aux = (dir / "aeva_db_test_aux.csv").string();
  const ModelDatabase db = small_db();
  db.save(path, aux);
  const ModelDatabase loaded = ModelDatabase::load(path, aux);
  EXPECT_EQ(loaded.size(), db.size());
  std::filesystem::remove(path);
  std::filesystem::remove(aux);
}

}  // namespace
}  // namespace aeva::modeldb
