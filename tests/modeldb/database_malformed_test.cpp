// Malformed model-DB fixtures exercising the hardened CSV-load error paths
// (fuzz_modeldb findings): typed std::invalid_argument rejections instead
// of UB casts or silent propagation of non-finite values into every
// downstream energy/EDP number.

#include "modeldb/database.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/csv.hpp"

namespace aeva::modeldb {
namespace {

const char* kHeader = "Ncpu,Nmem,Nio,Time,avgTimeVM,Energy,MaxPower,EDP\n";

util::CsvTable aux_table() {
  return util::parse_csv_text(
      "param,value\n"
      "OSPC,2\nOSEC,2\nTC,1200\n"
      "OSPM,2\nOSEM,2\nTM,1000\n"
      "OSPI,2\nOSEI,2\nTI,1100\n");
}

ModelDatabase load_records(const std::string& rows) {
  return ModelDatabase::from_csv(util::parse_csv_text(kHeader + rows),
                                 aux_table());
}

TEST(ModelDbMalformed, RejectsOutOfRangeVmCount) {
  // Previously wrapped through a long long → int cast into a bogus key.
  EXPECT_THROW((void)load_records("99999999999,0,0,1.0,1.0,2.0,3.0,4.0\n"),
               std::invalid_argument);
}

TEST(ModelDbMalformed, RejectsNegativeVmCount) {
  EXPECT_THROW((void)load_records("-1,0,0,1.0,1.0,2.0,3.0,4.0\n"),
               std::invalid_argument);
}

TEST(ModelDbMalformed, RejectsNonFiniteNumericCells) {
  // `inf` satisfies energy > 0 and would poison every EDP downstream.
  EXPECT_THROW((void)load_records("1,0,0,1.0,1.0,inf,3.0,4.0\n"),
               std::invalid_argument);
  EXPECT_THROW((void)load_records("1,0,0,nan,1.0,2.0,3.0,4.0\n"),
               std::invalid_argument);
}

TEST(ModelDbMalformed, RejectsFractionalVmCount) {
  EXPECT_THROW((void)load_records("1.5,0,0,1.0,1.0,2.0,3.0,4.0\n"),
               std::invalid_argument);
}

TEST(ModelDbMalformed, RejectsTruncatedRow) {
  EXPECT_THROW((void)load_records("1,0,0,1.0,1.0\n"), std::invalid_argument);
}

TEST(ModelDbMalformed, RejectsMissingSchemaColumn) {
  EXPECT_THROW((void)ModelDatabase::from_csv(
                   util::parse_csv_text("Ncpu,Nmem\n1,0\n"), aux_table()),
               std::invalid_argument);
}

TEST(ModelDbMalformed, RejectsUnknownAuxParameter) {
  EXPECT_THROW(
      (void)ModelDatabase::from_csv(
          util::parse_csv_text(std::string(kHeader) +
                               "1,0,0,1.0,1.0,2.0,3.0,4.0\n"),
          util::parse_csv_text("param,value\nBOGUS,1\n")),
      std::invalid_argument);
}

TEST(ModelDbMalformed, RejectsOutOfRangeAuxCount) {
  // Previously static_cast<int>(1e300) — undefined behaviour.
  EXPECT_THROW(
      (void)ModelDatabase::from_csv(
          util::parse_csv_text(std::string(kHeader) +
                               "1,0,0,1.0,1.0,2.0,3.0,4.0\n"),
          util::parse_csv_text("param,value\nOSPC,1e300\n")),
      std::invalid_argument);
}

TEST(ModelDbMalformed, ValidRecordsStillLoadAfterHardening) {
  const ModelDatabase db = load_records(
      "1,0,0,1200.0,1200.0,150000.0,140.0,180000000.0\n"
      "0,1,0,1000.0,1000.0,140000.0,150.0,140000000.0\n");
  EXPECT_EQ(db.size(), 2u);
  EXPECT_TRUE(db.measured({1, 0, 0}));
  EXPECT_EQ(db.base().cpu.osp, 2);
}

}  // namespace
}  // namespace aeva::modeldb
