#include "modeldb/campaign.hpp"

#include <gtest/gtest.h>

#include "workload/registry.hpp"

namespace aeva::modeldb {
namespace {

CampaignConfig fast_config() {
  CampaignConfig config;
  config.server = testbed::testbed_server();
  config.max_base_vms = 8;  // smaller sweep keeps unit tests quick
  return config;
}

TEST(Campaign, ScalingCurveHasOneRecordPerCount) {
  const Campaign campaign(fast_config());
  const auto curve =
      campaign.scaling_curve(workload::find_app("linpack"), 6);
  ASSERT_EQ(curve.size(), 6u);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i].key.total(), static_cast<int>(i) + 1);
    EXPECT_EQ(curve[i].key.cpu, static_cast<int>(i) + 1);
    EXPECT_GT(curve[i].time_s, 0.0);
    EXPECT_GT(curve[i].energy_j, 0.0);
    EXPECT_NEAR(curve[i].avg_time_vm_s,
                curve[i].time_s / curve[i].key.total(), 1e-6);
  }
}

TEST(Campaign, ScalingCurveKeyFollowsProfileClass) {
  const Campaign campaign(fast_config());
  const auto curve =
      campaign.scaling_curve(workload::find_app("sysbench"), 3);
  for (const Record& r : curve) {
    EXPECT_EQ(r.key.cpu, 0);
    EXPECT_EQ(r.key.io, 0);
    EXPECT_GT(r.key.mem, 0);
  }
}

TEST(Campaign, BaseTestsCoverAllClasses) {
  const Campaign campaign(fast_config());
  const auto curves = campaign.run_base_tests();
  ASSERT_EQ(curves.size(), 3u);
  for (const BaseCurve& curve : curves) {
    EXPECT_EQ(curve.by_count.size(), 8u);
  }
}

TEST(Campaign, DeriveParametersFindsOptima) {
  const Campaign campaign(fast_config());
  const auto curves = campaign.run_base_tests();
  const BaseParameters base = Campaign::derive_parameters(curves);
  for (const workload::ProfileClass profile : workload::kAllProfileClasses) {
    const auto& entry = base.of(profile);
    EXPECT_GE(entry.osp, 1);
    EXPECT_LE(entry.osp, 8);
    EXPECT_GE(entry.ose, 1);
    EXPECT_LE(entry.ose, 8);
    EXPECT_NEAR(
        entry.solo_time_s,
        workload::canonical_app(profile).nominal_runtime_s(), 1.0);
  }
}

TEST(Campaign, DeriveParametersPicksArgmin) {
  // Hand-built curves with known optima.
  BaseCurve curve;
  curve.profile = workload::ProfileClass::kCpu;
  for (int n = 1; n <= 5; ++n) {
    Record r;
    r.key = {n, 0, 0};
    r.time_s = (n == 3) ? 2.0 * n : 3.0 * n;  // avg time minimal at n=3
    r.avg_time_vm_s = r.time_s / n;
    r.energy_j = (n == 4) ? 50.0 * n : 100.0 * n;  // energy/VM min at n=4
    curve.by_count.push_back(r);
  }
  const BaseParameters base = Campaign::derive_parameters({curve});
  EXPECT_EQ(base.cpu.osp, 3);
  EXPECT_EQ(base.cpu.ose, 4);
  EXPECT_EQ(base.cpu.os(), 4);
}

TEST(Campaign, CombinationCountMatchesFormula) {
  const Campaign campaign(fast_config());
  const BaseParameters base =
      Campaign::derive_parameters(campaign.run_base_tests());
  const auto records = campaign.run_combinations(base);
  EXPECT_EQ(static_cast<long long>(records.size()),
            base.combination_experiment_count());
}

TEST(Campaign, CombinationsExcludePureAndEmptyKeys) {
  const Campaign campaign(fast_config());
  const BaseParameters base =
      Campaign::derive_parameters(campaign.run_base_tests());
  for (const Record& r : campaign.run_combinations(base)) {
    const int nonzero =
        (r.key.cpu > 0) + (r.key.mem > 0) + (r.key.io > 0);
    EXPECT_GE(nonzero, 2) << "pure or empty key leaked into combinations";
  }
}

TEST(Campaign, BuildProducesSearchableDatabase) {
  const Campaign campaign(fast_config());
  const ModelDatabase db = campaign.build();
  // Base tests (3 × 8) + combinations.
  EXPECT_EQ(static_cast<long long>(db.size()),
            24 + db.base().combination_experiment_count());
  // Every in-box mixed key is measured.
  EXPECT_TRUE(db.measured({1, 1, 0}));
  EXPECT_TRUE(db.measured({1, 1, 1}));
  // Pure keys up to the base sweep are measured.
  EXPECT_TRUE(db.measured({8, 0, 0}));
}

TEST(Campaign, MeasureRecordsPerClassTimes) {
  const Campaign campaign(fast_config());
  const Record r = campaign.measure({1, 1, 1});
  EXPECT_GT(r.time_cpu_s, 0.0);
  EXPECT_GT(r.time_mem_s, 0.0);
  EXPECT_GT(r.time_io_s, 0.0);
  // With CPU/MEM/IO canonical apps the longest class bounds the total.
  EXPECT_NEAR(r.time_s,
              std::max({r.time_cpu_s, r.time_mem_s, r.time_io_s}), 1e-6);
}

TEST(Campaign, MeasureRejectsEmptyKey) {
  const Campaign campaign(fast_config());
  EXPECT_THROW((void)campaign.measure({0, 0, 0}), std::invalid_argument);
}

TEST(Campaign, DeterministicWithSameSeed) {
  const Campaign a(fast_config());
  const Campaign b(fast_config());
  const Record ra = a.measure({2, 1, 0});
  const Record rb = b.measure({2, 1, 0});
  EXPECT_DOUBLE_EQ(ra.energy_j, rb.energy_j);
  EXPECT_DOUBLE_EQ(ra.max_power_w, rb.max_power_w);
}

TEST(Campaign, MeterNoiseSeedChangesEnergyOnly) {
  CampaignConfig c1 = fast_config();
  CampaignConfig c2 = fast_config();
  c2.meter_seed = c1.meter_seed + 1;
  const Record r1 = Campaign(c1).measure({2, 2, 0});
  const Record r2 = Campaign(c2).measure({2, 2, 0});
  EXPECT_DOUBLE_EQ(r1.time_s, r2.time_s);  // timing is meter-independent
  EXPECT_NE(r1.energy_j, r2.energy_j);     // metered energy differs
}

TEST(Campaign, NoiseFreeModeMatchesGroundTruth) {
  CampaignConfig config = fast_config();
  config.meter_noise = false;
  const Campaign campaign(config);
  const Record r = campaign.measure({1, 0, 1});
  // Without noise the metered energy equals the exact integral.
  testbed::MicroSim sim(config.server);
  const auto truth = sim.run(
      {testbed::VmRun{workload::canonical_app(workload::ProfileClass::kCpu),
                      0.0},
       testbed::VmRun{workload::canonical_app(workload::ProfileClass::kIo),
                      0.0}});
  EXPECT_NEAR(r.energy_j, truth.energy_j, truth.energy_j * 1e-9);
}

TEST(Campaign, MeteredEnergyWithinNoiseOfGroundTruth) {
  const Campaign noisy(fast_config());
  CampaignConfig clean_config = fast_config();
  clean_config.meter_noise = false;
  const Campaign clean(clean_config);
  const Record a = noisy.measure({2, 2, 2});
  const Record b = clean.measure({2, 2, 2});
  EXPECT_NEAR(a.energy_j, b.energy_j, b.energy_j * 0.01);
}

TEST(Campaign, EdpIsEnergyTimesTime) {
  const Campaign campaign(fast_config());
  const Record r = campaign.measure({1, 2, 0});
  EXPECT_NEAR(r.edp, r.energy_j * r.time_s, 1e-3);
}

TEST(Campaign, ParallelSweepIsBitIdenticalToSerial) {
  // Every combination experiment is independent with a key-derived meter
  // stream, so the thread count must not change a single bit.
  CampaignConfig serial = fast_config();
  serial.threads = 1;
  CampaignConfig parallel = fast_config();
  parallel.threads = 4;
  const ModelDatabase a = Campaign(serial).build();
  const ModelDatabase b = Campaign(parallel).build();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].key, b.records()[i].key);
    EXPECT_DOUBLE_EQ(a.records()[i].time_s, b.records()[i].time_s);
    EXPECT_DOUBLE_EQ(a.records()[i].energy_j, b.records()[i].energy_j);
    EXPECT_DOUBLE_EQ(a.records()[i].max_power_w, b.records()[i].max_power_w);
  }
}

TEST(Campaign, OversubscribedPoolIsBitIdenticalToSerial) {
  // Regression for the util::ThreadPool migration (the sweep used to
  // fan out raw std::threads, flagged by aeva_check `raw-thread`): a
  // worker count far above the experiment count must neither drop nor
  // reorder results — each task writes only its own slot and the pool
  // drains fully before build() reads them.
  CampaignConfig serial = fast_config();
  serial.threads = 1;
  CampaignConfig oversubscribed = fast_config();
  oversubscribed.threads = 64;
  const ModelDatabase a = Campaign(serial).build();
  const ModelDatabase b = Campaign(oversubscribed).build();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].key, b.records()[i].key);
    EXPECT_DOUBLE_EQ(a.records()[i].time_s, b.records()[i].time_s);
    EXPECT_DOUBLE_EQ(a.records()[i].energy_j, b.records()[i].energy_j);
  }
}

TEST(Campaign, AutoThreadCountWorks) {
  CampaignConfig config = fast_config();
  config.threads = 0;  // one per hardware core
  const ModelDatabase db = Campaign(config).build();
  EXPECT_GT(db.size(), 0u);
}

TEST(Campaign, RejectsBadConfig) {
  CampaignConfig config = fast_config();
  config.max_base_vms = 0;
  EXPECT_THROW((void)Campaign{config}, std::invalid_argument);
}

}  // namespace
}  // namespace aeva::modeldb
