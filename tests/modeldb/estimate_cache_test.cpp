#include "modeldb/estimate_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "testing/shared_db.hpp"
#include "workload/profile.hpp"

namespace aeva::modeldb {
namespace {

using workload::ClassCounts;

const ModelDatabase& db() { return testing::shared_db(); }

bool same_record(const Record& a, const Record& b) {
  return a.key == b.key && a.time_s == b.time_s &&
         a.avg_time_vm_s == b.avg_time_vm_s && a.energy_j == b.energy_j &&
         a.max_power_w == b.max_power_w && a.edp == b.edp &&
         a.time_cpu_s == b.time_cpu_s && a.time_mem_s == b.time_mem_s &&
         a.time_io_s == b.time_io_s;
}

TEST(EstimateCache, RejectsBadConfig) {
  EXPECT_THROW(EstimateCache(db(), 0), std::invalid_argument);
  EXPECT_THROW(EstimateCache(db(), 4, 0), std::invalid_argument);
}

TEST(EstimateCache, RejectsBadKeysWithoutCachingThem) {
  const EstimateCache cache(db());
  EXPECT_THROW((void)cache.estimate(ClassCounts{0, 0, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)cache.estimate(ClassCounts{-1, 1, 0}),
               std::invalid_argument);
  const EstimateCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(EstimateCache, ReturnsBitIdenticalRecords) {
  const EstimateCache cache(db());
  for (int cpu = 0; cpu <= 3; ++cpu) {
    for (int mem = 0; mem <= 3; ++mem) {
      for (int io = 0; io <= 2; ++io) {
        const ClassCounts key{cpu, mem, io};
        if (key.total() == 0) {
          continue;
        }
        const Record direct = db().estimate(key);
        // Both the miss path and the subsequent hit path must return the
        // exact record the database computed.
        EXPECT_TRUE(same_record(cache.estimate(key), direct));
        EXPECT_TRUE(same_record(cache.estimate(key), direct));
      }
    }
  }
}

TEST(EstimateCache, CountsHitsAndMisses) {
  const EstimateCache cache(db());
  const ClassCounts a{1, 0, 0};
  const ClassCounts b{0, 2, 1};
  (void)cache.estimate(a);  // miss
  (void)cache.estimate(a);  // hit
  (void)cache.estimate(a);  // hit
  (void)cache.estimate(b);  // miss
  (void)cache.estimate(b);  // hit
  const EstimateCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(EstimateCache, EpochFlushEvictsFullShards) {
  // One shard holding one entry: every new key flushes the previous one.
  const EstimateCache cache(db(), 1, 1);
  (void)cache.estimate(ClassCounts{1, 0, 0});
  (void)cache.estimate(ClassCounts{2, 0, 0});
  (void)cache.estimate(ClassCounts{3, 0, 0});
  const EstimateCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(EstimateCache, ClearDropsSharedEntriesButL1CopiesStayValid) {
  const EstimateCache cache(db());
  const ClassCounts key{2, 1, 0};
  const Record direct = db().estimate(key);
  (void)cache.estimate(key);
  EXPECT_EQ(cache.stats().entries, 1u);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // A record is an immutable pure function of (database, key), so the
  // thread-local L1 copy survives the clear: the lookup still answers
  // correctly and counts as a hit, without repopulating the shard level.
  const EstimateCache::Stats before = cache.stats();
  EXPECT_TRUE(same_record(cache.estimate(key), direct));
  const EstimateCache::Stats after = cache.stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(EstimateCache, DistinctCachesDoNotShareL1Slots) {
  // Same key through two caches over the same database: the second cache
  // must record its own miss (instance-id tags keep L1 slots private).
  const ClassCounts key{1, 1, 1};
  const EstimateCache first(db());
  (void)first.estimate(key);
  const EstimateCache second(db());
  (void)second.estimate(key);
  EXPECT_EQ(second.stats().misses, 1u);
  EXPECT_EQ(second.stats().hits, 0u);
}

TEST(EstimateCache, ConcurrentLookupsAgreeWithTheDatabase) {
  const EstimateCache cache(db());
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &cache, &failures] {
      for (int round = 0; round < kRounds; ++round) {
        for (int cpu = 0; cpu <= 2; ++cpu) {
          for (int mem = 0; mem <= 2; ++mem) {
            const ClassCounts key{cpu, mem, (cpu + mem) % 2};
            if (key.total() == 0) {
              continue;
            }
            if (!same_record(cache.estimate(key), db().estimate(key))) {
              ++failures[static_cast<std::size_t>(t)];
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[static_cast<std::size_t>(t)], 0) << "thread " << t;
  }
  const EstimateCache::Stats stats = cache.stats();
  // Every lookup is accounted for as either a hit or a miss.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kRounds * 8);
}

}  // namespace
}  // namespace aeva::modeldb
