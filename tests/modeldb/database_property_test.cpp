/// Property suite over the *real* campaign database: physical laws the
/// measured records must obey. These pin the whole benchmarking pipeline
/// (microsim → meter → campaign → database) at once.

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/shared_db.hpp"

namespace aeva::modeldb {
namespace {

using workload::ClassCounts;
using workload::ProfileClass;

const ModelDatabase& db() { return testing::shared_db(); }

TEST(DatabaseProperty, TimeMonotoneInEveryClassWithinGrid) {
  // Adding a VM never finishes the batch earlier (fluid contention can
  // only slow things down; timing carries no meter noise).
  for (const Record& r : db().records()) {
    for (const ProfileClass profile : workload::kAllProfileClasses) {
      ClassCounts bigger = r.key;
      ++bigger.of(profile);
      const Record* next = db().find(bigger);
      if (next != nullptr) {
        EXPECT_GE(next->time_s + 1e-6, r.time_s)
            << "(" << r.key.cpu << "," << r.key.mem << "," << r.key.io
            << ") + " << workload::to_string(profile);
      }
    }
  }
}

TEST(DatabaseProperty, EnergyGrowsWithTheMixModuloMeterNoise) {
  // Energy = ∫P with P ≥ idle: a strictly longer, busier run must consume
  // more. Meter noise is ±1.5% per sample and averages out far below 1%
  // over a run, so allow a 2% tolerance band.
  for (const Record& r : db().records()) {
    for (const ProfileClass profile : workload::kAllProfileClasses) {
      ClassCounts bigger = r.key;
      ++bigger.of(profile);
      const Record* next = db().find(bigger);
      if (next != nullptr) {
        EXPECT_GE(next->energy_j, r.energy_j * 0.98)
            << "(" << r.key.cpu << "," << r.key.mem << "," << r.key.io
            << ") + " << workload::to_string(profile);
      }
    }
  }
}

TEST(DatabaseProperty, MeanPowerWithinHardwareEnvelope) {
  const double idle = 125.0;
  const double peak = testbed::testbed_server().power.peak_w();
  for (const Record& r : db().records()) {
    EXPECT_GE(r.avg_power_w(), idle * 0.97) << "key total " << r.key.total();
    EXPECT_LE(r.avg_power_w(), peak * 1.03);
    EXPECT_GE(r.max_power_w, r.avg_power_w() * 0.97);
    EXPECT_LE(r.max_power_w, peak * 1.05);
  }
}

TEST(DatabaseProperty, InternalFieldConsistency) {
  for (const Record& r : db().records()) {
    EXPECT_NEAR(r.avg_time_vm_s, r.time_s / r.key.total(),
                1e-6 * r.time_s);
    EXPECT_NEAR(r.edp, r.energy_j * r.time_s, 1e-6 * r.edp);
    // The batch finishes when its slowest class finishes.
    double slowest = 0.0;
    if (r.key.cpu > 0) slowest = std::max(slowest, r.time_cpu_s);
    if (r.key.mem > 0) slowest = std::max(slowest, r.time_mem_s);
    if (r.key.io > 0) slowest = std::max(slowest, r.time_io_s);
    EXPECT_NEAR(r.time_s, slowest, 1e-6 * r.time_s);
  }
}

TEST(DatabaseProperty, PerClassTimesPresentExactlyForResidentClasses) {
  for (const Record& r : db().records()) {
    EXPECT_EQ(r.key.cpu > 0, r.time_cpu_s > 0.0);
    EXPECT_EQ(r.key.mem > 0, r.time_mem_s > 0.0);
    EXPECT_EQ(r.key.io > 0, r.time_io_s > 0.0);
  }
}

TEST(DatabaseProperty, SoloRecordsMatchBaseParameters) {
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    ClassCounts solo;
    solo.of(profile) = 1;
    const Record* r = db().find(solo);
    ASSERT_NE(r, nullptr);
    EXPECT_NEAR(r->time_s, db().base().of(profile).solo_time_s, 1e-6);
  }
}

TEST(DatabaseProperty, GridIsCompleteInsideTheOsBox) {
  const auto& base = db().base();
  for (int a = 0; a <= base.cpu.os(); ++a) {
    for (int b = 0; b <= base.mem.os(); ++b) {
      for (int c = 0; c <= base.io.os(); ++c) {
        if (a + b + c == 0) {
          continue;
        }
        EXPECT_TRUE(db().measured(ClassCounts{a, b, c}))
            << "(" << a << "," << b << "," << c << ")";
      }
    }
  }
}

}  // namespace
}  // namespace aeva::modeldb
