/// Property suites for the testbed microsimulator: conservation laws and
/// monotonicity that must hold for *any* admissible workload, exercised
/// over randomized app specs.

#include <gtest/gtest.h>

#include <cmath>

#include "testbed/microsim.hpp"
#include "util/rng.hpp"
#include "workload/registry.hpp"

namespace aeva::testbed {
namespace {

using workload::AppSpec;
using workload::Demand;
using workload::Phase;
using workload::ProfileClass;

/// Random but valid app spec.
AppSpec random_app(util::Rng& rng, int index) {
  AppSpec app;
  // (two-step append avoids a GCC 12 -Wrestrict false positive on
  // operator+ with a string literal)
  app.name = "rand";
  app.name += std::to_string(index);
  app.profile = workload::kAllProfileClasses[static_cast<std::size_t>(
      rng.uniform_int(0, 2))];
  app.mem_footprint_mb = rng.uniform(32.0, 700.0);
  const int phases = static_cast<int>(rng.uniform_int(1, 4));
  for (int p = 0; p < phases; ++p) {
    Phase phase;
    phase.name = "p";
    phase.name += std::to_string(p);
    phase.demand = Demand{rng.uniform(0.05, 1.0), rng.uniform(0.0, 0.4),
                          rng.uniform(0.0, 60.0), rng.uniform(0.0, 40.0)};
    phase.nominal_s = rng.uniform(50.0, 800.0);
    app.phases.push_back(phase);
  }
  return app;
}

class MicroSimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MicroSimProperty, RuntimeNeverBeatsNominal) {
  // Contention can only slow an application down.
  util::Rng rng(GetParam());
  const MicroSim sim(testbed_server());
  std::vector<VmRun> vms;
  const int count = static_cast<int>(rng.uniform_int(1, 10));
  for (int i = 0; i < count; ++i) {
    vms.push_back(VmRun{random_app(rng, i), rng.uniform(0.0, 200.0)});
  }
  const SimResult result = sim.run(vms);
  ASSERT_EQ(result.vms.size(), vms.size());
  for (std::size_t i = 0; i < vms.size(); ++i) {
    EXPECT_GE(result.vms[i].runtime_s() + 1e-6,
              vms[i].app.nominal_runtime_s())
        << vms[i].app.name;
  }
}

TEST_P(MicroSimProperty, EnergyBoundedByPowerEnvelope) {
  util::Rng rng(GetParam() ^ 0xabcdULL);
  const ServerConfig config = testbed_server();
  const MicroSim sim(config);
  std::vector<VmRun> vms;
  const int count = static_cast<int>(rng.uniform_int(1, 8));
  for (int i = 0; i < count; ++i) {
    vms.push_back(VmRun{random_app(rng, i), 0.0});
  }
  const SimResult result = sim.run(vms);
  EXPECT_GE(result.energy_j,
            config.power.idle_w * result.makespan_s - 1e-6);
  EXPECT_LE(result.energy_j,
            config.power.peak_w() * result.makespan_s + 1e-6);
}

TEST_P(MicroSimProperty, AddingAVmNeverSpeedsOthersUp) {
  util::Rng rng(GetParam() ^ 0x7777ULL);
  const MicroSim sim(testbed_server());
  std::vector<VmRun> base;
  const int count = static_cast<int>(rng.uniform_int(1, 6));
  for (int i = 0; i < count; ++i) {
    base.push_back(VmRun{random_app(rng, i), 0.0});
  }
  const SimResult before = sim.run(base);

  std::vector<VmRun> extended = base;
  extended.push_back(VmRun{random_app(rng, 99), 0.0});
  const SimResult after = sim.run(extended);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_GE(after.vms[i].finish_s + 1e-6, before.vms[i].finish_s)
        << "VM " << i << " finished earlier with more contention";
  }
}

TEST_P(MicroSimProperty, ShiftingAllStartsShiftsAllFinishes) {
  // Time-invariance: delaying every arrival by Δ delays every completion
  // by exactly Δ.
  util::Rng rng(GetParam() ^ 0x1357ULL);
  const MicroSim sim(testbed_server());
  std::vector<VmRun> vms;
  const int count = static_cast<int>(rng.uniform_int(1, 6));
  for (int i = 0; i < count; ++i) {
    vms.push_back(VmRun{random_app(rng, i), rng.uniform(0.0, 100.0)});
  }
  const SimResult base = sim.run(vms);

  const double shift = 500.0;
  std::vector<VmRun> shifted = vms;
  for (VmRun& vm : shifted) {
    vm.start_s += shift;
  }
  const SimResult moved = sim.run(shifted);
  for (std::size_t i = 0; i < vms.size(); ++i) {
    EXPECT_NEAR(moved.vms[i].finish_s, base.vms[i].finish_s + shift, 1e-6);
  }
  EXPECT_NEAR(moved.makespan_s, base.makespan_s, 1e-6);
}

TEST_P(MicroSimProperty, UtilizationNeverExceedsCapacity) {
  util::Rng rng(GetParam() ^ 0x2468ULL);
  const MicroSim sim(testbed_server());
  std::vector<VmRun> vms;
  const int count = static_cast<int>(rng.uniform_int(2, 12));
  for (int i = 0; i < count; ++i) {
    vms.push_back(VmRun{random_app(rng, i), 0.0});
  }
  const SimResult result = sim.run(vms);
  for (const workload::Subsystem s : workload::kAllSubsystems) {
    for (const auto& sample : result.utilization.of(s).samples()) {
      EXPECT_LE(sample.value, 1.0 + 1e-9) << workload::to_string(s);
      EXPECT_GE(sample.value, -1e-12);
    }
  }
}

TEST_P(MicroSimProperty, FasterHardwareNeverSlower) {
  util::Rng rng(GetParam() ^ 0x9999ULL);
  std::vector<VmRun> vms;
  const int count = static_cast<int>(rng.uniform_int(2, 8));
  for (int i = 0; i < count; ++i) {
    vms.push_back(VmRun{random_app(rng, i), 0.0});
  }
  const SimResult small = MicroSim(testbed_server()).run(vms);
  const SimResult big = MicroSim(bigbox_server()).run(vms);
  EXPECT_LE(big.makespan_s, small.makespan_s + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MicroSimProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace aeva::testbed
