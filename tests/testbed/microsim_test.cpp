#include "testbed/microsim.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/registry.hpp"

namespace aeva::testbed {
namespace {

using workload::AppSpec;
using workload::Demand;
using workload::Phase;
using workload::ProfileClass;

AppSpec simple_app(double cpu, double nominal_s, double footprint_mb = 64.0) {
  AppSpec app;
  app.name = "simple";
  app.profile = ProfileClass::kCpu;
  app.mem_footprint_mb = footprint_mb;
  app.phases = {Phase{"run", Demand{cpu, 0.0, 0.0, 0.0}, nominal_s}};
  return app;
}

TEST(MicroSim, SoloRunFinishesAtNominalTime) {
  const MicroSim sim(testbed_server());
  const SimResult result = sim.run({VmRun{simple_app(0.5, 500.0), 0.0}});
  ASSERT_EQ(result.vms.size(), 1u);
  EXPECT_NEAR(result.vms[0].finish_s, 500.0, 1e-6);
  EXPECT_NEAR(result.makespan_s, 500.0, 1e-6);
}

TEST(MicroSim, UncontendedVmsRunInParallelAtFullSpeed) {
  const MicroSim sim(testbed_server());
  // Two half-core VMs on four cores: no contention.
  const SimResult result = sim.run({VmRun{simple_app(0.5, 500.0), 0.0},
                                    VmRun{simple_app(0.5, 500.0), 0.0}});
  for (const VmOutcome& vm : result.vms) {
    EXPECT_NEAR(vm.runtime_s(), 500.0, 1e-6);
  }
}

TEST(MicroSim, CpuContentionStretchesRuntime) {
  ServerConfig config = testbed_server();
  config.per_vm_cpu_overhead = 0.0;
  config.sched_overhead = 0.0;
  const MicroSim sim(config);
  // Eight full-core VMs on four cores: proportional share halves progress.
  std::vector<VmRun> vms(8, VmRun{simple_app(1.0, 400.0), 0.0});
  const SimResult result = sim.run(vms);
  for (const VmOutcome& vm : result.vms) {
    EXPECT_NEAR(vm.runtime_s(), 800.0, 1e-6);
  }
}

TEST(MicroSim, MakespanIsMonotoneInVmCount) {
  const MicroSim sim(testbed_server());
  double previous = 0.0;
  for (int n = 1; n <= 12; ++n) {
    std::vector<VmRun> vms(static_cast<std::size_t>(n),
                           VmRun{workload::find_app("linpack"), 0.0});
    const SimResult result = sim.run(vms);
    EXPECT_GE(result.makespan_s, previous - 1e-9) << n;
    previous = result.makespan_s;
  }
}

TEST(MicroSim, StaggeredStartRespectsArrival) {
  const MicroSim sim(testbed_server());
  const SimResult result = sim.run({VmRun{simple_app(0.5, 100.0), 0.0},
                                    VmRun{simple_app(0.5, 100.0), 300.0}});
  EXPECT_NEAR(result.vms[0].finish_s, 100.0, 1e-6);
  // Second VM starts after an idle gap and is unconstrained.
  EXPECT_NEAR(result.vms[1].finish_s, 400.0, 1e-6);
  EXPECT_NEAR(result.makespan_s, 400.0, 1e-6);
}

TEST(MicroSim, IdleGapDrawsIdlePowerOnly) {
  const ServerConfig config = testbed_server();
  const MicroSim sim(config);
  const SimResult result = sim.run({VmRun{simple_app(1.0, 100.0), 0.0},
                                    VmRun{simple_app(1.0, 100.0), 500.0}});
  // Between t=100 and t=500 nothing runs.
  EXPECT_NEAR(result.power_w.value_at(300.0), config.power.idle_w, 1e-6);
  EXPECT_GT(result.power_w.value_at(50.0), config.power.idle_w);
}

TEST(MicroSim, PowerWithinModelBounds) {
  const ServerConfig config = testbed_server();
  const MicroSim sim(config);
  std::vector<VmRun> vms(10, VmRun{workload::find_app("linpack"), 0.0});
  const SimResult result = sim.run(vms);
  for (const auto& sample : result.power_w.samples()) {
    EXPECT_GE(sample.value, config.power.idle_w - 1e-9);
    EXPECT_LE(sample.value, config.power.peak_w() + 1e-9);
  }
  EXPECT_GT(result.max_power_w, config.power.idle_w);
  EXPECT_LE(result.max_power_w, config.power.peak_w());
}

TEST(MicroSim, EnergyEqualsPowerIntegral) {
  const MicroSim sim(testbed_server());
  const SimResult result =
      sim.run({VmRun{workload::find_app("sysbench"), 0.0}});
  EXPECT_NEAR(result.energy_j, result.power_w.integrate(), 1e-6);
  EXPECT_GT(result.energy_j, 0.0);
}

TEST(MicroSim, MultiPhaseAppCompletesAllPhases) {
  const MicroSim sim(testbed_server());
  const SimResult result = sim.run({VmRun{workload::find_app("fftw"), 0.0}});
  EXPECT_NEAR(result.vms[0].runtime_s(),
              workload::find_app("fftw").nominal_runtime_s(), 1e-6);
}

TEST(MicroSim, DiskContentionScalesWithDemand) {
  ServerConfig config = testbed_server();  // 180 MB/s aggregate
  const MicroSim sim(config);
  AppSpec io_app;
  io_app.name = "io";
  io_app.profile = ProfileClass::kIo;
  io_app.mem_footprint_mb = 32.0;
  io_app.phases = {Phase{"stream", Demand{0.05, 0.0, 90.0, 0.0}, 100.0}};
  // Four VMs demand 360 MB/s against 180 MB/s: progress halves.
  std::vector<VmRun> vms(4, VmRun{io_app, 0.0});
  const SimResult result = sim.run(vms);
  for (const VmOutcome& vm : result.vms) {
    EXPECT_NEAR(vm.runtime_s(), 200.0, 1.0);
  }
}

TEST(MicroSim, NetworkContentionScalesWithDemand) {
  const MicroSim sim(testbed_server());  // 250 MB/s aggregate
  AppSpec net_app;
  net_app.name = "net";
  net_app.profile = ProfileClass::kIo;
  net_app.mem_footprint_mb = 32.0;
  net_app.phases = {Phase{"xfer", Demand{0.05, 0.0, 0.0, 125.0}, 100.0}};
  std::vector<VmRun> vms(4, VmRun{net_app, 0.0});
  const SimResult result = sim.run(vms);
  for (const VmOutcome& vm : result.vms) {
    EXPECT_NEAR(vm.runtime_s(), 200.0, 1.0);
  }
}

TEST(MicroSim, MemoryOvercommitTriggersThrashing) {
  const ServerConfig config = testbed_server();
  const MicroSim sim(config);
  const double fits = config.guest_mem_mb() / 4.0 - 1.0;
  std::vector<VmRun> ok(4, VmRun{simple_app(0.2, 100.0, fits), 0.0});
  const double t_ok = sim.run(ok).makespan_s;

  std::vector<VmRun> over(
      4, VmRun{simple_app(0.2, 100.0, fits * 1.5), 0.0});
  const double t_over = sim.run(over).makespan_s;
  EXPECT_GT(t_over, t_ok * 1.5);
}

TEST(MicroSim, AvgTimePerVmMatchesPaperDefinition) {
  const MicroSim sim(testbed_server());
  std::vector<VmRun> vms(4, VmRun{workload::find_app("linpack"), 0.0});
  const SimResult result = sim.run(vms);
  double max_finish = 0.0;
  for (const VmOutcome& vm : result.vms) {
    max_finish = std::max(max_finish, vm.finish_s);
  }
  EXPECT_NEAR(result.avg_time_per_vm_s(), max_finish / 4.0, 1e-9);
}

TEST(MicroSim, RejectsEmptyInput) {
  const MicroSim sim(testbed_server());
  EXPECT_THROW((void)sim.run({}), std::invalid_argument);
}

TEST(MicroSim, RejectsNegativeStartTime) {
  const MicroSim sim(testbed_server());
  EXPECT_THROW((void)sim.run({VmRun{simple_app(0.5, 10.0), -1.0}}),
               std::invalid_argument);
}

TEST(MicroSim, RejectsInvalidAppSpec) {
  const MicroSim sim(testbed_server());
  workload::AppSpec bad;
  bad.name = "bad";
  EXPECT_THROW((void)sim.run({VmRun{bad, 0.0}}), std::invalid_argument);
}

TEST(MicroSim, DeterministicAcrossRuns) {
  const MicroSim sim(testbed_server());
  std::vector<VmRun> vms = {VmRun{workload::find_app("linpack"), 0.0},
                            VmRun{workload::find_app("sysbench"), 10.0},
                            VmRun{workload::find_app("beffio"), 20.0}};
  const SimResult a = sim.run(vms);
  const SimResult b = sim.run(vms);
  ASSERT_EQ(a.vms.size(), b.vms.size());
  for (std::size_t i = 0; i < a.vms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.vms[i].finish_s, b.vms[i].finish_s);
  }
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
}

TEST(MicroSim, UtilizationTracesCoverTheRun) {
  const MicroSim sim(testbed_server());
  const SimResult result =
      sim.run({VmRun{workload::find_app("beffio"), 0.0}});
  for (const workload::Subsystem s : workload::kAllSubsystems) {
    const auto& series = result.utilization.of(s);
    ASSERT_FALSE(series.empty());
    EXPECT_NEAR(series.end_time(), result.makespan_s, 1e-6);
    for (const auto& sample : series.samples()) {
      EXPECT_GE(sample.value, 0.0);
      EXPECT_LE(sample.value, 1.0 + 1e-9);
    }
  }
}

/// Property sweep: for any same-type pack of the canonical apps, the
/// average execution time follows the paper's metric and per-VM runtimes
/// are identical (symmetric VMs progress in lockstep).
class MicroSimPackSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(MicroSimPackSweep, SymmetricVmsFinishTogether) {
  const auto [name, count] = GetParam();
  const MicroSim sim(testbed_server());
  std::vector<VmRun> vms(static_cast<std::size_t>(count),
                         VmRun{workload::find_app(name), 0.0});
  const SimResult result = sim.run(vms);
  ASSERT_EQ(result.vms.size(), static_cast<std::size_t>(count));
  for (const VmOutcome& vm : result.vms) {
    EXPECT_NEAR(vm.finish_s, result.vms[0].finish_s, 1e-6);
  }
  EXPECT_NEAR(result.avg_time_per_vm_s(), result.vms[0].finish_s / count,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Packs, MicroSimPackSweep,
    ::testing::Combine(::testing::Values("linpack", "sysbench", "beffio",
                                         "fftw"),
                       ::testing::Values(1, 2, 4, 8, 12)));

}  // namespace
}  // namespace aeva::testbed
