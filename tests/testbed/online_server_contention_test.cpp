/// OnlineServer contention behaviour beyond the MicroSim-equivalence
/// contract: dynamic membership changes must re-solve rates and power the
/// same way the batch engine would.

#include <gtest/gtest.h>

#include "testbed/online_server.hpp"
#include "workload/registry.hpp"

namespace aeva::testbed {
namespace {

using workload::AppSpec;
using workload::Demand;
using workload::Phase;
using workload::ProfileClass;

AppSpec cpu_hog(double nominal_s) {
  AppSpec app;
  app.name = "hog";
  app.profile = ProfileClass::kCpu;
  app.mem_footprint_mb = 64.0;
  app.phases = {Phase{"burn", Demand{1.0, 0.0, 0.0, 0.0}, nominal_s}};
  return app;
}

TEST(OnlineServerContention, RatesDropWhenVmsJoin) {
  ServerConfig config = testbed_server();
  config.per_vm_cpu_overhead = 0.0;
  config.sched_overhead = 0.0;
  OnlineServer server(config);
  // Four hogs saturate four cores; time to completion = nominal.
  for (int i = 0; i < 4; ++i) {
    (void)server.add_vm(cpu_hog(400.0), 1.0);
  }
  EXPECT_NEAR(server.next_event_in(), 400.0, 1e-9);
  // Four more: proportional share halves every rate.
  for (int i = 0; i < 4; ++i) {
    (void)server.add_vm(cpu_hog(400.0), 1.0);
  }
  EXPECT_NEAR(server.next_event_in(), 800.0, 1e-9);
}

TEST(OnlineServerContention, RatesRecoverWhenVmsLeave) {
  ServerConfig config = testbed_server();
  config.per_vm_cpu_overhead = 0.0;
  config.sched_overhead = 0.0;
  OnlineServer server(config);
  (void)server.add_vm(cpu_hog(100.0), 1.0);  // finishes first
  for (int i = 0; i < 7; ++i) {
    (void)server.add_vm(cpu_hog(800.0), 1.0);
  }
  // Eight full-core demands on four cores: everyone at rate 1/2.
  std::vector<std::int64_t> done;
  server.advance(200.0, done);  // the short VM completes at t = 200
  ASSERT_EQ(done.size(), 1u);
  // Seven remain: rate 4/7; the residual 700 nominal seconds take 1225.
  EXPECT_NEAR(server.next_event_in(), 700.0 / (4.0 / 7.0), 1e-6);
}

TEST(OnlineServerContention, PowerTracksMembership) {
  OnlineServer server(testbed_server());
  const double idle = server.power_w();
  (void)server.add_vm(cpu_hog(500.0), 1.0);
  const double one = server.power_w();
  (void)server.add_vm(cpu_hog(500.0), 1.0);
  const double two = server.power_w();
  EXPECT_GT(one, idle);
  EXPECT_GT(two, one);
  std::vector<std::int64_t> done;
  server.advance(1e6, done);
  EXPECT_DOUBLE_EQ(server.power_w(), idle);
}

TEST(OnlineServerContention, OvercommitThrashesOnline) {
  const ServerConfig config = testbed_server();
  OnlineServer lean(config);
  OnlineServer fat(config);
  AppSpec small = cpu_hog(300.0);
  small.mem_footprint_mb = 100.0;
  AppSpec big = cpu_hog(300.0);
  big.mem_footprint_mb = config.guest_mem_mb();  // one VM fills guest RAM
  (void)lean.add_vm(small, 1.0);
  (void)lean.add_vm(small, 1.0);
  (void)fat.add_vm(big, 1.0);
  (void)fat.add_vm(big, 1.0);  // 2× overcommit → thrash
  EXPECT_GT(fat.next_event_in(), 1.5 * lean.next_event_in());
}

TEST(OnlineServerContention, MultiPhaseTransitionsChangeLoads) {
  // beffio switches from write to read phases; disk demand changes at the
  // boundary, which the online engine must re-solve mid-advance.
  OnlineServer server(testbed_server());
  (void)server.add_vm(workload::find_app("beffio"), 1.0);
  std::vector<std::int64_t> done;
  server.advance(599.0, done);  // still in the write phase
  const double p_write = server.power_w();
  server.advance(2.0, done);  // crossed into the read phase
  const double p_read = server.power_w();
  EXPECT_NE(p_write, p_read);
  EXPECT_TRUE(done.empty());
}

}  // namespace
}  // namespace aeva::testbed
