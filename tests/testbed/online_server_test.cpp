#include "testbed/online_server.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "testbed/microsim.hpp"
#include "util/rng.hpp"
#include "workload/registry.hpp"

namespace aeva::testbed {
namespace {

using workload::ProfileClass;

TEST(OnlineServer, EmptyServerIdles) {
  OnlineServer server(testbed_server());
  EXPECT_EQ(server.resident(), 0);
  EXPECT_TRUE(std::isinf(server.next_event_in()));
  EXPECT_DOUBLE_EQ(server.power_w(), testbed_server().power.idle_w);
  std::vector<std::int64_t> done;
  server.advance(1000.0, done);
  EXPECT_TRUE(done.empty());
}

TEST(OnlineServer, SoloVmCompletesAtNominalTime) {
  OnlineServer server(testbed_server());
  const auto handle = server.add_vm(workload::find_app("linpack"), 1.0);
  EXPECT_EQ(server.resident(), 1);
  EXPECT_NEAR(server.next_event_in(), 1200.0, 1e-6);

  std::vector<std::int64_t> done;
  server.advance(1199.0, done);
  EXPECT_TRUE(done.empty());
  server.advance(1.0 + 1e-6, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], handle);
  EXPECT_EQ(server.resident(), 0);
}

TEST(OnlineServer, RuntimeScaleStretchesCompletion) {
  OnlineServer server(testbed_server());
  (void)server.add_vm(workload::find_app("beffio"), 2.0);
  EXPECT_NEAR(server.next_event_in(), 2.0 * 600.0, 1e-6);  // first phase
}

TEST(OnlineServer, MixTracksResidentClasses) {
  OnlineServer server(testbed_server());
  (void)server.add_vm(workload::find_app("linpack"), 1.0);
  (void)server.add_vm(workload::find_app("sysbench"), 1.0);
  (void)server.add_vm(workload::find_app("beffio"), 1.0);
  EXPECT_EQ(server.mix(), (workload::ClassCounts{1, 1, 1}));
  EXPECT_EQ(server.residents().size(), 3u);
}

TEST(OnlineServer, PowerRisesWithLoad) {
  OnlineServer server(testbed_server());
  const double idle = server.power_w();
  (void)server.add_vm(workload::find_app("linpack"), 1.0);
  EXPECT_GT(server.power_w(), idle);
}

TEST(OnlineServer, HandlesAreUniqueAndStable) {
  OnlineServer server(testbed_server());
  const auto h1 = server.add_vm(workload::find_app("linpack"), 1.0);
  const auto h2 = server.add_vm(workload::find_app("linpack"), 1.0);
  EXPECT_NE(h1, h2);
}

TEST(OnlineServer, RejectsBadInputs) {
  OnlineServer server(testbed_server());
  EXPECT_THROW((void)server.add_vm(workload::find_app("linpack"), 0.0),
               std::invalid_argument);
  std::vector<std::int64_t> done;
  EXPECT_THROW(server.advance(-1.0, done), std::invalid_argument);
}

/// Equivalence contract: a VM set admitted at t = 0 completes at exactly
/// the MicroSim's completion times, for any step pattern.
class OnlineEquivalence
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(OnlineEquivalence, MatchesMicroSimCompletionTimes) {
  const auto [count, chunk_s] = GetParam();
  const char* names[] = {"linpack", "sysbench", "beffio", "fftw", "bonnie"};

  std::vector<VmRun> batch;
  OnlineServer server(testbed_server());
  std::map<std::int64_t, std::size_t> index_of;
  for (int i = 0; i < count; ++i) {
    const workload::AppSpec& app =
        workload::find_app(names[static_cast<std::size_t>(i) % 5]);
    batch.push_back(VmRun{app, 0.0});
    index_of[server.add_vm(app, 1.0)] = static_cast<std::size_t>(i);
  }
  const SimResult expected = MicroSim(testbed_server()).run(batch);

  // Drive the online server with fixed-size chunks and record completion
  // times at sub-step resolution via next_event_in.
  std::vector<double> online_finish(static_cast<std::size_t>(count), -1.0);
  double now = 0.0;
  std::vector<std::int64_t> done;
  std::size_t finished = 0;
  while (finished < static_cast<std::size_t>(count) && now < 1e8) {
    // Step either a full chunk or exactly to the next event, whichever is
    // sooner, so completion timestamps stay exact.
    const double step = std::min(chunk_s, server.next_event_in());
    done.clear();
    server.advance(step, done);
    now += step;
    for (const std::int64_t handle : done) {
      online_finish[index_of[handle]] = now;
      ++finished;
    }
  }
  for (int i = 0; i < count; ++i) {
    EXPECT_NEAR(online_finish[static_cast<std::size_t>(i)],
                expected.vms[static_cast<std::size_t>(i)].finish_s, 1e-5)
        << names[static_cast<std::size_t>(i) % 5];
  }
}

INSTANTIATE_TEST_SUITE_P(
    Batches, OnlineEquivalence,
    ::testing::Combine(::testing::Values(1, 3, 5, 8, 12),
                       ::testing::Values(50.0, 333.3, 10000.0)));

TEST(OnlineServer, StaggeredArrivalsMatchMicroSimStarts) {
  // Admit VMs at different times online; MicroSim models the same via
  // start offsets.
  const workload::AppSpec& app = workload::find_app("linpack");
  const SimResult expected = MicroSim(testbed_server())
                                 .run({VmRun{app, 0.0}, VmRun{app, 300.0},
                                       VmRun{app, 600.0}});

  OnlineServer server(testbed_server());
  std::map<std::int64_t, int> index_of;
  std::vector<double> finish(3, -1.0);
  std::vector<std::int64_t> done;
  double now = 0.0;
  index_of[server.add_vm(app, 1.0)] = 0;
  const auto drive_until = [&](double target) {
    while (now < target - 1e-9) {
      const double step = std::min(target - now, server.next_event_in());
      done.clear();
      server.advance(step, done);
      now += step;
      for (const std::int64_t handle : done) {
        finish[static_cast<std::size_t>(index_of[handle])] = now;
      }
    }
  };
  drive_until(300.0);
  index_of[server.add_vm(app, 1.0)] = 1;
  drive_until(600.0);
  index_of[server.add_vm(app, 1.0)] = 2;
  drive_until(10000.0);

  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(finish[static_cast<std::size_t>(i)],
                expected.vms[static_cast<std::size_t>(i)].finish_s, 1e-5)
        << "vm " << i;
  }
}

TEST(OnlineServer, RandomizedChunkingIsChunkInvariant) {
  // Property: the completion times do not depend on how the caller slices
  // time (as long as steps never overshoot events, per the contract).
  const workload::AppSpec& app = workload::find_app("sysbench");
  util::Rng rng(77);

  const auto run_with_chunks = [&](util::Rng& chunk_rng) {
    OnlineServer server(testbed_server());
    for (int i = 0; i < 6; ++i) {
      (void)server.add_vm(app, 1.0);
    }
    double now = 0.0;
    std::vector<std::int64_t> done;
    std::vector<double> finishes;
    while (server.resident() > 0 && now < 1e7) {
      const double step =
          std::min(chunk_rng.uniform(10.0, 500.0), server.next_event_in());
      done.clear();
      server.advance(step, done);
      now += step;
      for (std::size_t k = 0; k < done.size(); ++k) {
        finishes.push_back(now);
      }
    }
    return finishes;
  };
  util::Rng rng_a = rng.fork(1);
  util::Rng rng_b = rng.fork(2);
  const std::vector<double> a = run_with_chunks(rng_a);
  const std::vector<double> b = run_with_chunks(rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-5);
  }
}

}  // namespace
}  // namespace aeva::testbed
