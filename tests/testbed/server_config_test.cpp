#include "testbed/server_config.hpp"

#include <gtest/gtest.h>

namespace aeva::testbed {
namespace {

TEST(ServerConfig, DefaultMatchesTestbed) {
  const ServerConfig config = testbed_server();
  // Dell server: quad-core Xeon X3220, 4 GB, two disks, two 1 GbE NICs.
  EXPECT_EQ(config.cores, 4);
  EXPECT_DOUBLE_EQ(config.mem_capacity_mb, 4096.0);
  EXPECT_EQ(config.disk_count, 2);
  EXPECT_EQ(config.nic_count, 2);
  // The paper's fixed powered-on draw.
  EXPECT_DOUBLE_EQ(config.power.idle_w, 125.0);
}

TEST(ServerConfig, AggregateCapacities) {
  const ServerConfig config = testbed_server();
  EXPECT_DOUBLE_EQ(config.disk_capacity_mbps(),
                   config.disk_mbps * config.disk_count);
  EXPECT_DOUBLE_EQ(config.net_capacity_mbps(),
                   config.nic_mbps * config.nic_count);
  EXPECT_DOUBLE_EQ(config.guest_mem_mb(),
                   config.mem_capacity_mb - config.mem_reserved_mb);
}

TEST(PowerModel, PeakSumsComponents) {
  PowerModel pm;
  EXPECT_DOUBLE_EQ(pm.peak_w(), pm.idle_w + pm.cpu_max_w + pm.mem_max_w +
                                    pm.disk_max_w + pm.net_max_w);
}

TEST(ServerConfig, ValidateRejectsBadCores) {
  ServerConfig config = testbed_server();
  config.cores = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ServerConfig, ValidateRejectsReservedAboveCapacity) {
  ServerConfig config = testbed_server();
  config.mem_reserved_mb = config.mem_capacity_mb;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ServerConfig, ValidateRejectsEmptySubsystems) {
  ServerConfig config = testbed_server();
  config.disk_count = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = testbed_server();
  config.nic_mbps = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ServerConfig, ValidateRejectsNegativeOverheads) {
  ServerConfig config = testbed_server();
  config.per_vm_cpu_overhead = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = testbed_server();
  config.sched_overhead = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = testbed_server();
  config.thrash_coeff = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = testbed_server();
  config.power.cpu_max_w = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace aeva::testbed
