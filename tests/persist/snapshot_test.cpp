/// Snapshot codec: exact round trips, and the full corruption matrix —
/// every truncation prefix, a bit flip at every byte, bad magic, future
/// version, trailing garbage — must be rejected with a typed
/// SnapshotError, never accepted and never UB.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <limits>
#include <string>

#include "core/types.hpp"
#include "persist/snapshot.hpp"

namespace aeva::persist {
namespace {

/// A snapshot exercising every optional section: resident VMs (one
/// mid-migration), a queue, restarts, workflow dependents, completions,
/// and fault-injection streams.
SimSnapshot sample_snapshot() {
  SimSnapshot snap;
  snap.workload_fingerprint = 0x1122334455667788ULL;
  snap.config_fingerprint = 0x99aabbccddeeff00ULL;
  snap.t0 = 12.5;
  snap.now = 4567.25;
  snap.next_job = 3;
  snap.next_vm_id = 17;
  snap.guard = 4242;
  snap.busy_server_time = 1234.0625;
  snap.useful_work_s = 345.5;
  snap.next_sweep = 9000.0;
  snap.parked = 1;

  ServerPersistState busy;
  busy.alloc.cpu = 2;
  busy.alloc.mem = 1;
  busy.busy_power_w = 231.75;
  busy.powered = true;
  busy.ever_powered = true;
  ServerPersistState down;
  down.down = true;
  down.repair_s = 5000.0;
  down.degrade_until = 6000.0;
  down.degrade_mult = 0.5;
  down.ever_powered = true;
  ServerPersistState stalled;  // rack cut off by a ToR fault
  stalled.powered = true;
  stalled.ever_powered = true;
  stalled.isolated = true;
  snap.servers = {busy, down, stalled};

  VmState vm;
  vm.vm_id = 5;
  vm.job_index = 1;
  vm.profile = 2;
  vm.runtime_scale = 1.5;
  vm.server = 0;
  vm.start_s = 100.0;
  vm.remaining = 0.25;
  vm.rate = 1.0 / 7200.0;
  vm.ckpt_done = 0.125;
  vm.next_ckpt_s = 5400.0;
  VmState migrating = vm;
  migrating.vm_id = 6;
  migrating.migrating = true;
  migrating.migration_done_s = 4700.0;
  migrating.dest_server = 2;
  migrating.retries = 1;
  snap.running = {vm, migrating};

  snap.queue = {2, 4};
  snap.restarts = {RestartState{1, 0.5, 2}};
  snap.vms_left = {0, 2, 1, -1, 3};
  snap.job_done = {1, 0, 0, 0, 0};
  snap.dependents = {{}, {}, {}, {4}, {}};

  snap.metrics.energy_j = 2.5e7;
  snap.metrics.jobs = 1;
  snap.metrics.vms = 3;
  snap.metrics.failures = 2;
  snap.metrics.correlated_failures = 1;
  snap.metrics.blast_radius_vms_max = 2;
  snap.metrics.blast_radius_vm_sum = 2.0;
  snap.metrics.lost_work_correlated_s = 415.25;
  snap.metrics.goodput_fraction = 0.875;
  snap.metrics.rejects_by_reason.assign(core::kRejectReasonCount, 0);
  snap.metrics.rejects_by_reason[static_cast<std::size_t>(
      core::RejectReason::kNoFeasibleServer)] = 2;
  snap.metrics.rejects_by_reason[static_cast<std::size_t>(
      core::RejectReason::kSpreadInfeasible)] = 1;
  snap.metrics.completions = {CompletionState{3, 1, 0, 0, 0.0, 5.0, 900.0}};

  snap.response_stats = {3, 300.0, 1250.0, 900.0, 100.0, 600.0};
  snap.wait_stats = {3, 30.0, 12.5, 90.0, 10.0, 60.0};

  util::Rng rng(2026);
  (void)rng.normal();  // leaves a cached Box–Muller spare in the state
  snap.failure.script_next = 1;
  snap.failure.streams = {rng.state(), util::Rng(7).state()};
  snap.failure.sampled_next = {8000.0, -1.0};
  snap.failure.pdu_streams = {util::Rng(11).state()};
  snap.failure.pdu_next = {12000.0};
  snap.failure.tor_streams = {util::Rng(13).state(), util::Rng(17).state()};
  snap.failure.tor_next = {9000.0, -1.0};
  snap.tor_heal_s = {4600.0,
                     std::numeric_limits<double>::infinity()};
  return snap;
}

void expect_equal(const SimSnapshot& a, const SimSnapshot& b) {
  EXPECT_EQ(a.workload_fingerprint, b.workload_fingerprint);
  EXPECT_EQ(a.config_fingerprint, b.config_fingerprint);
  EXPECT_EQ(a.t0, b.t0);  // bitwise: encode stores exact bit patterns
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.next_job, b.next_job);
  EXPECT_EQ(a.next_vm_id, b.next_vm_id);
  EXPECT_EQ(a.guard, b.guard);
  EXPECT_EQ(a.busy_server_time, b.busy_server_time);
  EXPECT_EQ(a.useful_work_s, b.useful_work_s);
  EXPECT_EQ(a.next_sweep, b.next_sweep);
  EXPECT_EQ(a.parked, b.parked);

  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t i = 0; i < a.servers.size(); ++i) {
    EXPECT_EQ(a.servers[i].alloc.cpu, b.servers[i].alloc.cpu);
    EXPECT_EQ(a.servers[i].alloc.mem, b.servers[i].alloc.mem);
    EXPECT_EQ(a.servers[i].alloc.io, b.servers[i].alloc.io);
    EXPECT_EQ(a.servers[i].busy_power_w, b.servers[i].busy_power_w);
    EXPECT_EQ(a.servers[i].powered, b.servers[i].powered);
    EXPECT_EQ(a.servers[i].down, b.servers[i].down);
    EXPECT_EQ(a.servers[i].repair_s, b.servers[i].repair_s);
    EXPECT_EQ(a.servers[i].degrade_until, b.servers[i].degrade_until);
    EXPECT_EQ(a.servers[i].degrade_mult, b.servers[i].degrade_mult);
    EXPECT_EQ(a.servers[i].brownout_until, b.servers[i].brownout_until);
    EXPECT_EQ(a.servers[i].brownout_cap_w, b.servers[i].brownout_cap_w);
    EXPECT_EQ(a.servers[i].ever_powered, b.servers[i].ever_powered);
    EXPECT_EQ(a.servers[i].isolated, b.servers[i].isolated);
  }
  ASSERT_EQ(a.running.size(), b.running.size());
  for (std::size_t i = 0; i < a.running.size(); ++i) {
    EXPECT_EQ(a.running[i].vm_id, b.running[i].vm_id);
    EXPECT_EQ(a.running[i].job_index, b.running[i].job_index);
    EXPECT_EQ(a.running[i].profile, b.running[i].profile);
    EXPECT_EQ(a.running[i].runtime_scale, b.running[i].runtime_scale);
    EXPECT_EQ(a.running[i].server, b.running[i].server);
    EXPECT_EQ(a.running[i].start_s, b.running[i].start_s);
    EXPECT_EQ(a.running[i].remaining, b.running[i].remaining);
    EXPECT_EQ(a.running[i].rate, b.running[i].rate);
    EXPECT_EQ(a.running[i].migrating, b.running[i].migrating);
    EXPECT_EQ(a.running[i].migration_done_s, b.running[i].migration_done_s);
    EXPECT_EQ(a.running[i].dest_server, b.running[i].dest_server);
    EXPECT_EQ(a.running[i].retries, b.running[i].retries);
    EXPECT_EQ(a.running[i].ckpt_done, b.running[i].ckpt_done);
    EXPECT_EQ(a.running[i].next_ckpt_s, b.running[i].next_ckpt_s);
  }
  EXPECT_EQ(a.queue, b.queue);
  ASSERT_EQ(a.restarts.size(), b.restarts.size());
  for (std::size_t i = 0; i < a.restarts.size(); ++i) {
    EXPECT_EQ(a.restarts[i].job_index, b.restarts[i].job_index);
    EXPECT_EQ(a.restarts[i].resume_done, b.restarts[i].resume_done);
    EXPECT_EQ(a.restarts[i].retries, b.restarts[i].retries);
  }
  EXPECT_EQ(a.vms_left, b.vms_left);
  EXPECT_EQ(a.job_done, b.job_done);
  EXPECT_EQ(a.dependents, b.dependents);

  EXPECT_EQ(a.metrics.energy_j, b.metrics.energy_j);
  EXPECT_EQ(a.metrics.jobs, b.metrics.jobs);
  EXPECT_EQ(a.metrics.vms, b.metrics.vms);
  EXPECT_EQ(a.metrics.failures, b.metrics.failures);
  EXPECT_EQ(a.metrics.goodput_fraction, b.metrics.goodput_fraction);
  EXPECT_EQ(a.metrics.rejects_by_reason, b.metrics.rejects_by_reason);
  ASSERT_EQ(a.metrics.completions.size(), b.metrics.completions.size());
  for (std::size_t i = 0; i < a.metrics.completions.size(); ++i) {
    EXPECT_EQ(a.metrics.completions[i].vm_id, b.metrics.completions[i].vm_id);
    EXPECT_EQ(a.metrics.completions[i].finish_s,
              b.metrics.completions[i].finish_s);
  }
  EXPECT_EQ(a.response_stats.count, b.response_stats.count);
  EXPECT_EQ(a.response_stats.mean, b.response_stats.mean);
  EXPECT_EQ(a.response_stats.m2, b.response_stats.m2);
  EXPECT_EQ(a.wait_stats.sum, b.wait_stats.sum);

  EXPECT_EQ(a.failure.script_next, b.failure.script_next);
  ASSERT_EQ(a.failure.streams.size(), b.failure.streams.size());
  for (std::size_t i = 0; i < a.failure.streams.size(); ++i) {
    EXPECT_EQ(a.failure.streams[i].words, b.failure.streams[i].words);
    EXPECT_EQ(a.failure.streams[i].cached_normal,
              b.failure.streams[i].cached_normal);
    EXPECT_EQ(a.failure.streams[i].has_cached_normal,
              b.failure.streams[i].has_cached_normal);
  }
  EXPECT_EQ(a.failure.sampled_next, b.failure.sampled_next);
  ASSERT_EQ(a.failure.pdu_streams.size(), b.failure.pdu_streams.size());
  for (std::size_t i = 0; i < a.failure.pdu_streams.size(); ++i) {
    EXPECT_EQ(a.failure.pdu_streams[i].words, b.failure.pdu_streams[i].words);
  }
  EXPECT_EQ(a.failure.pdu_next, b.failure.pdu_next);
  ASSERT_EQ(a.failure.tor_streams.size(), b.failure.tor_streams.size());
  for (std::size_t i = 0; i < a.failure.tor_streams.size(); ++i) {
    EXPECT_EQ(a.failure.tor_streams[i].words, b.failure.tor_streams[i].words);
  }
  EXPECT_EQ(a.failure.tor_next, b.failure.tor_next);
  EXPECT_EQ(a.tor_heal_s, b.tor_heal_s);
  EXPECT_EQ(a.metrics.correlated_failures, b.metrics.correlated_failures);
  EXPECT_EQ(a.metrics.blast_radius_vms_max, b.metrics.blast_radius_vms_max);
  EXPECT_EQ(a.metrics.blast_radius_vm_sum, b.metrics.blast_radius_vm_sum);
  EXPECT_EQ(a.metrics.lost_work_correlated_s,
            b.metrics.lost_work_correlated_s);
}

TEST(Snapshot, RoundTripIsExact) {
  const SimSnapshot original = sample_snapshot();
  const std::string bytes = encode_snapshot(original);
  expect_equal(original, decode_snapshot(bytes));
}

TEST(Snapshot, EmptySnapshotRoundTrips) {
  const std::string bytes = encode_snapshot(SimSnapshot{});
  const SimSnapshot back = decode_snapshot(bytes);
  EXPECT_EQ(back.servers.size(), 0u);
  EXPECT_EQ(back.next_vm_id, 1);
}

TEST(Snapshot, EncodingIsDeterministic) {
  EXPECT_EQ(encode_snapshot(sample_snapshot()),
            encode_snapshot(sample_snapshot()));
}

TEST(Snapshot, EveryTruncationPrefixIsRejected) {
  const std::string bytes = encode_snapshot(sample_snapshot());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)decode_snapshot(std::string_view(bytes).substr(0, len)),
                 SnapshotError)
        << "prefix of " << len << " bytes must not decode";
  }
}

TEST(Snapshot, EveryByteBitFlipIsRejected) {
  const std::string bytes = encode_snapshot(sample_snapshot());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupted = bytes;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x01);
    EXPECT_THROW((void)decode_snapshot(corrupted), SnapshotError)
        << "bit flip at byte " << i << " must not decode";
  }
}

TEST(Snapshot, TrailingGarbageIsRejected) {
  const std::string bytes = encode_snapshot(sample_snapshot());
  EXPECT_THROW((void)decode_snapshot(bytes + '\0'), SnapshotFormatError);
}

TEST(Snapshot, BadMagicIsRejected) {
  std::string bytes = encode_snapshot(sample_snapshot());
  bytes[0] = 'X';
  EXPECT_THROW((void)decode_snapshot(bytes), SnapshotFormatError);
}

TEST(Snapshot, FutureVersionIsRejectedWithVersionError) {
  std::string bytes = encode_snapshot(sample_snapshot());
  const std::uint32_t future = kSnapshotVersion + 7;
  std::memcpy(bytes.data() + 8, &future, sizeof(future));
  try {
    (void)decode_snapshot(bytes);
    FAIL() << "expected SnapshotVersionError";
  } catch (const SnapshotVersionError& error) {
    EXPECT_EQ(error.found(), future);
  }
}

TEST(Snapshot, GarbageIsRejected) {
  EXPECT_THROW((void)decode_snapshot(""), SnapshotFormatError);
  EXPECT_THROW((void)decode_snapshot("AEVASNAP"), SnapshotFormatError);
  EXPECT_THROW((void)decode_snapshot(std::string(1000, '\xab')),
               SnapshotFormatError);
}

TEST(Snapshot, FileRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "aeva_snapshot_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "state.snap").string();
  const SimSnapshot original = sample_snapshot();
  write_snapshot_file(path, original);
  expect_equal(original, read_snapshot_file(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove_all(dir);
}

TEST(Snapshot, MissingFileThrowsIoError) {
  EXPECT_THROW((void)read_snapshot_file("/no/such/dir/state.snap"),
               SnapshotIoError);
}

TEST(Snapshot, FingerprintIsOrderSensitive) {
  Fingerprint ab;
  ab.mix(1);
  ab.mix(2);
  Fingerprint ba;
  ba.mix(2);
  ba.mix(1);
  EXPECT_NE(ab.value(), ba.value());

  Fingerprint s1;
  s1.mix_string("abc");
  Fingerprint s2;
  s2.mix_string("ab");
  s2.mix_string("c");
  EXPECT_NE(s1.value(), s2.value()) << "boundaries must be mixed in";
}

}  // namespace
}  // namespace aeva::persist
