/// util::AtomicFileWriter semantics: all-or-nothing publication (temp +
/// fsync + rename), typed errors carrying the path, and no stray temp
/// files left behind on either path.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/atomic_file.hpp"

namespace aeva::util {
namespace {

namespace fs = std::filesystem;

std::string read_all(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

struct TempDir {
  fs::path dir;
  // Unique per test process: ctest runs each TEST as its own process, and
  // a shared fixed path makes concurrently-running tests delete each
  // other's directory (flaky under `ctest -j`).
  TempDir()
      : dir(fs::temp_directory_path() /
            ("aeva_atomic_file_test_" +
             std::to_string(static_cast<long long>(::getpid())))) {
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~TempDir() { fs::remove_all(dir); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir / name).string();
  }
};

TEST(AtomicFileWriter, CommitPublishesContent) {
  const TempDir tmp;
  const std::string path = tmp.file("out.txt");
  AtomicFileWriter writer(path);
  writer.stream() << "hello, durable world\n";
  writer.commit();
  EXPECT_EQ(read_all(path), "hello, durable world\n");
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "temp must be renamed away";
}

TEST(AtomicFileWriter, CommitReplacesExistingFileAtomically) {
  const TempDir tmp;
  const std::string path = tmp.file("out.txt");
  write_file_atomic(path, "old");
  AtomicFileWriter writer(path);
  writer.stream() << "new";
  writer.commit();
  EXPECT_EQ(read_all(path), "new");
}

TEST(AtomicFileWriter, AbortLeavesTargetUntouchedAndCleansTemp) {
  const TempDir tmp;
  const std::string path = tmp.file("out.txt");
  write_file_atomic(path, "precious");
  {
    AtomicFileWriter writer(path);
    writer.stream() << "half-written garbage";
    // No commit: the destructor must discard the staged bytes.
  }
  EXPECT_EQ(read_all(path), "precious");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicFileWriter, ErrorNamesThePath) {
  const TempDir tmp;
  const std::string path = tmp.file("no_such_dir/out.txt");
  try {
    AtomicFileWriter writer(path);
    writer.stream() << "x";
    writer.commit();
    FAIL() << "expected FileWriteError";
  } catch (const FileWriteError& error) {
    EXPECT_EQ(error.path(), path);
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos)
        << "what() must mention the path: " << error.what();
  }
}

TEST(AtomicFileWriter, DoubleCommitThrows) {
  const TempDir tmp;
  AtomicFileWriter writer(tmp.file("out.txt"));
  writer.stream() << "x";
  writer.commit();
  EXPECT_THROW(writer.commit(), FileWriteError);
}

TEST(AtomicFileWriter, WriteFileAtomicRoundTrip) {
  const TempDir tmp;
  const std::string path = tmp.file("blob.bin");
  const std::string content("binary\0payload\n\xff", 16);
  write_file_atomic(path, content);
  EXPECT_EQ(read_all(path), content);
}

TEST(AtomicFileWriter, WriteFileAtomicToBadDirectoryThrowsTyped) {
  const TempDir tmp;
  const std::string path = tmp.file("missing/dir/blob.bin");
  EXPECT_THROW(write_file_atomic(path, "x"), FileWriteError);
  EXPECT_FALSE(fs::exists(path));
}

}  // namespace
}  // namespace aeva::util
