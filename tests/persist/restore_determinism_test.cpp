/// The durability layer's central contract (docs/RESILIENCE.md,
/// "Process-level durability"): killing a run at *any* checkpoint and
/// resuming it reproduces the uninterrupted run's SimMetrics bit for bit
/// — across 30 randomized workloads covering fault injection (scripted
/// and MTBF-sampled), workflow dependencies, live migration, backfill,
/// and completion recording. Also: enabling snapshotting never perturbs
/// the simulation, and resume refuses snapshots from a different run.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "datacenter/simulator.hpp"
#include "datacenter/topology.hpp"
#include "persist/snapshot.hpp"
#include "testing/shared_db.hpp"
#include "trace/prepare.hpp"
#include "util/rng.hpp"

namespace aeva::datacenter {
namespace {

using trace::JobRequest;
using trace::PreparedWorkload;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

/// Randomized but fully seed-determined workload: mixed profiles, bursts,
/// multi-VM jobs, and some workflow chains (`depends_on`).
PreparedWorkload random_workload(std::uint64_t seed) {
  util::Rng rng(seed);
  PreparedWorkload workload;
  const int jobs_n = 24 + static_cast<int>(rng.uniform_int(0, 15));
  double submit = 0.0;
  for (int i = 0; i < jobs_n; ++i) {
    JobRequest job;
    job.id = i + 1;
    submit += rng.exponential(1.0 / 120.0);
    job.submit_s = submit;
    job.profile = static_cast<ProfileClass>(rng.uniform_int(0, 2));
    job.vm_count = 1 + static_cast<int>(rng.uniform_int(0, 2));
    job.runtime_scale = 0.3 + rng.uniform() * 1.4;
    job.deadline_s = 2500.0 + rng.uniform() * 4000.0;
    // Every fourth job (after the first few) depends on an earlier one,
    // exercising the parked-jobs/dependents machinery across restore.
    if (i >= 4 && i % 4 == 0) {
      job.depends_on = job.id - 1 - static_cast<long long>(rng.uniform_int(0, 2));
    }
    workload.jobs.push_back(job);
    workload.total_vms += job.vm_count;
  }
  return workload;
}

/// Cloud variants cycled across seeds so the suite covers the feature
/// matrix: plain, MTBF-sampled failures, scripted failures (all three
/// kinds), migration sweeps, backfill, completion recording.
CloudConfig cloud_for(std::uint64_t seed) {
  CloudConfig cloud;
  cloud.server_count = 6 + static_cast<int>(seed % 3);
  switch (seed % 5) {
    case 0:
      break;  // fail-free FCFS baseline
    case 1:
      cloud.failure.enabled = true;
      cloud.failure.mtbf_s = 40000.0;
      cloud.failure.mttr_s = 1200.0;
      cloud.failure.seed = seed;
      cloud.failure.recovery.checkpoint_period_s = 600.0;
      break;
    case 2: {
      cloud.failure.enabled = true;
      FailureEvent crash;
      crash.kind = FailureKind::kCrash;
      crash.server = 1;
      crash.at_s = 900.0;
      crash.duration_s = 1500.0;
      FailureEvent degrade;
      degrade.kind = FailureKind::kDegrade;
      degrade.server = 2;
      degrade.at_s = 400.0;
      degrade.duration_s = 3000.0;
      degrade.magnitude = 0.5;
      FailureEvent brownout;
      brownout.kind = FailureKind::kBrownout;
      brownout.server = 0;
      brownout.at_s = 1200.0;
      brownout.duration_s = 2000.0;
      brownout.magnitude = 170.0;
      cloud.failure.script = {degrade, crash, brownout};
      break;
    }
    case 3:
      cloud.migration.enabled = true;
      cloud.migration.check_interval_s = 700.0;
      cloud.backfill_window = 4;
      break;
    default:
      cloud.backfill_window = 8;
      cloud.record_completions = true;
      break;
  }
  return cloud;
}

std::unique_ptr<core::Allocator> allocator_for(std::uint64_t seed) {
  if (seed % 3 == 0) {
    return std::make_unique<core::FirstFitAllocator>(2);
  }
  core::ProactiveConfig config;
  config.alpha = (seed % 3 == 1) ? 0.5 : 1.0;
  config.degrade_to_first_fit = true;
  return std::make_unique<core::ProactiveAllocator>(db(), config);
}

void expect_identical(const SimMetrics& a, const SimMetrics& b,
                      std::uint64_t seed) {
  // Bitwise (==, not near): restore must reproduce the FP accrual exactly.
  EXPECT_EQ(a.makespan_s, b.makespan_s) << "seed " << seed;
  EXPECT_EQ(a.energy_j, b.energy_j) << "seed " << seed;
  EXPECT_EQ(a.sla_violation_pct, b.sla_violation_pct) << "seed " << seed;
  EXPECT_EQ(a.jobs, b.jobs) << "seed " << seed;
  EXPECT_EQ(a.vms, b.vms) << "seed " << seed;
  EXPECT_EQ(a.sla_violations, b.sla_violations) << "seed " << seed;
  EXPECT_EQ(a.mean_response_s, b.mean_response_s) << "seed " << seed;
  EXPECT_EQ(a.mean_wait_s, b.mean_wait_s) << "seed " << seed;
  EXPECT_EQ(a.mean_busy_servers, b.mean_busy_servers) << "seed " << seed;
  EXPECT_EQ(a.peak_busy_servers, b.peak_busy_servers) << "seed " << seed;
  EXPECT_EQ(a.servers_powered, b.servers_powered) << "seed " << seed;
  EXPECT_EQ(a.migrations, b.migrations) << "seed " << seed;
  EXPECT_EQ(a.migration_transfer_s, b.migration_transfer_s)
      << "seed " << seed;
  EXPECT_EQ(a.failures, b.failures) << "seed " << seed;
  EXPECT_EQ(a.correlated_failures, b.correlated_failures) << "seed " << seed;
  EXPECT_EQ(a.blast_radius_vms_max, b.blast_radius_vms_max)
      << "seed " << seed;
  EXPECT_EQ(a.blast_radius_vms_mean, b.blast_radius_vms_mean)
      << "seed " << seed;
  EXPECT_EQ(a.lost_work_correlated_s, b.lost_work_correlated_s)
      << "seed " << seed;
  EXPECT_EQ(a.vm_restarts, b.vm_restarts) << "seed " << seed;
  EXPECT_EQ(a.vms_abandoned, b.vms_abandoned) << "seed " << seed;
  EXPECT_EQ(a.lost_work_s, b.lost_work_s) << "seed " << seed;
  EXPECT_EQ(a.goodput_fraction, b.goodput_fraction) << "seed " << seed;
  EXPECT_EQ(a.fallback_allocations, b.fallback_allocations)
      << "seed " << seed;
  ASSERT_EQ(a.completions.size(), b.completions.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_EQ(a.completions[i].vm_id, b.completions[i].vm_id);
    EXPECT_EQ(a.completions[i].server, b.completions[i].server);
    EXPECT_EQ(a.completions[i].start_s, b.completions[i].start_s);
    EXPECT_EQ(a.completions[i].finish_s, b.completions[i].finish_s);
  }
}

TEST(RestoreDeterminism, KillAtRandomCheckpointReproducesRunExactly) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const PreparedWorkload workload = random_workload(seed);
    const CloudConfig cloud = cloud_for(seed);
    const auto allocator = allocator_for(seed);

    // Reference: uninterrupted, no snapshotting.
    const Simulator plain(db(), cloud);
    const SimMetrics reference = plain.run(workload, *allocator);
    ASSERT_GT(reference.makespan_s, 0.0) << "seed " << seed;

    // Checkpointed run: collect every snapshot through the hook.
    std::vector<persist::SimSnapshot> checkpoints;
    CloudConfig snap_cloud = cloud;
    snap_cloud.snapshot.every_s = reference.makespan_s / 7.0;
    snap_cloud.snapshot.hook = [&](const persist::SimSnapshot& snapshot) {
      checkpoints.push_back(snapshot);
    };
    const Simulator snapped(db(), snap_cloud);
    const SimMetrics with_snapshots = snapped.run(workload, *allocator);

    // Contract: snapshotting never perturbs the run.
    expect_identical(reference, with_snapshots, seed);
    ASSERT_FALSE(checkpoints.empty()) << "seed " << seed;

    // Kill-at-a-random-checkpoint: deterministically pick one and resume
    // (through the wire format, so the codec is on the critical path).
    util::Rng pick(seed * 7919);
    const persist::SimSnapshot& chosen =
        checkpoints[static_cast<std::size_t>(pick.uniform_int(
            0, static_cast<std::int64_t>(checkpoints.size()) - 1))];
    const persist::SimSnapshot rehydrated =
        persist::decode_snapshot(persist::encode_snapshot(chosen));
    const SimMetrics resumed = plain.resume(workload, *allocator, rehydrated);
    expect_identical(reference, resumed, seed);
  }
}

TEST(RestoreDeterminism, ResumeFromEveryCheckpointOfOneRun) {
  const std::uint64_t seed = 12;
  const PreparedWorkload workload = random_workload(seed);
  const CloudConfig cloud = cloud_for(seed);  // scripted-failure variant
  const auto allocator = allocator_for(seed);
  const Simulator sim(db(), cloud);
  const SimMetrics reference = sim.run(workload, *allocator);

  std::vector<persist::SimSnapshot> checkpoints;
  CloudConfig snap_cloud = cloud;
  snap_cloud.snapshot.every_s = reference.makespan_s / 9.0;
  snap_cloud.snapshot.hook = [&](const persist::SimSnapshot& snapshot) {
    checkpoints.push_back(snapshot);
  };
  (void)Simulator(db(), snap_cloud).run(workload, *allocator);
  ASSERT_GE(checkpoints.size(), 3u);
  for (const persist::SimSnapshot& checkpoint : checkpoints) {
    expect_identical(reference, sim.resume(workload, *allocator, checkpoint),
                     seed);
  }
}

TEST(RestoreDeterminism, ResumeReproducesCorrelatedDomainFaults) {
  // Snapshot v4 carries the domain-fault machinery: PDU/ToR sampler
  // streams, the ToR heal clock, the isolated flag, and the correlated
  // metrics accumulators. Kill-and-resume across a run mixing scripted
  // and MTBF-sampled domain faults must stay bit-identical.
  const datacenter::Topology topo = datacenter::make_synthetic_topology(
      datacenter::SyntheticTopologyConfig{8, 2, 2, 1});
  const std::uint64_t seed = 21;
  const PreparedWorkload workload = random_workload(seed);
  CloudConfig cloud;
  cloud.server_count = 8;
  cloud.failure.enabled = true;
  cloud.failure.topology = &topo;
  cloud.failure.domains.pdu_mtbf_s = 20000.0;
  cloud.failure.domains.pdu_mttr_s = 900.0;
  cloud.failure.domains.tor_mtbf_s = 15000.0;
  cloud.failure.domains.tor_mttr_s = 400.0;
  FailureEvent pdu;
  pdu.kind = FailureKind::kPduFault;
  pdu.server = 0;
  pdu.at_s = 700.0;
  pdu.duration_s = 1200.0;
  FailureEvent tor;
  tor.kind = FailureKind::kTorFault;
  tor.server = 3;
  tor.at_s = 1000.0;
  tor.duration_s = 350.0;
  cloud.failure.script = {pdu, tor};
  cloud.failure.recovery.checkpoint_period_s = 600.0;
  const core::FirstFitAllocator allocator(2);
  const Simulator sim(db(), cloud);
  const SimMetrics reference = sim.run(workload, allocator);
  ASSERT_GT(reference.correlated_failures, 0u);

  std::vector<persist::SimSnapshot> checkpoints;
  CloudConfig snap_cloud = cloud;
  snap_cloud.snapshot.every_s = reference.makespan_s / 8.0;
  snap_cloud.snapshot.hook = [&](const persist::SimSnapshot& snapshot) {
    checkpoints.push_back(snapshot);
  };
  (void)Simulator(db(), snap_cloud).run(workload, allocator);
  ASSERT_GE(checkpoints.size(), 3u);
  for (const persist::SimSnapshot& checkpoint : checkpoints) {
    const persist::SimSnapshot rehydrated =
        persist::decode_snapshot(persist::encode_snapshot(checkpoint));
    expect_identical(reference, sim.resume(workload, allocator, rehydrated),
                     seed);
  }
}

TEST(RestoreDeterminism, ResumeRefusesForeignSnapshots) {
  const PreparedWorkload workload = random_workload(3);
  CloudConfig cloud;
  cloud.server_count = 6;
  const core::FirstFitAllocator allocator(2);

  std::vector<persist::SimSnapshot> checkpoints;
  CloudConfig snap_cloud = cloud;
  snap_cloud.snapshot.every_s = 400.0;
  snap_cloud.snapshot.hook = [&](const persist::SimSnapshot& snapshot) {
    checkpoints.push_back(snapshot);
  };
  const Simulator sim(db(), snap_cloud);
  (void)sim.run(workload, allocator);
  ASSERT_FALSE(checkpoints.empty());
  const persist::SimSnapshot& snapshot = checkpoints.front();

  // Different workload.
  EXPECT_THROW((void)sim.resume(random_workload(4), allocator, snapshot),
               persist::SnapshotMismatchError);
  // Different cloud shape.
  CloudConfig bigger = cloud;
  bigger.server_count = 9;
  EXPECT_THROW(
      (void)Simulator(db(), bigger).resume(workload, allocator, snapshot),
      persist::SnapshotMismatchError);
  // Different allocator.
  const core::FirstFitAllocator other(3);
  EXPECT_THROW((void)sim.resume(workload, other, snapshot),
               persist::SnapshotMismatchError);
  // Corrupted index: a VM on a server outside the fleet.
  persist::SimSnapshot tampered = snapshot;
  if (!tampered.running.empty()) {
    tampered.running.front().server = 99;
    EXPECT_THROW((void)sim.resume(workload, allocator, tampered),
                 persist::SnapshotMismatchError);
  }
}

}  // namespace
}  // namespace aeva::datacenter
