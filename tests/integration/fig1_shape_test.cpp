/// Integration: the Fig. 1 calibration contract — subsystem-utilization
/// signatures of the profiled workloads match the published plots'
/// qualitative shape.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "profiling/profiler.hpp"
#include "workload/registry.hpp"

namespace aeva {
namespace {

using profiling::ApplicationProfile;
using workload::Subsystem;

const ApplicationProfile& profile_of(const char* name) {
  static std::map<std::string, ApplicationProfile> cache;
  const auto it = cache.find(name);
  if (it != cache.end()) {
    return it->second;
  }
  static const profiling::Profiler profiler;
  return cache.emplace(name, profiler.profile(workload::find_app(name)))
      .first->second;
}

double mean_util(const ApplicationProfile& profile, Subsystem s) {
  return profile.subsystems[static_cast<std::size_t>(s)]
      .utilization.time_weighted_mean();
}

TEST(Fig1Shape, CpuWorkloadHasHighCpuLowRest) {
  // Fig. 1 (left): CPU high and flat, disk/network near zero.
  const ApplicationProfile& p = profile_of("linpack");
  EXPECT_GT(mean_util(p, Subsystem::kCpu), 0.20);
  EXPECT_LT(mean_util(p, Subsystem::kDisk), 0.01);
  EXPECT_LT(mean_util(p, Subsystem::kNetwork), 0.01);
}

TEST(Fig1Shape, MpiComputeAlternatesNetworkWindows) {
  // Fig. 1 (right): network activity comes in discrete windows — the
  // sampled series must contain both idle and busy network samples.
  const ApplicationProfile& p = profile_of("mpicompute");
  const auto& net =
      p.subsystems[static_cast<std::size_t>(Subsystem::kNetwork)].utilization;
  std::size_t idle = 0;
  std::size_t busy = 0;
  for (const auto& sample : net.samples()) {
    if (sample.value < 0.01) {
      ++idle;
    }
    if (sample.value > 0.10) {
      ++busy;
    }
  }
  EXPECT_GT(idle, net.size() / 4) << "network never idles";
  EXPECT_GT(busy, net.size() / 20) << "network never spikes";
}

TEST(Fig1Shape, MpiComputeCpuStaysBusyThroughout) {
  const ApplicationProfile& p = profile_of("mpicompute");
  const auto& cpu =
      p.subsystems[static_cast<std::size_t>(Subsystem::kCpu)].utilization;
  // Even the exchange windows keep a noticeable CPU share.
  for (const auto& sample : cpu.samples()) {
    EXPECT_GT(sample.value, 0.05);
  }
}

TEST(Fig1Shape, IoWorkloadDemandsDiskInWindows) {
  const ApplicationProfile& p = profile_of("bonnie");
  EXPECT_GT(mean_util(p, Subsystem::kDisk), 0.25);
  EXPECT_LT(mean_util(p, Subsystem::kCpu), 0.10);
}

TEST(Fig1Shape, ClassifierAgreesWithPaperLabels) {
  EXPECT_EQ(profile_of("linpack").mapped_class,
            workload::ProfileClass::kCpu);
  EXPECT_EQ(profile_of("mpicompute").mapped_class,
            workload::ProfileClass::kCpu);
  EXPECT_EQ(profile_of("bonnie").mapped_class, workload::ProfileClass::kIo);
}

}  // namespace
}  // namespace aeva
