/// Integration: the full pipeline — campaign → model database → synthetic
/// EGEE-like trace → preparation → datacenter simulation — on a reduced
/// workload, asserting the paper's qualitative orderings hold end to end.

#include <gtest/gtest.h>

#include <map>

#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "datacenter/simulator.hpp"
#include "testing/shared_db.hpp"
#include "trace/generator.hpp"
#include "trace/prepare.hpp"

namespace aeva {
namespace {

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

/// A scaled-down standard workload: ~2000 VMs on a 12-server cloud keeps
/// the load pressure of the full experiment at unit-test cost.
const trace::PreparedWorkload& workload() {
  static const trace::PreparedWorkload prepared = [] {
    util::Rng rng(2026);
    trace::GeneratorConfig gen;
    gen.target_jobs = 1200;
    gen.span_s = 48000.0 / 5.0;
    trace::SwfTrace raw = trace::generate_egee_like(gen, rng);
    trace::clean(raw);
    trace::PreparationConfig prep;
    prep.target_total_vms = 2000;
    for (const workload::ProfileClass profile :
         workload::kAllProfileClasses) {
      prep.solo_time_s[static_cast<std::size_t>(profile)] =
          db().base().of(profile).solo_time_s;
    }
    return trace::prepare_workload(raw, prep, rng);
  }();
  return prepared;
}

const std::map<std::string, datacenter::SimMetrics>& results() {
  static const std::map<std::string, datacenter::SimMetrics> metrics = [] {
    std::map<std::string, datacenter::SimMetrics> out;
    datacenter::CloudConfig cloud;
    cloud.server_count = 12;
    const datacenter::Simulator sim(db(), cloud);
    for (const int multiplex : {1, 2, 3}) {
      const core::FirstFitAllocator ff(multiplex);
      out[ff.name()] = sim.run(workload(), ff);
    }
    for (const double alpha : {1.0, 0.0, 0.5}) {
      core::ProactiveConfig config;
      config.alpha = alpha;
      const core::ProactiveAllocator pa(db(), config);
      out[pa.name()] = sim.run(workload(), pa);
    }
    return out;
  }();
  return metrics;
}

TEST(EndToEnd, AllStrategiesCompleteEveryVm) {
  for (const auto& [name, metrics] : results()) {
    EXPECT_EQ(metrics.vms, static_cast<std::size_t>(workload().total_vms))
        << name;
  }
}

TEST(EndToEnd, ProactiveBeatsFirstFitOnMakespan) {
  const double pa = results().at("PA-0").makespan_s;
  const double ff = results().at("FF").makespan_s;
  EXPECT_LT(pa, ff);
  // The paper reports up to 18% — on the scaled workload demand the same
  // order of magnitude (>5%).
  EXPECT_GT((ff - pa) / ff, 0.05);
}

TEST(EndToEnd, ProactiveSavesEnergyVsFirstFitFamily) {
  double ff_family = 0.0;
  for (const char* name : {"FF", "FF-2", "FF-3"}) {
    ff_family += results().at(name).energy_j;
  }
  ff_family /= 3.0;
  EXPECT_LT(results().at("PA-1").energy_j, ff_family);
  // The full-scale benches reproduce the paper's ~12%; the scaled-down
  // integration workload retains a clearly positive margin.
  EXPECT_GT((ff_family - results().at("PA-1").energy_j) / ff_family, 0.02);
}

TEST(EndToEnd, ProactiveHasFewestSlaViolations) {
  double worst_pa = 0.0;
  for (const char* name : {"PA-1", "PA-0", "PA-0.5"}) {
    worst_pa = std::max(worst_pa, results().at(name).sla_violation_pct);
  }
  double worst_ff = 0.0;
  for (const char* name : {"FF", "FF-2", "FF-3"}) {
    worst_ff = std::max(worst_ff, results().at(name).sla_violation_pct);
  }
  EXPECT_LE(worst_pa, worst_ff);
}

TEST(EndToEnd, EveryStrategyDrainsTheQueue) {
  for (const auto& [name, metrics] : results()) {
    EXPECT_GT(metrics.makespan_s, 0.0) << name;
    EXPECT_GT(metrics.mean_response_s, 0.0) << name;
    EXPECT_GE(metrics.mean_response_s, metrics.mean_wait_s) << name;
  }
}

TEST(EndToEnd, EnergyScalesWithMakespanTimesPower) {
  // Sanity: energy sits between idle and peak draw of the busy servers.
  for (const auto& [name, metrics] : results()) {
    const double lower =
        125.0 * metrics.mean_busy_servers * metrics.makespan_s;
    const double upper =
        243.0 * metrics.mean_busy_servers * metrics.makespan_s;
    EXPECT_GE(metrics.energy_j, lower * 0.99) << name;
    EXPECT_LE(metrics.energy_j, upper * 1.01) << name;
  }
}

TEST(EndToEnd, ProactiveUsesDatabaseBoundedMixes) {
  // PROACTIVE's makespan advantage must come with bounded response times:
  // execution stretch never exceeded the QoS cap, so responses stay within
  // wait + stretch × scaled solo time.
  const auto& pa = results().at("PA-0");
  EXPECT_LT(pa.mean_response_s,
            pa.mean_wait_s + 2.0 * 3.0 * 1200.0 + 1.0);
}

TEST(EndToEnd, LargerCloudReducesLoadPressure) {
  datacenter::CloudConfig larger;
  larger.server_count = 14;  // ~15% over-dimensioned vs 12
  const datacenter::Simulator sim(db(), larger);
  const core::FirstFitAllocator ff(1);
  const datacenter::SimMetrics larger_ff = sim.run(workload(), ff);
  EXPECT_LE(larger_ff.makespan_s, results().at("FF").makespan_s + 1e-6);
  EXPECT_LE(larger_ff.sla_violation_pct,
            results().at("FF").sla_violation_pct + 1e-9);
}

}  // namespace
}  // namespace aeva
