/// Integration: the Fig. 2 calibration contract. The FFTW base curve on
/// the simulated testbed must exhibit the published shape — shortest
/// average execution time at ~9 VMs and significant degradation past 11,
/// approaching sequential-execution cost.

#include <gtest/gtest.h>

#include "modeldb/campaign.hpp"
#include "workload/registry.hpp"

namespace aeva {
namespace {

const std::vector<modeldb::Record>& fftw_curve() {
  static const std::vector<modeldb::Record> curve = [] {
    modeldb::CampaignConfig config;
    config.server = testbed::testbed_server();
    return modeldb::Campaign(config).scaling_curve(
        workload::find_app("fftw"), 16);
  }();
  return curve;
}

double avg_at(int n) {
  return fftw_curve()[static_cast<std::size_t>(n) - 1].avg_time_vm_s;
}

TEST(Fig2Shape, OptimumAtNineVms) {
  int best = 1;
  for (int n = 2; n <= 16; ++n) {
    if (avg_at(n) < avg_at(best)) {
      best = n;
    }
  }
  EXPECT_EQ(best, 9) << "paper: shortest average execution time at 9 VMs";
}

TEST(Fig2Shape, DecreasingUpToOptimum) {
  for (int n = 2; n <= 9; ++n) {
    EXPECT_LT(avg_at(n), avg_at(n - 1)) << "n=" << n;
  }
}

TEST(Fig2Shape, SignificantIncreaseBeyondEleven) {
  // "With more than 11 VMs the average execution time increases
  // significantly."
  EXPECT_GT(avg_at(12), avg_at(11) * 1.2);
  EXPECT_GT(avg_at(13), avg_at(9) * 2.0);
}

TEST(Fig2Shape, ApproachesSequentialCostAtHighCounts) {
  // Sequential execution costs one solo runtime per VM on average.
  const double solo = fftw_curve()[0].time_s;
  EXPECT_GT(avg_at(16), 0.8 * solo);
}

TEST(Fig2Shape, MildPlateauBetweenNineAndEleven) {
  EXPECT_LT(avg_at(11), avg_at(9) * 1.25);
}

TEST(Fig2Shape, SoloRuntimeMatchesSpec) {
  EXPECT_NEAR(fftw_curve()[0].time_s,
              workload::find_app("fftw").nominal_runtime_s(), 1e-6);
}

}  // namespace
}  // namespace aeva
