/// Failure injection: corrupted or inconsistent on-disk artifacts must be
/// rejected with clear errors, never silently mis-loaded — the toolchain
/// is file-driven (CSV model + SWF traces), so robustness here is part of
/// the public contract.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/first_fit.hpp"
#include "datacenter/failure.hpp"
#include "datacenter/simulator.hpp"
#include "modeldb/database.hpp"
#include "testing/shared_db.hpp"
#include "trace/swf.hpp"
#include "workload/profile.hpp"

namespace aeva {
namespace {

std::string temp_file(const std::string& name, const std::string& contents) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  std::ofstream out(path);
  out << contents;
  return path;
}

class FailureInjection : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : cleanup_) {
      std::filesystem::remove(path);
    }
  }
  std::string file(const std::string& name, const std::string& contents) {
    const std::string path = temp_file(name, contents);
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(FailureInjection, ModelCsvMissingColumnRejected) {
  const std::string db = file("fi_db1.csv",
                              "Ncpu,Nmem,Nio,Time\n1,0,0,1200\n");
  const std::string aux = file("fi_aux1.csv", "param,value\nOSPC,4\n");
  EXPECT_THROW((void)modeldb::ModelDatabase::load(db, aux),
               std::invalid_argument);
}

TEST_F(FailureInjection, ModelCsvHeaderOnlyRejected) {
  const std::string db = file(
      "fi_db2.csv",
      "Ncpu,Nmem,Nio,Time,avgTimeVM,Energy,MaxPower,EDP\n");
  const std::string aux = file("fi_aux2.csv", "param,value\nOSPC,4\n");
  EXPECT_THROW((void)modeldb::ModelDatabase::load(db, aux),
               std::invalid_argument);
}

TEST_F(FailureInjection, ModelCsvGarbageCellRejected) {
  const std::string db = file(
      "fi_db3.csv",
      "Ncpu,Nmem,Nio,Time,avgTimeVM,Energy,MaxPower,EDP\n"
      "1,0,0,oops,1200,150000,180,1.8e8\n");
  const std::string aux = file("fi_aux3.csv", "param,value\n");
  EXPECT_THROW((void)modeldb::ModelDatabase::load(db, aux),
               std::invalid_argument);
}

TEST_F(FailureInjection, ModelCsvNegativeEnergyRejected) {
  const std::string db = file(
      "fi_db4.csv",
      "Ncpu,Nmem,Nio,Time,avgTimeVM,Energy,MaxPower,EDP\n"
      "1,0,0,1200,1200,-5,180,1.8e8\n");
  const std::string aux = file("fi_aux4.csv", "param,value\n");
  EXPECT_THROW((void)modeldb::ModelDatabase::load(db, aux),
               std::invalid_argument);
}

TEST_F(FailureInjection, AuxUnknownParameterRejected) {
  const std::string db = file(
      "fi_db5.csv",
      "Ncpu,Nmem,Nio,Time,avgTimeVM,Energy,MaxPower,EDP\n"
      "1,0,0,1200,1200,150000,180,1.8e8\n");
  const std::string aux =
      file("fi_aux5.csv", "param,value\nTURBO_MODE,9\n");
  EXPECT_THROW((void)modeldb::ModelDatabase::load(db, aux),
               std::invalid_argument);
}

TEST_F(FailureInjection, MissingFilesReportedAsRuntimeErrors) {
  EXPECT_THROW((void)modeldb::ModelDatabase::load("/nope/db.csv",
                                                  "/nope/aux.csv"),
               std::runtime_error);
  EXPECT_THROW((void)trace::read_swf_file("/nope/trace.swf"),
               std::runtime_error);
}

TEST_F(FailureInjection, SaveToUnwritablePathThrows) {
  const modeldb::ModelDatabase& db = testing::shared_db();
  EXPECT_THROW(db.save("/proc/definitely/not/writable.csv",
                       "/proc/also/not/aux.csv"),
               std::runtime_error);
}

TEST_F(FailureInjection, TruncatedSwfLineRejected) {
  const std::string path =
      file("fi_trace1.swf",
           "; header\n1 0 0 100 4 90 1024 4 200 2048 1 10 2 7 1 1 -1 -1\n"
           "2 30 0 250 8\n");
  EXPECT_THROW((void)trace::read_swf_file(path), std::invalid_argument);
}

TEST_F(FailureInjection, SwfGarbageFieldRejected) {
  const std::string path = file(
      "fi_trace2.swf",
      "1 0 0 1e2x 4 90 1024 4 200 2048 1 10 2 7 1 1 -1 -1\n");
  EXPECT_THROW((void)trace::read_swf_file(path), std::invalid_argument);
}

TEST_F(FailureInjection, SwfCommentsOnlyYieldsEmptyTrace) {
  const std::string path =
      file("fi_trace3.swf", "; nothing but comments\n; here\n");
  const trace::SwfTrace trace = trace::read_swf_file(path);
  EXPECT_TRUE(trace.jobs.empty());
  EXPECT_EQ(trace.comments.size(), 2u);
}

TEST_F(FailureInjection, FailureScriptFileDrivesEndToEndRecovery) {
  // The whole file-driven chain: write a scripted crash to disk, load it
  // through read_failure_script_file, run a one-VM cloud, and check the
  // lost work against hand arithmetic. One CPU VM alone on a server runs
  // at rate 1/solo; a crash at 0.25·solo under restart-from-zero destroys
  // exactly 0.25·solo of work and stretches the makespan to 1.25·solo.
  const modeldb::ModelDatabase& db = testing::shared_db();
  const double solo =
      db.base().of(workload::ProfileClass::kCpu).solo_time_s;

  std::ostringstream script;
  script << "# one scripted crash\ncrash 0 " << 0.25 * solo << " 1.0\n";
  const std::string path = file("fi_failures.txt", script.str());

  datacenter::CloudConfig cloud;
  cloud.server_count = 2;
  cloud.failure.enabled = true;
  cloud.failure.script = datacenter::read_failure_script_file(path);

  trace::PreparedWorkload workload;
  trace::JobRequest job;
  job.id = 1;
  job.profile = workload::ProfileClass::kCpu;
  job.vm_count = 1;
  job.deadline_s = 1e12;
  workload.jobs.push_back(job);
  workload.total_vms = 1;

  const datacenter::Simulator sim(db, cloud);
  const datacenter::SimMetrics m =
      sim.run(workload, core::FirstFitAllocator(1));
  EXPECT_EQ(m.failures, 1u);
  EXPECT_EQ(m.vm_restarts, 1u);
  EXPECT_NEAR(m.makespan_s, 1.25 * solo, 1e-6 * solo);
  EXPECT_NEAR(m.lost_work_s, 0.25 * solo, 1e-6 * solo);
  EXPECT_NEAR(m.goodput_fraction, 1.0 / 1.25, 1e-9);
}

TEST_F(FailureInjection, CheckpointRestartRecoversFromTheLastBoundary) {
  // Same crash, checkpoint-restart with a zero tax and a 0.1·solo period:
  // the VM resumes from the 0.2·solo boundary, so only 0.05·solo is lost
  // and the makespan is 1.05·solo.
  const modeldb::ModelDatabase& db = testing::shared_db();
  const double solo =
      db.base().of(workload::ProfileClass::kCpu).solo_time_s;

  datacenter::CloudConfig cloud;
  cloud.server_count = 2;
  cloud.failure.enabled = true;
  cloud.failure.script = {datacenter::FailureEvent{
      datacenter::FailureKind::kCrash, 0, 0.25 * solo, 1.0, 1.0}};
  cloud.failure.recovery.policy =
      datacenter::RecoveryPolicy::kCheckpointRestart;
  cloud.failure.recovery.checkpoint_period_s = 0.1 * solo;
  cloud.failure.recovery.checkpoint_tax = 0.0;

  trace::PreparedWorkload workload;
  trace::JobRequest job;
  job.id = 1;
  job.profile = workload::ProfileClass::kCpu;
  job.vm_count = 1;
  job.deadline_s = 1e12;
  workload.jobs.push_back(job);
  workload.total_vms = 1;

  const datacenter::Simulator sim(db, cloud);
  const datacenter::SimMetrics m =
      sim.run(workload, core::FirstFitAllocator(1));
  EXPECT_EQ(m.vm_restarts, 1u);
  EXPECT_NEAR(m.makespan_s, 1.05 * solo, 1e-6 * solo);
  EXPECT_NEAR(m.lost_work_s, 0.05 * solo, 1e-6 * solo);
  EXPECT_NEAR(m.goodput_fraction, 1.0 / 1.05, 1e-9);
}

TEST_F(FailureInjection, MalformedFailureScriptRejected) {
  const std::string bad = file("fi_failures_bad.txt", "crash 0 nope 5\n");
  EXPECT_THROW((void)datacenter::read_failure_script_file(bad),
               std::invalid_argument);
  EXPECT_THROW(
      (void)datacenter::read_failure_script_file("/nope/failures.txt"),
      std::runtime_error);
}

TEST_F(FailureInjection, RoundTripSurvivesReload) {
  // Control: a legitimately saved database reloads identically even after
  // an unrelated failure in the same process.
  const modeldb::ModelDatabase& db = testing::shared_db();
  const std::string db_path =
      (std::filesystem::temp_directory_path() / "fi_ok_db.csv").string();
  const std::string aux_path =
      (std::filesystem::temp_directory_path() / "fi_ok_aux.csv").string();
  cleanup_.push_back(db_path);
  cleanup_.push_back(aux_path);
  db.save(db_path, aux_path);
  const modeldb::ModelDatabase loaded =
      modeldb::ModelDatabase::load(db_path, aux_path);
  EXPECT_EQ(loaded.size(), db.size());
}

}  // namespace
}  // namespace aeva
