/// Failure injection: corrupted or inconsistent on-disk artifacts must be
/// rejected with clear errors, never silently mis-loaded — the toolchain
/// is file-driven (CSV model + SWF traces), so robustness here is part of
/// the public contract.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "modeldb/database.hpp"
#include "testing/shared_db.hpp"
#include "trace/swf.hpp"

namespace aeva {
namespace {

std::string temp_file(const std::string& name, const std::string& contents) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  std::ofstream out(path);
  out << contents;
  return path;
}

class FailureInjection : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : cleanup_) {
      std::filesystem::remove(path);
    }
  }
  std::string file(const std::string& name, const std::string& contents) {
    const std::string path = temp_file(name, contents);
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(FailureInjection, ModelCsvMissingColumnRejected) {
  const std::string db = file("fi_db1.csv",
                              "Ncpu,Nmem,Nio,Time\n1,0,0,1200\n");
  const std::string aux = file("fi_aux1.csv", "param,value\nOSPC,4\n");
  EXPECT_THROW((void)modeldb::ModelDatabase::load(db, aux),
               std::invalid_argument);
}

TEST_F(FailureInjection, ModelCsvHeaderOnlyRejected) {
  const std::string db = file(
      "fi_db2.csv",
      "Ncpu,Nmem,Nio,Time,avgTimeVM,Energy,MaxPower,EDP\n");
  const std::string aux = file("fi_aux2.csv", "param,value\nOSPC,4\n");
  EXPECT_THROW((void)modeldb::ModelDatabase::load(db, aux),
               std::invalid_argument);
}

TEST_F(FailureInjection, ModelCsvGarbageCellRejected) {
  const std::string db = file(
      "fi_db3.csv",
      "Ncpu,Nmem,Nio,Time,avgTimeVM,Energy,MaxPower,EDP\n"
      "1,0,0,oops,1200,150000,180,1.8e8\n");
  const std::string aux = file("fi_aux3.csv", "param,value\n");
  EXPECT_THROW((void)modeldb::ModelDatabase::load(db, aux),
               std::invalid_argument);
}

TEST_F(FailureInjection, ModelCsvNegativeEnergyRejected) {
  const std::string db = file(
      "fi_db4.csv",
      "Ncpu,Nmem,Nio,Time,avgTimeVM,Energy,MaxPower,EDP\n"
      "1,0,0,1200,1200,-5,180,1.8e8\n");
  const std::string aux = file("fi_aux4.csv", "param,value\n");
  EXPECT_THROW((void)modeldb::ModelDatabase::load(db, aux),
               std::invalid_argument);
}

TEST_F(FailureInjection, AuxUnknownParameterRejected) {
  const std::string db = file(
      "fi_db5.csv",
      "Ncpu,Nmem,Nio,Time,avgTimeVM,Energy,MaxPower,EDP\n"
      "1,0,0,1200,1200,150000,180,1.8e8\n");
  const std::string aux =
      file("fi_aux5.csv", "param,value\nTURBO_MODE,9\n");
  EXPECT_THROW((void)modeldb::ModelDatabase::load(db, aux),
               std::invalid_argument);
}

TEST_F(FailureInjection, MissingFilesReportedAsRuntimeErrors) {
  EXPECT_THROW((void)modeldb::ModelDatabase::load("/nope/db.csv",
                                                  "/nope/aux.csv"),
               std::runtime_error);
  EXPECT_THROW((void)trace::read_swf_file("/nope/trace.swf"),
               std::runtime_error);
}

TEST_F(FailureInjection, SaveToUnwritablePathThrows) {
  const modeldb::ModelDatabase& db = testing::shared_db();
  EXPECT_THROW(db.save("/proc/definitely/not/writable.csv",
                       "/proc/also/not/aux.csv"),
               std::runtime_error);
}

TEST_F(FailureInjection, TruncatedSwfLineRejected) {
  const std::string path =
      file("fi_trace1.swf",
           "; header\n1 0 0 100 4 90 1024 4 200 2048 1 10 2 7 1 1 -1 -1\n"
           "2 30 0 250 8\n");
  EXPECT_THROW((void)trace::read_swf_file(path), std::invalid_argument);
}

TEST_F(FailureInjection, SwfGarbageFieldRejected) {
  const std::string path = file(
      "fi_trace2.swf",
      "1 0 0 1e2x 4 90 1024 4 200 2048 1 10 2 7 1 1 -1 -1\n");
  EXPECT_THROW((void)trace::read_swf_file(path), std::invalid_argument);
}

TEST_F(FailureInjection, SwfCommentsOnlyYieldsEmptyTrace) {
  const std::string path =
      file("fi_trace3.swf", "; nothing but comments\n; here\n");
  const trace::SwfTrace trace = trace::read_swf_file(path);
  EXPECT_TRUE(trace.jobs.empty());
  EXPECT_EQ(trace.comments.size(), 2u);
}

TEST_F(FailureInjection, RoundTripSurvivesReload) {
  // Control: a legitimately saved database reloads identically even after
  // an unrelated failure in the same process.
  const modeldb::ModelDatabase& db = testing::shared_db();
  const std::string db_path =
      (std::filesystem::temp_directory_path() / "fi_ok_db.csv").string();
  const std::string aux_path =
      (std::filesystem::temp_directory_path() / "fi_ok_aux.csv").string();
  cleanup_.push_back(db_path);
  cleanup_.push_back(aux_path);
  db.save(db_path, aux_path);
  const modeldb::ModelDatabase loaded =
      modeldb::ModelDatabase::load(db_path, aux_path);
  EXPECT_EQ(loaded.size(), db.size());
}

}  // namespace
}  // namespace aeva
