/// Integration: the heterogeneous-hardware extension (the paper's future
/// work i). A second server class ("bigbox": 8 cores, 8 GB, 4 disks) gets
/// its own benchmarking campaign and model database; the allocator and the
/// simulator pick the model by each server's hardware class.

#include <gtest/gtest.h>

#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "datacenter/simulator.hpp"
#include "testing/shared_db.hpp"

namespace aeva {
namespace {

using core::ServerState;
using core::VmRequest;
using workload::ClassCounts;
using workload::ProfileClass;

const modeldb::ModelDatabase& small_db() { return testing::shared_db(); }

const modeldb::ModelDatabase& big_db() {
  static const modeldb::ModelDatabase db = [] {
    modeldb::CampaignConfig config;
    config.server = testbed::bigbox_server();
    return modeldb::Campaign(config).build();
  }();
  return db;
}

TEST(Heterogeneous, BigboxHostsMoreVmsBeforeDegrading) {
  // The 8-core box sustains more same-type VMs: its performance-optimal
  // CPU count exceeds the 4-core testbed's.
  EXPECT_GT(big_db().base().cpu.os(), small_db().base().cpu.os());
}

TEST(Heterogeneous, BigboxDrawsMorePower) {
  const auto solo = ClassCounts{1, 0, 0};
  EXPECT_GT(big_db().estimate(solo).avg_power_w(),
            small_db().estimate(solo).avg_power_w());
}

TEST(Heterogeneous, SoloTimesAgreeAcrossHardware) {
  // A lone VM is uncontended on either box: solo runtimes match the app.
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    EXPECT_NEAR(big_db().base().of(profile).solo_time_s,
                small_db().base().of(profile).solo_time_s, 1.0);
  }
}

TEST(Heterogeneous, AllocatorUsesPerClassModels) {
  const std::vector<const modeldb::ModelDatabase*> dbs = {&small_db(),
                                                          &big_db()};
  core::ProactiveConfig config;
  config.alpha = 0.0;
  const core::ProactiveAllocator allocator(dbs, config);
  EXPECT_EQ(&allocator.cost_model(0).db(), &small_db());
  EXPECT_EQ(&allocator.cost_model(1).db(), &big_db());
  EXPECT_THROW((void)allocator.cost_model(2), std::invalid_argument);
}

TEST(Heterogeneous, PerformanceGoalPrefersBiggerBoxUnderLoad) {
  // Both servers hold 4 CPU VMs; the big box still runs them uncontended,
  // so a time-driven allocator must pick it for the next CPU VM.
  const std::vector<const modeldb::ModelDatabase*> dbs = {&small_db(),
                                                          &big_db()};
  core::ProactiveConfig config;
  config.alpha = 0.0;
  const core::ProactiveAllocator allocator(dbs, config);
  std::vector<ServerState> servers = {
      ServerState{0, ClassCounts{4, 0, 0}, true, 0},
      ServerState{1, ClassCounts{4, 0, 0}, true, 1},
  };
  std::vector<VmRequest> vms = {VmRequest{1, ProfileClass::kCpu, 1e12}};
  const auto result = allocator.allocate(vms, servers);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.placements[0].server_id, 1);
}

TEST(Heterogeneous, RejectsBadConstruction) {
  core::ProactiveConfig config;
  EXPECT_THROW(core::ProactiveAllocator(
                   std::vector<const modeldb::ModelDatabase*>{}, config),
               std::invalid_argument);
  EXPECT_THROW(core::ProactiveAllocator(
                   std::vector<const modeldb::ModelDatabase*>{nullptr},
                   config),
               std::invalid_argument);
}

TEST(Heterogeneous, SimulatorRunsMixedFleet) {
  datacenter::CloudConfig cloud;
  cloud.server_count = 6;
  cloud.hardware = {0, 0, 0, 0, 1, 1};
  const datacenter::Simulator sim({&small_db(), &big_db()}, cloud);

  trace::PreparedWorkload workload;
  long long id = 1;
  for (int i = 0; i < 12; ++i) {
    trace::JobRequest job;
    job.id = id++;
    job.submit_s = i * 50.0;
    job.profile = workload::kAllProfileClasses[static_cast<std::size_t>(i) % 3];
    job.vm_count = 2;
    job.runtime_scale = 1.0;
    job.deadline_s = 1e9;
    workload.jobs.push_back(job);
    workload.total_vms += 2;
  }

  core::ProactiveConfig config;
  config.alpha = 0.5;
  const core::ProactiveAllocator pa({&small_db(), &big_db()}, config);
  const datacenter::SimMetrics metrics = sim.run(workload, pa);
  EXPECT_EQ(metrics.vms, 24u);
  EXPECT_GT(metrics.energy_j, 0.0);
}

TEST(Heterogeneous, MixedFleetBeatsEqualCountSmallFleetOnMakespan) {
  // Replacing two small servers with two big ones adds capacity; a
  // hardware-aware PROACTIVE must not get slower.
  trace::PreparedWorkload workload;
  long long id = 1;
  for (int i = 0; i < 30; ++i) {
    trace::JobRequest job;
    job.id = id++;
    job.submit_s = i * 20.0;
    job.profile = workload::kAllProfileClasses[static_cast<std::size_t>(i) % 3];
    job.vm_count = 3;
    job.runtime_scale = 1.0;
    job.deadline_s = 1e9;
    workload.jobs.push_back(job);
    workload.total_vms += 3;
  }

  core::ProactiveConfig config;
  config.alpha = 0.0;

  datacenter::CloudConfig homogeneous;
  homogeneous.server_count = 4;
  const core::ProactiveAllocator pa_homo(small_db(), config);
  const double t_homo = datacenter::Simulator(small_db(), homogeneous)
                            .run(workload, pa_homo)
                            .makespan_s;

  datacenter::CloudConfig mixed;
  mixed.server_count = 4;
  mixed.hardware = {0, 0, 1, 1};
  const core::ProactiveAllocator pa_mixed({&small_db(), &big_db()}, config);
  const double t_mixed = datacenter::Simulator({&small_db(), &big_db()}, mixed)
                             .run(workload, pa_mixed)
                             .makespan_s;
  EXPECT_LE(t_mixed, t_homo + 1e-6);
}

TEST(Heterogeneous, FirstFitHonoursPerClassCpuCounts) {
  const core::FirstFitAllocator ff(1, std::vector<int>{4, 8});
  EXPECT_EQ(ff.server_capacity(0), 4);
  EXPECT_EQ(ff.server_capacity(1), 8);
  EXPECT_THROW((void)ff.server_capacity(2), std::invalid_argument);

  std::vector<ServerState> servers = {
      ServerState{0, ClassCounts{4, 0, 0}, true, 0},  // small box full
      ServerState{1, ClassCounts{4, 0, 0}, true, 1},  // big box half full
  };
  std::vector<VmRequest> vms = {VmRequest{1, ProfileClass::kMem, 1e12}};
  const auto result = ff.allocate(vms, servers);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.placements[0].server_id, 1);
}

}  // namespace
}  // namespace aeva
