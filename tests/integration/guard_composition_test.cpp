/// Integration: decorator composition — the power cap wrapped around the
/// thermal guard wrapped around the proactive allocator. Each layer's
/// contract must survive stacking.

#include <gtest/gtest.h>

#include <memory>

#include "core/power_cap.hpp"
#include "core/proactive.hpp"
#include "datacenter/simulator.hpp"
#include "testing/shared_db.hpp"
#include "thermal/thermal_guard.hpp"

namespace aeva {
namespace {

using core::ServerState;
using core::VmRequest;
using workload::ClassCounts;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

const thermal::ThermalMap& map8() {
  static const thermal::ThermalMap map(8, thermal::ThermalConfig{});
  return map;
}

std::unique_ptr<core::Allocator> stacked(double cap_w) {
  core::ProactiveConfig config;
  config.alpha = 0.5;
  auto inner = std::make_unique<core::ProactiveAllocator>(db(), config);
  auto guarded = std::make_unique<thermal::ThermalGuardAllocator>(
      std::move(inner), db(), map8());
  return std::make_unique<core::PowerCapAllocator>(std::move(guarded), db(),
                                                   cap_w);
}

std::vector<ServerState> empty_servers(int count) {
  std::vector<ServerState> servers;
  for (int i = 0; i < count; ++i) {
    servers.push_back(ServerState{i, ClassCounts{}, false, 0});
  }
  return servers;
}

TEST(GuardComposition, NameShowsTheWholeStack) {
  EXPECT_EQ(stacked(9000.0)->name(), "CAP9.0kW(TG(PA-0.5))");
}

TEST(GuardComposition, GenerousLimitsPassThrough) {
  const auto stack = stacked(1e9);
  std::vector<VmRequest> vms = {VmRequest{1, ProfileClass::kCpu, 1e12},
                                VmRequest{2, ProfileClass::kIo, 1e12}};
  const auto result = stack->allocate(vms, empty_servers(8));
  EXPECT_TRUE(result.complete);
}

TEST(GuardComposition, PowerCapStillBinds) {
  const auto stack = stacked(50.0);  // below any busy server's draw
  std::vector<VmRequest> vms = {VmRequest{1, ProfileClass::kMem, 1e12}};
  const auto result = stack->allocate(vms, empty_servers(8));
  EXPECT_FALSE(result.complete);
}

TEST(GuardComposition, RunsAFullSimulation) {
  trace::PreparedWorkload workload;
  long long id = 1;
  for (int i = 0; i < 9; ++i) {
    trace::JobRequest job;
    job.id = id++;
    job.submit_s = i * 60.0;
    job.profile = workload::kAllProfileClasses[static_cast<std::size_t>(i) % 3];
    job.vm_count = 2;
    job.runtime_scale = 1.0;
    job.deadline_s = 1e9;
    workload.jobs.push_back(job);
    workload.total_vms += 2;
  }
  datacenter::CloudConfig cloud;
  cloud.server_count = 8;
  const datacenter::Simulator sim(db(), cloud);
  const auto stack = stacked(1500.0);
  const datacenter::SimMetrics metrics = sim.run(workload, *stack);
  EXPECT_EQ(metrics.vms, 18u);
}

}  // namespace
}  // namespace aeva
