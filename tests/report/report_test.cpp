#include "report/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace aeva::report {
namespace {

TEST(Slugify, Basics) {
  EXPECT_EQ(slugify("Figure 5 — Makespan"), "figure-5-makespan");
  EXPECT_EQ(slugify("Table II"), "table-ii");
  EXPECT_EQ(slugify("___"), "table");
  EXPECT_EQ(slugify("Already-Clean"), "already-clean");
}

TEST(Table, MarkdownRendering) {
  Table table("Demo", {"a", "b"});
  table.add_row({"1", "2"}).caption("a caption");
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("**Demo**"), std::string::npos);
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
  EXPECT_NE(md.find("*a caption*"), std::string::npos);
}

TEST(Table, EscapesPipes) {
  Table table("T", {"x"});
  table.add_row({"a|b"});
  EXPECT_NE(table.to_markdown().find("a\\|b"), std::string::npos);
}

TEST(Table, CsvExport) {
  Table table("T", {"x", "y"});
  table.add_row({"1", "2"});
  const util::CsvTable csv = table.to_csv();
  EXPECT_EQ(csv.header, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(csv.rows.size(), 1u);
}

TEST(Table, RejectsBadInput) {
  EXPECT_THROW(Table("", {"a"}), std::invalid_argument);
  EXPECT_THROW(Table("t", {}), std::invalid_argument);
  Table table("t", {"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Report, MarkdownComposition) {
  Report report("My Reproduction");
  report.section("Results")
      .paragraph("Some prose.")
      .table(Table("Numbers", {"k", "v"}).add_row({"a", "1"}));
  const std::string md = report.to_markdown();
  EXPECT_NE(md.find("# My Reproduction"), std::string::npos);
  EXPECT_NE(md.find("## Results"), std::string::npos);
  EXPECT_NE(md.find("Some prose."), std::string::npos);
  EXPECT_NE(md.find("**Numbers**"), std::string::npos);
  EXPECT_EQ(report.table_count(), 1u);
}

TEST(Report, WriteProducesMarkdownAndCsvs) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "aeva_report_test").string();
  std::filesystem::remove_all(dir);

  Report report("Repro");
  report.table(Table("Figure 5", {"s", "m"}).add_row({"FF", "61520"}));
  report.table(Table("Figure 6", {"s", "e"}).add_row({"FF", "649.7"}));
  report.write(dir);

  EXPECT_TRUE(std::filesystem::exists(dir + "/report.md"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/figure-5.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/figure-6.csv"));
  const util::CsvTable csv = util::read_csv_file(dir + "/figure-5.csv");
  ASSERT_EQ(csv.rows.size(), 1u);
  EXPECT_EQ(csv.rows[0][1], "61520");
  std::filesystem::remove_all(dir);
}

TEST(Report, WriteFailsOnUnwritableTarget) {
  Report report("Repro");
  report.table(Table("T", {"a"}).add_row({"1"}));
  EXPECT_THROW(report.write("/proc/cannot/create/this"), std::runtime_error);
}

TEST(Report, RejectsEmptyTitle) {
  EXPECT_THROW(Report(""), std::invalid_argument);
}

}  // namespace
}  // namespace aeva::report
