/// The incremental serve rung (docs/SERVING.md "Incremental allocator"):
/// with `ServeConfig::incremental` enabled the service answers normal-mode
/// decisions from a cached core::FleetState and demotes the exhaustive
/// ProactiveAllocator to a periodic oracle. The contract under test:
/// incremental runs stay bit-reproducible, an oracle on every decision
/// reproduces the plain exhaustive run's decision log byte for byte, the
/// oracle never observes a divergence (the planner is exact), snapshots
/// carry the oracle cadence so resume stays bit-identical, and the config
/// fingerprint pins every incremental knob.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "datacenter/failure.hpp"
#include "persist/serve_snapshot.hpp"
#include "serve/service.hpp"
#include "testing/shared_db.hpp"

namespace aeva::serve {
namespace {

/// Busy enough to exercise queueing, ladder trips, retries, and — every
/// run — a scripted crash/repair cycle that the fleet mirror must track.
ServeConfig busy_config(std::uint64_t seed) {
  ServeConfig config;
  config.server_count = 8;
  config.queue.capacity = 14;
  config.health.queue_high = 9.0;
  config.health.queue_low = 2.0;
  config.health.trip_after = 2;
  config.health.rearm_after = 4;
  config.cost.base_s = 0.05;
  config.seed = seed;
  config.failure.enabled = true;
  datacenter::FailureEvent crash;
  crash.kind = datacenter::FailureKind::kCrash;
  crash.server = 3;
  crash.at_s = 1.0;
  crash.duration_s = 1.0;
  config.failure.script.push_back(crash);
  return config;
}

std::vector<ServeRequest> busy_stream(std::uint64_t seed) {
  ArrivalStreamConfig stream;
  stream.count = 120;
  stream.rate_rps = 45.0;
  stream.hold_mean_s = 25.0;
  stream.deadline_slack_s = 8.0;
  return generate_stream(stream, seed);
}

TEST(ServeIncremental, PureIncrementalRunsAreBitReproducible) {
  const modeldb::ModelDatabase& db = testing::shared_db();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ServeConfig config = busy_config(seed);
    config.incremental.enabled = true;  // oracle off: incremental only
    const AllocationService service(db, config);
    const std::vector<ServeRequest> stream = busy_stream(seed);
    const ServeResult a = service.run(stream);
    const ServeResult b = service.run(stream);
    ASSERT_EQ(render_decision_log(a.log), render_decision_log(b.log))
        << "seed " << seed;
    ASSERT_EQ(serve_metrics_json(a.metrics), serve_metrics_json(b.metrics))
        << "seed " << seed;
    EXPECT_GT(a.metrics.decisions_incremental, 0u) << "seed " << seed;
    EXPECT_EQ(a.metrics.oracle_checks, 0u) << "seed " << seed;
    // The decision log records which allocator answered.
    EXPECT_NE(render_decision_log(a.log).find("incremental"),
              std::string::npos)
        << "seed " << seed;
  }
}

TEST(ServeIncremental, OracleEveryDecisionMatchesExhaustiveRunExactly) {
  const modeldb::ModelDatabase& db = testing::shared_db();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::vector<ServeRequest> stream = busy_stream(seed);
    const AllocationService plain(db, busy_config(seed));
    ServeConfig checked_config = busy_config(seed);
    checked_config.incremental.enabled = true;
    checked_config.incremental.oracle_every_decisions = 1;
    const AllocationService checked(db, checked_config);

    const ServeResult reference = plain.run(stream);
    const ServeResult shadowed = checked.run(stream);
    // Every decision is an oracle decision: the exhaustive allocator
    // stays authoritative, so the run is byte-identical to plain — while
    // the shadow planner is cross-checked at every step.
    ASSERT_EQ(render_decision_log(reference.log),
              render_decision_log(shadowed.log))
        << "seed " << seed;
    EXPECT_GT(shadowed.metrics.oracle_checks, 0u) << "seed " << seed;
    EXPECT_EQ(shadowed.metrics.oracle_divergences, 0u) << "seed " << seed;
    EXPECT_EQ(shadowed.metrics.fleet_resyncs, 0u) << "seed " << seed;
    EXPECT_EQ(shadowed.metrics.decisions_incremental, 0u) << "seed " << seed;
  }
}

TEST(ServeIncremental, PeriodicOracleObservesNoDriftUnderChurn) {
  const modeldb::ModelDatabase& db = testing::shared_db();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ServeConfig config = busy_config(seed);
    config.incremental.enabled = true;
    config.incremental.oracle_every_s = 0.5;
    const AllocationService service(db, config);
    const ServeResult result = service.run(busy_stream(seed));
    EXPECT_GT(result.metrics.decisions_incremental, 0u) << "seed " << seed;
    EXPECT_GT(result.metrics.oracle_checks, 0u) << "seed " << seed;
    // The planner is exact and the mirror tracks every commit, release,
    // crash, and repair: the oracle must never see a divergence.
    EXPECT_EQ(result.metrics.oracle_divergences, 0u) << "seed " << seed;
    EXPECT_EQ(result.metrics.fleet_resyncs, 0u) << "seed " << seed;
  }
}

TEST(ServeIncremental, SnapshotResumeStaysBitIdentical) {
  const modeldb::ModelDatabase& db = testing::shared_db();
  const std::vector<ServeRequest> stream = busy_stream(7);

  ServeConfig config = busy_config(7);
  config.incremental.enabled = true;
  config.incremental.oracle_every_s = 0.75;
  const AllocationService reference(db, config);
  const ServeResult full = reference.run(stream);

  ServeConfig snapshotting = config;
  snapshotting.snapshot.every_s = 0.5;
  std::vector<persist::ServeSnapshot> taken;
  snapshotting.snapshot.hook =
      [&taken](const persist::ServeSnapshot& snap) { taken.push_back(snap); };
  const AllocationService recorder(db, snapshotting);
  const ServeResult recorded = recorder.run(stream);
  ASSERT_GE(taken.size(), 3u);
  ASSERT_EQ(render_decision_log(full.log), render_decision_log(recorded.log));

  const std::size_t picks[] = {0, taken.size() / 2, taken.size() - 1};
  for (const std::size_t pick : picks) {
    const ServeResult resumed = reference.resume(stream, taken[pick]);
    EXPECT_EQ(render_decision_log(full.log), render_decision_log(resumed.log))
        << "resumed from snapshot " << pick;
    EXPECT_EQ(serve_metrics_json(full.metrics),
              serve_metrics_json(resumed.metrics))
        << "resumed from snapshot " << pick;
  }
}

TEST(ServeIncremental, ConfigFingerprintPinsEveryIncrementalKnob) {
  const modeldb::ModelDatabase& db = testing::shared_db();
  const auto fingerprint = [&db](const ServeConfig& config) {
    return AllocationService(db, config).config_fingerprint();
  };
  const ServeConfig base = busy_config(1);
  const std::uint64_t plain = fingerprint(base);

  ServeConfig enabled = base;
  enabled.incremental.enabled = true;
  EXPECT_NE(fingerprint(enabled), plain);

  ServeConfig cadence = enabled;
  cadence.incremental.oracle_every_s = 10.0;
  EXPECT_NE(fingerprint(cadence), fingerprint(enabled));

  ServeConfig decisions = enabled;
  decisions.incremental.oracle_every_decisions = 64;
  EXPECT_NE(fingerprint(decisions), fingerprint(enabled));

  ServeConfig watermark = enabled;
  watermark.incremental.drift_watermark = 3;
  EXPECT_NE(fingerprint(watermark), fingerprint(enabled));

  ServeConfig cost = base;
  cost.cost.incremental_s = 1e-3;
  EXPECT_NE(fingerprint(cost), plain);
}

TEST(ServeIncremental, ValidationRejectsBadIncrementalConfig) {
  const modeldb::ModelDatabase& db = testing::shared_db();
  ServeConfig bad_cost = busy_config(1);
  bad_cost.cost.incremental_s = 0.0;
  EXPECT_THROW((void)AllocationService(db, bad_cost), std::invalid_argument);

  ServeConfig bad_period = busy_config(1);
  bad_period.incremental.oracle_every_s = -1.0;
  EXPECT_THROW((void)AllocationService(db, bad_period),
               std::invalid_argument);

  ServeConfig bad_watermark = busy_config(1);
  bad_watermark.incremental.drift_watermark = 0;
  EXPECT_THROW((void)AllocationService(db, bad_watermark),
               std::invalid_argument);
}

}  // namespace
}  // namespace aeva::serve
