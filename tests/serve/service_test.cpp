/// Serve-layer control points (docs/RESILIENCE.md, "Overload
/// protection"): bounded-queue shed policies, deadline math at the
/// boundary instants, the hysteresis degradation ladder, retry backoff
/// reproducibility, and graceful drain.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "datacenter/topology.hpp"
#include "serve/service.hpp"
#include "testing/shared_db.hpp"

namespace aeva::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

ServeRequest request(std::int64_t id, double arrival_s, int klass = 0,
                     int vm_count = 1) {
  ServeRequest req;
  req.id = id;
  req.arrival_s = arrival_s;
  req.klass = klass;
  req.vm_count = vm_count;
  return req;
}

/// Baseline single-decision config: retries and the ladder off so each
/// control point can be observed in isolation.
ServeConfig plain_config() {
  ServeConfig config;
  config.server_count = 8;
  config.retry.enabled = false;
  config.health.enabled = false;
  config.deadline.enforce = false;
  return config;
}

std::vector<const DecisionRecord*> records_for(const ServeResult& result,
                                               std::int64_t id) {
  std::vector<const DecisionRecord*> out;
  for (const DecisionRecord& rec : result.log) {
    if (rec.request_id == id) {
      out.push_back(&rec);
    }
  }
  return out;
}

// --- arrival stream ------------------------------------------------------

TEST(ArrivalStream, DeterministicAndInRange) {
  ArrivalStreamConfig config;
  config.count = 200;
  config.deadline_slack_s = 5.0;
  const std::vector<ServeRequest> a = generate_stream(config, 7);
  const std::vector<ServeRequest> b = generate_stream(config, 7);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_EQ(stream_fingerprint(a), stream_fingerprint(b));
  double last = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<std::int64_t>(i) + 1);
    EXPECT_GE(a[i].arrival_s, last);
    last = a[i].arrival_s;
    EXPECT_GE(a[i].klass, 0);
    EXPECT_LT(a[i].klass, kClassCount);
    EXPECT_GE(a[i].vm_count, config.min_vms);
    EXPECT_LE(a[i].vm_count, config.max_vms);
    EXPECT_GE(a[i].deadline_s, a[i].arrival_s + 0.5 * 5.0);
    EXPECT_LE(a[i].deadline_s, a[i].arrival_s + 1.5 * 5.0);
    EXPECT_TRUE(std::isnan(a[i].release_at_s));
  }
  EXPECT_NE(stream_fingerprint(a),
            stream_fingerprint(generate_stream(config, 8)));
}

TEST(ArrivalStream, ValidateRejectsBadFields) {
  ArrivalStreamConfig config;
  config.rate_rps = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.min_vms = 3;
  config.max_vms = 2;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.class_weights = {0.0, 0.0, 0.0};
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// --- config validation ---------------------------------------------------

TEST(ServeConfig, ValidateRejectsBadFields) {
  ServeConfig config;
  config.queue.capacity = 0;
  EXPECT_THROW(AllocationService(db(), config), std::invalid_argument);
  config = {};
  config.deadline.ewma_alpha = 0.0;
  EXPECT_THROW(AllocationService(db(), config), std::invalid_argument);
  config = {};
  config.health.queue_low = 50.0;
  config.health.queue_high = 10.0;
  EXPECT_THROW(AllocationService(db(), config), std::invalid_argument);
  config = {};
  config.health.latency_low_s = 1.0;
  config.health.latency_high_s = 0.5;
  EXPECT_THROW(AllocationService(db(), config), std::invalid_argument);
  config = {};
  config.retry.cap_s = 0.1;  // below base_s
  EXPECT_THROW(AllocationService(db(), config), std::invalid_argument);
  config = {};
  config.cost.base_s = 0.0;
  EXPECT_THROW(AllocationService(db(), config), std::invalid_argument);
}

// --- shed policies at the queue bound ------------------------------------

TEST(ShedPolicy, RejectNewestRefusesTheArrival) {
  ServeConfig config = plain_config();
  config.queue.capacity = 2;
  config.queue.policy = ShedPolicy::kRejectNewest;
  config.cost.base_s = 1.0;
  const AllocationService service(db(), config);
  const ServeResult result = service.run(
      {request(1, 0.0), request(2, 0.0), request(3, 0.0), request(4, 0.0)});

  EXPECT_EQ(result.metrics.placed, 2u);
  EXPECT_EQ(result.metrics.sheds, 2u);
  for (const std::int64_t id : {3, 4}) {
    const auto recs = records_for(result, id);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0]->event, DecisionEvent::kRejected);
    EXPECT_EQ(recs[0]->reason, core::RejectReason::kAdmissionQueueFull);
  }
  for (const std::int64_t id : {1, 2}) {
    ASSERT_EQ(records_for(result, id).size(), 1u);
    EXPECT_EQ(records_for(result, id)[0]->event, DecisionEvent::kPlaced);
  }
}

TEST(ShedPolicy, RejectOldestEvictsTheHead) {
  ServeConfig config = plain_config();
  config.queue.capacity = 2;
  config.queue.policy = ShedPolicy::kRejectOldest;
  config.cost.base_s = 1.0;
  const AllocationService service(db(), config);
  const ServeResult result = service.run(
      {request(1, 0.0), request(2, 0.0), request(3, 0.0), request(4, 0.0)});

  EXPECT_EQ(result.metrics.placed, 2u);
  for (const std::int64_t id : {1, 2}) {
    const auto recs = records_for(result, id);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0]->event, DecisionEvent::kRejected);
    EXPECT_EQ(recs[0]->reason, core::RejectReason::kAdmissionShed);
  }
  for (const std::int64_t id : {3, 4}) {
    EXPECT_EQ(records_for(result, id)[0]->event, DecisionEvent::kPlaced);
  }
}

TEST(ShedPolicy, RejectByClassEvictsLowestLowerClass) {
  ServeConfig config = plain_config();
  config.queue.capacity = 2;
  config.queue.policy = ShedPolicy::kRejectByClass;
  config.cost.base_s = 1.0;
  const AllocationService service(db(), config);
  // id3 (class 2) evicts id1 (class 0); id4 (class 0) outranks nothing
  // and is refused itself.
  const ServeResult result = service.run(
      {request(1, 0.0, 0), request(2, 0.0, 1), request(3, 0.0, 2),
       request(4, 0.0, 0)});

  EXPECT_EQ(records_for(result, 1)[0]->event, DecisionEvent::kRejected);
  EXPECT_EQ(records_for(result, 1)[0]->reason,
            core::RejectReason::kAdmissionShed);
  EXPECT_EQ(records_for(result, 4)[0]->event, DecisionEvent::kRejected);
  EXPECT_EQ(records_for(result, 4)[0]->reason,
            core::RejectReason::kAdmissionShed);
  EXPECT_EQ(records_for(result, 2)[0]->event, DecisionEvent::kPlaced);
  EXPECT_EQ(records_for(result, 3)[0]->event, DecisionEvent::kPlaced);
}

// --- deadline math at the boundary instants ------------------------------

TEST(Deadline, PredictedEqualToDeadlineAdmits) {
  ServeConfig config = plain_config();
  config.deadline.enforce = true;
  config.deadline.initial_latency_s = 1.0;
  const AllocationService service(db(), config);
  // Empty queue, nothing in flight: predicted completion = 0 + 1×1.0.
  ServeRequest boundary = request(1, 0.0);
  boundary.deadline_s = 1.0;
  const ServeResult result = service.run({boundary});
  ASSERT_EQ(result.log.size(), 1u);
  EXPECT_EQ(result.log[0].event, DecisionEvent::kPlaced);
}

TEST(Deadline, PredictedPastDeadlineRefusesAtTheDoor) {
  ServeConfig config = plain_config();
  config.deadline.enforce = true;
  config.deadline.initial_latency_s = 1.0;
  const AllocationService service(db(), config);
  ServeRequest hopeless = request(1, 0.0);
  hopeless.deadline_s = 0.5;
  const ServeResult result = service.run({hopeless});
  ASSERT_EQ(result.log.size(), 1u);
  EXPECT_EQ(result.log[0].event, DecisionEvent::kRejected);
  EXPECT_EQ(result.log[0].reason, core::RejectReason::kDeadlineUnmeetable);
  EXPECT_EQ(result.metrics.placed, 0u);
}

TEST(Deadline, ExpiryAtExactlyNowStillProcesses) {
  ServeConfig config = plain_config();
  config.deadline.enforce = true;
  config.deadline.initial_latency_s = 0.1;
  config.cost.base_s = 1.0;  // the first decision pins the queue until t=1
  config.cost.per_partition_s = 0.0;  // completion at exactly t=1
  const AllocationService service(db(), config);
  ServeRequest boundary = request(2, 0.0);
  boundary.deadline_s = 1.0;  // the queue head is popped exactly at t=1
  ServeRequest late = request(3, 0.0);
  late.deadline_s = 0.999;
  const ServeResult result = service.run(
      {request(1, 0.0), boundary, late});

  EXPECT_EQ(records_for(result, 2)[0]->event, DecisionEvent::kPlaced);
  const auto expired = records_for(result, 3);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0]->event, DecisionEvent::kRejected);
  EXPECT_EQ(expired[0]->reason, core::RejectReason::kDeadlineExpired);
  EXPECT_EQ(result.metrics.expired, 1u);
}

// --- retry backoff -------------------------------------------------------

TEST(Retry, BackoffDoublesExactlyWithZeroJitter) {
  ServeConfig config = plain_config();
  config.server_count = 2;
  config.proactive.server_vm_cap = 1;
  config.retry.enabled = true;
  config.retry.max_attempts = 3;
  config.retry.base_s = 0.5;
  config.retry.multiplier = 2.0;
  config.retry.jitter = 0.0;
  const AllocationService service(db(), config);
  // 4 VMs can never fit on 2 single-VM servers: every attempt fails,
  // retries burn down the budget, and the final rejection is terminal.
  const ServeResult result = service.run({request(1, 0.0, 0, 4)});

  const auto recs = records_for(result, 1);
  ASSERT_EQ(recs.size(), 4u);  // initial + 3 retries
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i]->attempt, static_cast<std::int32_t>(i));
  }
  // Attempt k schedules its retry base·2^k after the rejection instant.
  EXPECT_DOUBLE_EQ(recs[0]->retry_at_s, recs[0]->t + 0.5);
  EXPECT_DOUBLE_EQ(recs[1]->retry_at_s, recs[1]->t + 1.0);
  EXPECT_DOUBLE_EQ(recs[2]->retry_at_s, recs[2]->t + 2.0);
  EXPECT_LT(recs[3]->retry_at_s, 0.0);  // terminal
  EXPECT_EQ(recs[3]->reason, core::RejectReason::kRetriesExhausted);
  EXPECT_EQ(result.metrics.retries, 3u);
  EXPECT_EQ(result.metrics.retries_exhausted, 1u);
  EXPECT_EQ(result.metrics.rejected_final, 1u);
}

TEST(Retry, JitterIsSeededAndReproducible) {
  ServeConfig config = plain_config();
  config.server_count = 2;
  config.proactive.server_vm_cap = 1;
  config.retry.enabled = true;
  config.retry.jitter = 0.5;
  const std::vector<ServeRequest> stream = {request(1, 0.0, 0, 4)};
  const ServeResult a = AllocationService(db(), config).run(stream);
  const ServeResult b = AllocationService(db(), config).run(stream);
  EXPECT_EQ(render_decision_log(a.log), render_decision_log(b.log));

  config.seed = 99;
  const ServeResult c = AllocationService(db(), config).run(stream);
  EXPECT_NE(render_decision_log(a.log), render_decision_log(c.log));
}

TEST(Retry, GivesUpWhenTheRetryWouldMissTheDeadline) {
  ServeConfig config = plain_config();
  config.deadline.enforce = true;
  config.deadline.initial_latency_s = 1.0;
  config.retry.enabled = true;
  config.retry.base_s = 0.5;
  config.retry.jitter = 0.0;
  const AllocationService service(db(), config);
  // Unmeetable at the door (retryable), but the retry instant lands past
  // the deadline, so the client gives up immediately.
  ServeRequest hopeless = request(1, 0.0);
  hopeless.deadline_s = 0.2;
  const ServeResult result = service.run({hopeless});
  ASSERT_EQ(records_for(result, 1).size(), 1u);
  EXPECT_LT(records_for(result, 1)[0]->retry_at_s, 0.0);
  EXPECT_EQ(records_for(result, 1)[0]->reason,
            core::RejectReason::kDeadlineUnmeetable);
  EXPECT_EQ(result.metrics.retries, 0u);
  EXPECT_EQ(result.metrics.rejected_final, 1u);
}

TEST(Retry, TerminalReasonsAreNeverRetried) {
  ServeConfig config = plain_config();
  config.retry.enabled = true;
  const AllocationService service(db(), config);
  // Already expired on arrival: kDeadlineExpired is terminal, so even an
  // enabled retry budget schedules nothing.
  ServeRequest stale = request(1, 0.0);
  stale.deadline_s = -1.0;
  const ServeResult result = service.run({stale});
  ASSERT_EQ(records_for(result, 1).size(), 1u);
  EXPECT_EQ(records_for(result, 1)[0]->reason,
            core::RejectReason::kDeadlineExpired);
  EXPECT_FALSE(core::is_retryable(core::RejectReason::kDeadlineExpired));
  EXPECT_EQ(result.metrics.retries, 0u);
  EXPECT_EQ(result.metrics.expired, 1u);
}

// --- degradation ladder --------------------------------------------------

TEST(HealthController, TripsDemotesAndReArms) {
  ServeConfig config = plain_config();
  config.health.enabled = true;
  config.health.queue_high = 3.0;
  config.health.queue_low = 1.0;
  config.health.latency_low_s = kInf;  // depth alone drives this test
  config.health.latency_high_s = kInf;
  config.health.trip_after = 2;
  config.health.rearm_after = 2;
  config.health.min_class_when_shedding = 1;
  config.queue.capacity = 64;
  config.cost.base_s = 0.2;
  config.cost.degraded_s = 0.01;
  const AllocationService service(db(), config);

  // A burst deep enough to breach the depth watermark repeatedly, then a
  // long quiet tail so the controller can re-arm.
  std::vector<ServeRequest> stream;
  for (int i = 0; i < 12; ++i) {
    stream.push_back(request(i + 1, 0.0, /*klass=*/1));
  }
  stream.push_back(request(100, 60.0, 1));
  stream.push_back(request(101, 61.0, 1));
  const ServeResult result = service.run(stream);

  EXPECT_GE(result.metrics.breaker_trips, 1u);
  EXPECT_GE(result.metrics.breaker_rearms, 1u);
  EXPECT_GT(result.metrics.time_in_mode_s[1], 0.0);
  EXPECT_GT(result.metrics.placed_degraded, 0u);
  // Every request eventually placed: degradation changes the allocator,
  // not the answer's completeness, and the tail runs back at normal.
  EXPECT_EQ(result.metrics.placed, 14u);
  const auto tail = records_for(result, 101);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0]->mode, ServeMode::kNormal);
  // Mode residency accounts for the whole run.
  const double mode_total = result.metrics.time_in_mode_s[0] +
                            result.metrics.time_in_mode_s[1] +
                            result.metrics.time_in_mode_s[2];
  EXPECT_NEAR(mode_total, result.metrics.duration_s, 1e-9);
}

TEST(HealthController, SheddingRungRefusesLowClasses) {
  ServeConfig config = plain_config();
  config.health.enabled = true;
  config.health.queue_high = 2.0;
  config.health.queue_low = 0.0;
  config.health.latency_low_s = kInf;
  config.health.latency_high_s = kInf;
  config.health.trip_after = 1;  // one breach per rung: fast descent
  config.health.min_class_when_shedding = 1;
  config.queue.capacity = 64;
  config.cost.base_s = 0.5;
  const AllocationService service(db(), config);

  std::vector<ServeRequest> stream;
  for (int i = 0; i < 8; ++i) {
    stream.push_back(request(i + 1, 0.0, 1));
  }
  // Arrives once the service reached the shedding rung: class 0 refused.
  stream.push_back(request(50, 0.5, 0));
  const ServeResult result = service.run(stream);

  EXPECT_GE(result.metrics.breaker_trips, 2u);
  const auto shed = records_for(result, 50);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0]->event, DecisionEvent::kRejected);
  EXPECT_EQ(shed[0]->reason, core::RejectReason::kAdmissionShed);
  EXPECT_EQ(shed[0]->mode, ServeMode::kShedding);
}

// --- graceful drain ------------------------------------------------------

TEST(Drain, StopFinishesInFlightAndPreservesTheQueue) {
  ServeConfig config = plain_config();
  config.cost.base_s = 1.0;
  int polls = 0;
  config.stop = [&polls] { return ++polls > 2; };
  persist::ServeSnapshot last;
  bool snapped = false;
  config.snapshot.hook = [&](const persist::ServeSnapshot& snapshot) {
    last = snapshot;
    snapped = true;
  };
  const AllocationService service(db(), config);
  const ServeResult drained = service.run(
      {request(1, 0.0), request(2, 0.0), request(3, 0.0)});

  EXPECT_TRUE(drained.drained);
  EXPECT_LT(drained.metrics.placed, 3u);
  ASSERT_TRUE(snapped);  // the final drain snapshot
  EXPECT_EQ(last.queue.size() + drained.metrics.placed, 3u);

  // Resuming the drain snapshot finishes the queue: the union of the
  // drained log and the resumed tail is exactly an uninterrupted run.
  ServeConfig plain = plain_config();
  plain.cost.base_s = 1.0;
  const AllocationService resumed_service(db(), plain);
  const ServeResult tail = resumed_service.resume(
      {request(1, 0.0), request(2, 0.0), request(3, 0.0)}, last);
  EXPECT_FALSE(tail.drained);
  EXPECT_EQ(tail.metrics.placed, 3u);
  const ServeResult reference = resumed_service.run(
      {request(1, 0.0), request(2, 0.0), request(3, 0.0)});
  EXPECT_EQ(render_decision_log(tail.log),
            render_decision_log(reference.log));
}

// --- metrics JSON --------------------------------------------------------

// --- correlated failure domains ------------------------------------------

TEST(ServeDomainFaults, PduFaultCrashesTheFeedAndTalliesCorrelatedLosses) {
  // Both servers share PDU feed 0: one scripted pdu event must crash the
  // pair, lose both resident groups as *correlated* losses, and re-admit
  // them.
  const datacenter::Topology topo = datacenter::Topology::from_racks(
      {datacenter::RackSpec{0, 0, 0, {0, 1}}});
  ServeConfig config = plain_config();
  config.server_count = 2;
  config.failure.enabled = true;
  config.failure.topology = &topo;
  datacenter::FailureEvent pdu;
  pdu.kind = datacenter::FailureKind::kPduFault;
  pdu.server = 0;  // feed id, not a server id
  pdu.at_s = 1.0;
  pdu.duration_s = 5.0;
  config.failure.script.push_back(pdu);

  ServeRequest first = request(1, 0.0);
  first.hold_s = 100.0;
  ServeRequest second = request(2, 0.2);
  second.hold_s = 100.0;
  const AllocationService service(db(), config);
  const ServeResult result = service.run({first, second});
  const ServeMetrics& m = result.metrics;
  EXPECT_EQ(m.placed, 2u);
  EXPECT_EQ(m.crashes, 2u) << "the fault expands to every server on feed 0";
  EXPECT_EQ(m.correlated_failures, 1u);
  EXPECT_EQ(m.groups_lost, 2u);
  EXPECT_EQ(m.groups_lost_correlated, 2u);
  EXPECT_EQ(m.restarts, 2u);
  const std::string json = serve_metrics_json(m);
  EXPECT_NE(json.find("\"correlated_failures\":1"), std::string::npos);
  EXPECT_NE(json.find("\"groups_lost_correlated\":2"), std::string::npos);
}

TEST(ServeDomainFaults, TorFaultsAreRejectedAtValidation) {
  // Serve has no progress model, so the simulator's stall-without-loss
  // ToR semantics cannot be honoured — both scripted and sampled ToR
  // faults must be refused up front, not silently dropped.
  const datacenter::Topology topo = datacenter::Topology::from_racks(
      {datacenter::RackSpec{0, 0, 0, {0, 1}}});
  ServeConfig config = plain_config();
  config.server_count = 2;
  config.failure.enabled = true;
  config.failure.topology = &topo;
  datacenter::FailureEvent tor;
  tor.kind = datacenter::FailureKind::kTorFault;
  tor.server = 0;
  tor.at_s = 1.0;
  tor.duration_s = 5.0;
  config.failure.script.push_back(tor);
  EXPECT_THROW(AllocationService(db(), config), std::invalid_argument);

  config.failure.script.clear();
  config.failure.domains.tor_mtbf_s = 1000.0;
  EXPECT_THROW(AllocationService(db(), config), std::invalid_argument);
}

TEST(ServeDomainFaults, SampledPduFaultsAreReproducible) {
  const datacenter::Topology topo = datacenter::make_synthetic_topology(
      datacenter::SyntheticTopologyConfig{8, 2, 2, 1});
  ServeConfig config = plain_config();
  config.failure.enabled = true;
  config.failure.topology = &topo;
  config.failure.domains.pdu_mtbf_s = 5.0;
  config.failure.domains.pdu_mttr_s = 2.0;
  std::vector<ServeRequest> stream;
  for (int i = 0; i < 20; ++i) {
    ServeRequest req = request(i + 1, i * 1.0);
    req.hold_s = 10.0;
    stream.push_back(req);
  }
  const AllocationService service(db(), config);
  const ServeResult a = service.run(stream);
  const ServeResult b = service.run(stream);
  EXPECT_EQ(serve_metrics_json(a.metrics), serve_metrics_json(b.metrics));
  EXPECT_EQ(render_decision_log(a.log), render_decision_log(b.log));
  EXPECT_GT(a.metrics.correlated_failures, 0u);
  EXPECT_GE(a.metrics.crashes, 2u * a.metrics.correlated_failures)
      << "every sampled pdu fault crashes a whole four-server feed";
}

TEST(MetricsJson, ByteStableAndCarriesReasonTable) {
  ServeConfig config = plain_config();
  const AllocationService service(db(), config);
  const ServeResult result = service.run({request(1, 0.0)});
  const std::string a = serve_metrics_json(result.metrics);
  const std::string b = serve_metrics_json(result.metrics);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"rejects_by_reason\""), std::string::npos);
  EXPECT_NE(a.find("\"no-feasible-server\""), std::string::npos);
  EXPECT_NE(a.find("\"time_in_mode_s\""), std::string::npos);
  EXPECT_NE(a.find("\"goodput_fraction\":1"), std::string::npos);
}

}  // namespace
}  // namespace aeva::serve
