/// The serve layer's core guarantee (docs/RESILIENCE.md): the whole
/// service — admission, breaker trips, retry jitter, crash recovery — is
/// bit-reproducible from (stream, config, seed). Thirty seeds, each run
/// twice under an overload config that trips the circuit breaker; the
/// rendered decision logs and metrics JSON must match byte for byte, and
/// different seeds must actually diverge (the comparison is not vacuous).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "serve/service.hpp"
#include "testing/shared_db.hpp"

namespace aeva::serve {
namespace {

/// Deliberately overloaded: a small fleet behind a short queue with tight
/// watermarks, so the ladder trips inside a ~120-request burst.
ServeConfig overload_config(std::uint64_t seed) {
  ServeConfig config;
  config.server_count = 8;
  config.queue.capacity = 12;
  config.health.queue_high = 8.0;
  config.health.queue_low = 2.0;
  config.health.trip_after = 2;
  config.health.rearm_after = 4;
  config.cost.base_s = 0.05;
  config.seed = seed;
  if (seed % 3 == 0) {
    // Every third seed also injects sampled crashes so recovery
    // (lost-group re-admission) is inside the determinism contract.
    config.failure.enabled = true;
    config.failure.mtbf_s = 120.0;
    config.failure.mttr_s = 20.0;
    config.failure.seed = seed;
  }
  return config;
}

std::vector<ServeRequest> overload_stream(std::uint64_t seed) {
  ArrivalStreamConfig stream;
  stream.count = 120;
  stream.rate_rps = 50.0;
  stream.hold_mean_s = 30.0;
  stream.deadline_slack_s = 8.0;
  return generate_stream(stream, seed);
}

TEST(ServeDeterminism, ThirtySeedsBitIdenticalIncludingBreakerTrips) {
  const modeldb::ModelDatabase& db = testing::shared_db();
  std::uint64_t total_trips = 0;
  std::uint64_t total_crashes = 0;
  std::string previous_log;
  bool seeds_diverged = false;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const std::vector<ServeRequest> stream = overload_stream(seed);
    const AllocationService service(db, overload_config(seed));
    const ServeResult a = service.run(stream);
    const ServeResult b = service.run(stream);

    const std::string log_a = render_decision_log(a.log);
    ASSERT_EQ(log_a, render_decision_log(b.log)) << "seed " << seed;
    ASSERT_EQ(serve_metrics_json(a.metrics), serve_metrics_json(b.metrics))
        << "seed " << seed;
    // A second service instance over the same inputs is equivalent too:
    // no hidden state survives construction.
    const AllocationService rebuilt(db, overload_config(seed));
    ASSERT_EQ(log_a, render_decision_log(rebuilt.run(stream).log))
        << "seed " << seed;

    total_trips += a.metrics.breaker_trips;
    total_crashes += a.metrics.crashes;
    if (!previous_log.empty() && previous_log != log_a) {
      seeds_diverged = true;
    }
    previous_log = log_a;
  }
  // The suite must have exercised the interesting machinery, not thirty
  // idle runs.
  EXPECT_GT(total_trips, 0u);
  EXPECT_GT(total_crashes, 0u);
  EXPECT_TRUE(seeds_diverged);
}

}  // namespace
}  // namespace aeva::serve
