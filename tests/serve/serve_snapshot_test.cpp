/// AEVASRV durability contract (docs/RESILIENCE.md): the serve snapshot
/// codec round-trips exactly, refuses corrupt / truncated / foreign
/// bytes with the typed snapshot errors, resume() rejects snapshots from
/// a different stream, config, or build, and a mid-run snapshot resumed
/// into a fresh service reproduces the uninterrupted run bit for bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "persist/serve_snapshot.hpp"
#include "persist/snapshot.hpp"
#include "serve/service.hpp"
#include "testing/shared_db.hpp"

namespace aeva::persist {
namespace {

/// A structurally busy snapshot: queue, retries, releases, repairs,
/// residents, a non-empty log — every codec section populated.
ServeSnapshot sample_snapshot() {
  ServeSnapshot s;
  s.stream_fingerprint = 0x1234abcd5678ef01ull;
  s.config_fingerprint = 0xfeedfacecafebeefull;
  s.now = 12.5;
  s.next_arrival = 7;
  s.next_seq = 42;
  s.next_vm_id = 19;
  s.next_snapshot_s = 20.0;
  s.depth_changed_s = 12.25;

  ServeServerState server;
  server.powered = true;
  server.alloc.cpu = 2;
  server.alloc.mem = 1;
  server.alloc.io = 0;
  s.servers.push_back(server);
  server.down = true;
  s.servers.push_back(server);

  ServeRequestState req;
  req.id = 9;
  req.arrival_s = 12.0;
  req.klass = 1;
  req.profile = 2;
  req.vm_count = 3;
  req.qos_time_s = 100.0;
  req.deadline_s = 30.0;
  req.hold_s = 60.0;
  req.release_at_s = 72.0;

  ServeQueuedState queued;
  queued.request = req;
  queued.enqueue_s = 12.1;
  queued.attempt = 1;
  s.queue.push_back(queued);

  ServeRetryState retry;
  retry.at_s = 14.0;
  retry.seq = 40;
  retry.attempt = 2;
  retry.request = req;
  s.retries.push_back(retry);

  ServeReleaseState release;
  release.at_s = 50.0;
  release.seq = 41;
  release.group_id = 4;
  s.releases.push_back(release);

  ServeRepairState repair;
  repair.at_s = 60.0;
  repair.seq = 39;
  repair.server = 1;
  s.repairs.push_back(repair);

  ServeResidentState resident;
  resident.group_id = 4;
  resident.klass = 2;
  resident.profile = 0;
  resident.qos_time_s = 90.0;
  resident.release_s = 50.0;
  resident.servers = {0, 0};
  s.residents.push_back(resident);

  s.health.rung = 1;
  s.health.breach_streak = 1;
  s.health.healthy_streak = 0;
  s.health.latency_ewma_s = 0.125;
  s.health.mode_since_s = 10.0;

  s.retry_rng.words = {1, 2, 3, 4};
  s.failure.script_next = 1;
  util::Rng::State stream_state;
  stream_state.words = {5, 6, 7, 8};
  s.failure.streams = {stream_state, stream_state};
  s.failure.sampled_next = {70.0, 80.0};
  util::Rng::State domain_state;
  domain_state.words = {9, 10, 11, 12};
  s.failure.pdu_streams = {domain_state};
  s.failure.pdu_next = {120.0};
  s.failure.tor_streams = {domain_state, domain_state};
  s.failure.tor_next = {60.0, 75.5};

  s.latency_stats.count = 5;
  s.latency_stats.mean = 0.04;
  s.wait_stats.count = 5;
  s.wait_stats.mean = 0.2;

  s.metrics.offered = 9;
  s.metrics.placed = 5;
  s.metrics.correlated_failures = 2;
  s.metrics.groups_lost_correlated = 1;
  s.metrics.rejects_by_reason.assign(core::kRejectReasonCount, 0);
  s.metrics.rejects_by_reason[2] = 3;
  s.metrics.rejects_by_reason[static_cast<std::size_t>(
      core::RejectReason::kSpreadInfeasible)] = 4;
  s.metrics.time_in_mode_s = {10.0, 2.5, 0.0};
  s.metrics.queue_depth_integral = 4.75;
  s.metrics.peak_queue_depth = 6.0;

  ServeDecisionState rec;
  rec.t = 11.0;
  rec.request_id = 3;
  rec.attempt = 0;
  rec.klass = 0;
  rec.event = 0;
  rec.mode = 1;
  rec.path = 1;
  rec.reason = 0;
  rec.wait_s = 0.5;
  rec.latency_s = 0.05;
  rec.retry_at_s = -1.0;
  rec.servers = {0};
  s.log.push_back(rec);
  return s;
}

void expect_equal(const ServeSnapshot& a, const ServeSnapshot& b) {
  EXPECT_EQ(a.stream_fingerprint, b.stream_fingerprint);
  EXPECT_EQ(a.config_fingerprint, b.config_fingerprint);
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.next_arrival, b.next_arrival);
  EXPECT_EQ(a.next_seq, b.next_seq);
  EXPECT_EQ(a.next_vm_id, b.next_vm_id);
  EXPECT_EQ(a.next_snapshot_s, b.next_snapshot_s);
  EXPECT_EQ(a.depth_changed_s, b.depth_changed_s);
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t i = 0; i < a.servers.size(); ++i) {
    EXPECT_EQ(a.servers[i].powered, b.servers[i].powered);
    EXPECT_EQ(a.servers[i].down, b.servers[i].down);
    EXPECT_EQ(a.servers[i].alloc.cpu, b.servers[i].alloc.cpu);
    EXPECT_EQ(a.servers[i].alloc.mem, b.servers[i].alloc.mem);
  }
  ASSERT_EQ(a.queue.size(), b.queue.size());
  EXPECT_EQ(a.queue[0].request.id, b.queue[0].request.id);
  EXPECT_EQ(a.queue[0].request.deadline_s, b.queue[0].request.deadline_s);
  EXPECT_EQ(a.queue[0].attempt, b.queue[0].attempt);
  ASSERT_EQ(a.retries.size(), b.retries.size());
  EXPECT_EQ(a.retries[0].at_s, b.retries[0].at_s);
  EXPECT_EQ(a.retries[0].seq, b.retries[0].seq);
  ASSERT_EQ(a.releases.size(), b.releases.size());
  EXPECT_EQ(a.releases[0].group_id, b.releases[0].group_id);
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  EXPECT_EQ(a.repairs[0].server, b.repairs[0].server);
  ASSERT_EQ(a.residents.size(), b.residents.size());
  EXPECT_EQ(a.residents[0].servers, b.residents[0].servers);
  EXPECT_EQ(a.health.rung, b.health.rung);
  EXPECT_EQ(a.health.latency_ewma_s, b.health.latency_ewma_s);
  EXPECT_EQ(a.retry_rng.words, b.retry_rng.words);
  EXPECT_EQ(a.failure.script_next, b.failure.script_next);
  ASSERT_EQ(a.failure.streams.size(), b.failure.streams.size());
  EXPECT_EQ(a.failure.streams[0].words, b.failure.streams[0].words);
  EXPECT_EQ(a.failure.sampled_next, b.failure.sampled_next);
  ASSERT_EQ(a.failure.pdu_streams.size(), b.failure.pdu_streams.size());
  EXPECT_EQ(a.failure.pdu_streams[0].words, b.failure.pdu_streams[0].words);
  EXPECT_EQ(a.failure.pdu_next, b.failure.pdu_next);
  ASSERT_EQ(a.failure.tor_streams.size(), b.failure.tor_streams.size());
  EXPECT_EQ(a.failure.tor_streams[1].words, b.failure.tor_streams[1].words);
  EXPECT_EQ(a.failure.tor_next, b.failure.tor_next);
  EXPECT_EQ(a.metrics.placed, b.metrics.placed);
  EXPECT_EQ(a.metrics.correlated_failures, b.metrics.correlated_failures);
  EXPECT_EQ(a.metrics.groups_lost_correlated,
            b.metrics.groups_lost_correlated);
  EXPECT_EQ(a.metrics.rejects_by_reason, b.metrics.rejects_by_reason);
  EXPECT_EQ(a.metrics.time_in_mode_s, b.metrics.time_in_mode_s);
  ASSERT_EQ(a.log.size(), b.log.size());
  EXPECT_EQ(a.log[0].request_id, b.log[0].request_id);
  EXPECT_EQ(a.log[0].servers, b.log[0].servers);
}

TEST(ServeSnapshotCodec, RoundTripsExactly) {
  const ServeSnapshot original = sample_snapshot();
  const std::string bytes = encode_serve_snapshot(original);
  expect_equal(original, decode_serve_snapshot(bytes));
  // Encoding is itself deterministic.
  EXPECT_EQ(bytes, encode_serve_snapshot(original));
}

TEST(ServeSnapshotCodec, CrcCatchesEveryStrategicByteFlip) {
  const std::string bytes = encode_serve_snapshot(sample_snapshot());
  // Flip a byte in the middle and at the end of the payload: both must
  // fail the checksum, never decode to garbage.
  for (const std::size_t pos : {bytes.size() / 2, bytes.size() - 1}) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    EXPECT_THROW(decode_serve_snapshot(corrupt), SnapshotFormatError)
        << "flipped byte " << pos;
  }
}

TEST(ServeSnapshotCodec, RefusesTruncationAndTrailingBytes) {
  const std::string bytes = encode_serve_snapshot(sample_snapshot());
  for (const std::size_t keep : {std::size_t{0}, std::size_t{4},
                                 std::size_t{17}, bytes.size() - 1}) {
    EXPECT_THROW(decode_serve_snapshot(bytes.substr(0, keep)),
                 SnapshotFormatError)
        << "kept " << keep << " bytes";
  }
  EXPECT_THROW(decode_serve_snapshot(bytes + '\0'), SnapshotFormatError);
}

TEST(ServeSnapshotCodec, RefusesForeignMagicAndFutureVersion) {
  std::string bytes = encode_serve_snapshot(sample_snapshot());
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_THROW(decode_serve_snapshot(wrong_magic), SnapshotFormatError);

  // The version u32 sits right after the 8-byte magic, outside the
  // payload checksum: an exact-match policy refuses a future version
  // before any payload parsing.
  std::string future = bytes;
  future[8] = static_cast<char>(kServeSnapshotVersion + 1);
  EXPECT_THROW(decode_serve_snapshot(future), SnapshotVersionError);
}

TEST(ServeSnapshotCodec, RejectsOutOfRangeEnumsInsidePayload) {
  ServeSnapshot bad = sample_snapshot();
  bad.log[0].event = 99;  // no such DecisionEvent
  const std::string bytes = encode_serve_snapshot(bad);
  EXPECT_THROW(decode_serve_snapshot(bytes), SnapshotFormatError);
}

TEST(ServeSnapshotFile, AtomicWriteReadBack) {
  const std::string path = "serve_snapshot_roundtrip.aevasrv";
  const ServeSnapshot original = sample_snapshot();
  write_serve_snapshot_file(path, original);
  expect_equal(original, read_serve_snapshot_file(path));
  EXPECT_THROW(read_serve_snapshot_file("no/such/dir/snap.aevasrv"),
               SnapshotIoError);
}

}  // namespace
}  // namespace aeva::persist

namespace aeva::serve {
namespace {

std::vector<ServeRequest> resume_stream() {
  ArrivalStreamConfig stream;
  stream.count = 150;
  stream.rate_rps = 40.0;
  stream.hold_mean_s = 20.0;
  stream.deadline_slack_s = 6.0;
  return generate_stream(stream, 11);
}

/// Overloaded enough to keep a queue, retries, and residents alive at the
/// snapshot instants; scripted crash so recovery state is captured too.
ServeConfig resume_config() {
  ServeConfig config;
  config.server_count = 6;
  config.queue.capacity = 16;
  config.health.queue_high = 10.0;
  config.health.queue_low = 2.0;
  config.health.trip_after = 2;
  config.cost.base_s = 0.04;
  config.failure.enabled = true;
  datacenter::FailureEvent crash;
  crash.kind = datacenter::FailureKind::kCrash;
  crash.server = 2;
  crash.at_s = 1.5;
  crash.duration_s = 1.5;  // repaired at t=3
  config.failure.script.push_back(crash);
  return config;
}

TEST(ServeResume, MidRunSnapshotResumesBitIdentically) {
  const modeldb::ModelDatabase& db = testing::shared_db();
  const std::vector<ServeRequest> stream = resume_stream();

  ServeConfig reference_config = resume_config();
  const AllocationService reference(db, reference_config);
  const ServeResult full = reference.run(stream);

  ServeConfig snapshotting = resume_config();
  snapshotting.snapshot.every_s = 0.5;
  std::vector<persist::ServeSnapshot> taken;
  snapshotting.snapshot.hook =
      [&taken](const persist::ServeSnapshot& snap) { taken.push_back(snap); };
  const AllocationService recorder(db, snapshotting);
  const ServeResult recorded = recorder.run(stream);
  ASSERT_GE(taken.size(), 3u);
  // Snapshotting itself never changes behaviour.
  ASSERT_EQ(render_decision_log(full.log), render_decision_log(recorded.log));

  // Resume from an early, a middle, and the last snapshot: each completed
  // run must equal the uninterrupted one bit for bit.
  const std::size_t picks[] = {0, taken.size() / 2, taken.size() - 1};
  for (const std::size_t pick : picks) {
    const ServeResult resumed = reference.resume(stream, taken[pick]);
    EXPECT_EQ(render_decision_log(full.log),
              render_decision_log(resumed.log))
        << "resumed from snapshot " << pick << " (t=" << taken[pick].now
        << ")";
    EXPECT_EQ(serve_metrics_json(full.metrics),
              serve_metrics_json(resumed.metrics))
        << "resumed from snapshot " << pick;
  }
}

TEST(ServeResume, RefusesForeignStreamConfigOrBuild) {
  const modeldb::ModelDatabase& db = testing::shared_db();
  const std::vector<ServeRequest> stream = resume_stream();

  ServeConfig config = resume_config();
  config.snapshot.every_s = 0.5;
  std::optional<persist::ServeSnapshot> first;
  config.snapshot.hook = [&first](const persist::ServeSnapshot& snap) {
    if (!first.has_value()) {
      first = snap;
    }
  };
  const AllocationService service(db, config);
  (void)service.run(stream);
  ASSERT_TRUE(first.has_value());

  // A different stream: same config, different arrivals.
  std::vector<ServeRequest> other = stream;
  other[0].arrival_s += 1e-9;
  EXPECT_THROW((void)service.resume(other, *first),
               persist::SnapshotMismatchError);

  // A behaviourally different config.
  ServeConfig changed = resume_config();
  changed.queue.capacity = 17;
  const AllocationService other_service(db, changed);
  EXPECT_THROW((void)other_service.resume(stream, *first),
               persist::SnapshotMismatchError);

  // A reject reason unknown to this build: the persist codec accepts it
  // (its bound is the wire format's, not the enum's), the service does
  // not.
  persist::ServeSnapshot alien = *first;
  alien.log.emplace_back();
  alien.log.back().reason =
      static_cast<std::int32_t>(core::kRejectReasonCount);
  const persist::ServeSnapshot reparsed =
      persist::decode_serve_snapshot(persist::encode_serve_snapshot(alien));
  EXPECT_THROW((void)service.resume(stream, reparsed),
               persist::SnapshotMismatchError);
}

}  // namespace
}  // namespace aeva::serve
