#include "workload/profile.hpp"

#include <gtest/gtest.h>

namespace aeva::workload {
namespace {

TEST(ProfileClass, NamesRoundTrip) {
  for (const ProfileClass profile : kAllProfileClasses) {
    const auto parsed = parse_profile_class(to_string(profile));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, profile);
  }
}

TEST(ProfileClass, ParseRejectsUnknown) {
  EXPECT_FALSE(parse_profile_class("cpu").has_value());  // case-sensitive
  EXPECT_FALSE(parse_profile_class("").has_value());
  EXPECT_FALSE(parse_profile_class("DISK").has_value());
}

TEST(Subsystem, Names) {
  EXPECT_EQ(to_string(Subsystem::kCpu), "cpu");
  EXPECT_EQ(to_string(Subsystem::kMemory), "memory");
  EXPECT_EQ(to_string(Subsystem::kDisk), "disk");
  EXPECT_EQ(to_string(Subsystem::kNetwork), "network");
}

TEST(ClassCounts, TotalAndAccessors) {
  ClassCounts counts{2, 3, 4};
  EXPECT_EQ(counts.total(), 9);
  EXPECT_EQ(counts.of(ProfileClass::kCpu), 2);
  EXPECT_EQ(counts.of(ProfileClass::kMem), 3);
  EXPECT_EQ(counts.of(ProfileClass::kIo), 4);
}

TEST(ClassCounts, MutableAccessor) {
  ClassCounts counts;
  ++counts.of(ProfileClass::kMem);
  counts.of(ProfileClass::kIo) = 5;
  EXPECT_EQ(counts.mem, 1);
  EXPECT_EQ(counts.io, 5);
  EXPECT_EQ(counts.cpu, 0);
}

TEST(ClassCounts, Arithmetic) {
  const ClassCounts a{1, 2, 3};
  const ClassCounts b{4, 5, 6};
  EXPECT_EQ(a + b, (ClassCounts{5, 7, 9}));
  EXPECT_EQ(b - a, (ClassCounts{3, 3, 3}));
}

TEST(ClassCounts, EqualityAndOrdering) {
  EXPECT_EQ((ClassCounts{1, 2, 3}), (ClassCounts{1, 2, 3}));
  EXPECT_FALSE((ClassCounts{1, 2, 3}) == (ClassCounts{1, 2, 4}));
  // Lexicographic (cpu, mem, io): the database sort key.
  EXPECT_LT((ClassCounts{0, 9, 9}), (ClassCounts{1, 0, 0}));
  EXPECT_LT((ClassCounts{1, 0, 9}), (ClassCounts{1, 1, 0}));
  EXPECT_LT((ClassCounts{1, 1, 0}), (ClassCounts{1, 1, 1}));
  EXPECT_FALSE((ClassCounts{1, 1, 1}) < (ClassCounts{1, 1, 1}));
}

TEST(ClassCounts, DefaultIsEmpty) {
  const ClassCounts counts;
  EXPECT_EQ(counts.total(), 0);
}

}  // namespace
}  // namespace aeva::workload
