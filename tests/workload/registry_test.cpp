#include "workload/registry.hpp"

#include <gtest/gtest.h>

#include <set>

namespace aeva::workload {
namespace {

TEST(Registry, AllBuiltinsValidate) {
  for (const AppSpec& app : builtin_apps()) {
    EXPECT_NO_THROW(app.validate()) << app.name;
  }
}

TEST(Registry, ContainsThePaperBenchmarks) {
  const std::set<std::string> names = [] {
    std::set<std::string> out;
    for (const std::string& n : builtin_app_names()) {
      out.insert(n);
    }
    return out;
  }();
  // HPL Linpack, FFTW (CPU); sysbench (memory); b_eff_io, bonnie++ (I/O).
  EXPECT_TRUE(names.count("linpack"));
  EXPECT_TRUE(names.count("fftw"));
  EXPECT_TRUE(names.count("sysbench"));
  EXPECT_TRUE(names.count("beffio"));
  EXPECT_TRUE(names.count("bonnie"));
}

TEST(Registry, NamesAreUnique) {
  const auto names = builtin_app_names();
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(Registry, FindAppReturnsNamedSpec) {
  EXPECT_EQ(find_app("fftw").name, "fftw");
  EXPECT_EQ(find_app("fftw").profile, ProfileClass::kCpu);
}

TEST(Registry, FindAppRejectsUnknown) {
  EXPECT_THROW((void)find_app("no-such-benchmark"), std::invalid_argument);
  EXPECT_THROW((void)find_app(""), std::invalid_argument);
}

TEST(Registry, CanonicalAppsMatchTheirClass) {
  for (const ProfileClass profile : kAllProfileClasses) {
    EXPECT_EQ(canonical_app(profile).profile, profile)
        << to_string(profile);
  }
}

TEST(Registry, FftwHasLongInitializationPhase) {
  // "single thread, with long initialization phase" (Sect. III-B).
  const AppSpec& fftw = find_app("fftw");
  ASSERT_GE(fftw.phases.size(), 2u);
  EXPECT_EQ(fftw.phases.front().name, "init");
  EXPECT_GE(fftw.phases.front().nominal_s, 60.0);
}

TEST(Registry, MpiComputeAlternatesComputeAndExchange) {
  const AppSpec& app = find_app("mpicompute");
  ASSERT_GE(app.phases.size(), 4u);
  // Alternating pattern: compute phases demand CPU, exchange phases demand
  // network.
  for (std::size_t i = 0; i < app.phases.size(); i += 2) {
    EXPECT_GT(app.phases[i].demand.cpu_cores, 0.5) << i;
    EXPECT_GT(app.phases[i + 1].demand.net_mbps, 0.0) << i;
  }
}

TEST(Registry, IoBenchmarksDemandDisk) {
  for (const char* name : {"beffio", "bonnie"}) {
    const Demand avg = find_app(name).average_demand();
    EXPECT_GT(avg.disk_mbps, 25.0) << name;
  }
}

TEST(Registry, MemoryBenchmarksDemandBandwidth) {
  for (const char* name : {"sysbench", "stream"}) {
    const Demand avg = find_app(name).average_demand();
    EXPECT_GE(avg.mem_bw_share, 0.15) << name;
  }
}

TEST(Registry, ReturnsStableReferences) {
  const AppSpec& a = find_app("linpack");
  const AppSpec& b = find_app("linpack");
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace aeva::workload
