#include "workload/app_spec.hpp"

#include <gtest/gtest.h>

namespace aeva::workload {
namespace {

AppSpec two_phase_app() {
  AppSpec app;
  app.name = "test-app";
  app.profile = ProfileClass::kCpu;
  app.mem_footprint_mb = 256.0;
  app.phases = {
      Phase{"a", Demand{0.5, 0.1, 10.0, 0.0}, 100.0},
      Phase{"b", Demand{1.0, 0.3, 0.0, 20.0}, 300.0},
  };
  return app;
}

TEST(AppSpec, NominalRuntimeSumsPhases) {
  EXPECT_DOUBLE_EQ(two_phase_app().nominal_runtime_s(), 400.0);
}

TEST(AppSpec, AverageDemandIsTimeWeighted) {
  const Demand avg = two_phase_app().average_demand();
  EXPECT_DOUBLE_EQ(avg.cpu_cores, 0.25 * 0.5 + 0.75 * 1.0);
  EXPECT_DOUBLE_EQ(avg.mem_bw_share, 0.25 * 0.1 + 0.75 * 0.3);
  EXPECT_DOUBLE_EQ(avg.disk_mbps, 0.25 * 10.0);
  EXPECT_DOUBLE_EQ(avg.net_mbps, 0.75 * 20.0);
}

TEST(AppSpec, ScaledRuntimeMultipliesPhases) {
  const AppSpec scaled = two_phase_app().scaled_runtime(2.5);
  EXPECT_DOUBLE_EQ(scaled.nominal_runtime_s(), 1000.0);
  EXPECT_DOUBLE_EQ(scaled.phases[0].nominal_s, 250.0);
  // Demands are untouched.
  EXPECT_DOUBLE_EQ(scaled.phases[1].demand.cpu_cores, 1.0);
  EXPECT_EQ(scaled.name, "test-app");
}

TEST(AppSpec, ScaledRuntimeRejectsNonPositive) {
  EXPECT_THROW((void)two_phase_app().scaled_runtime(0.0),
               std::invalid_argument);
  EXPECT_THROW((void)two_phase_app().scaled_runtime(-1.0),
               std::invalid_argument);
}

TEST(AppSpec, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(two_phase_app().validate());
}

TEST(AppSpec, ValidateRejectsEmptyName) {
  AppSpec app = two_phase_app();
  app.name.clear();
  EXPECT_THROW(app.validate(), std::invalid_argument);
}

TEST(AppSpec, ValidateRejectsNoPhases) {
  AppSpec app = two_phase_app();
  app.phases.clear();
  EXPECT_THROW(app.validate(), std::invalid_argument);
}

TEST(AppSpec, ValidateRejectsNonPositivePhaseDuration) {
  AppSpec app = two_phase_app();
  app.phases[0].nominal_s = 0.0;
  EXPECT_THROW(app.validate(), std::invalid_argument);
}

TEST(AppSpec, ValidateRejectsCpuDemandAboveOneCore) {
  // Single process per VM: vCPU demand cannot exceed one core.
  AppSpec app = two_phase_app();
  app.phases[1].demand.cpu_cores = 1.5;
  EXPECT_THROW(app.validate(), std::invalid_argument);
}

TEST(AppSpec, ValidateRejectsNegativeDemands) {
  AppSpec app = two_phase_app();
  app.phases[0].demand.disk_mbps = -1.0;
  EXPECT_THROW(app.validate(), std::invalid_argument);

  app = two_phase_app();
  app.phases[0].demand.net_mbps = -0.5;
  EXPECT_THROW(app.validate(), std::invalid_argument);

  app = two_phase_app();
  app.phases[0].demand.mem_bw_share = 1.5;
  EXPECT_THROW(app.validate(), std::invalid_argument);

  app = two_phase_app();
  app.mem_footprint_mb = -1.0;
  EXPECT_THROW(app.validate(), std::invalid_argument);
}

TEST(AppSpec, AverageDemandRequiresPositiveRuntime) {
  AppSpec app;
  app.name = "degenerate";
  EXPECT_THROW((void)app.average_demand(), std::invalid_argument);
}

}  // namespace
}  // namespace aeva::workload
