#include <gtest/gtest.h>

#include <memory>

#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "testing/shared_db.hpp"
#include "thermal/thermal_guard.hpp"
#include "thermal/thermal_model.hpp"

namespace aeva::thermal {
namespace {

using core::ServerState;
using core::VmRequest;
using workload::ClassCounts;
using workload::ProfileClass;

TEST(ThermalMap, IdleRoomSitsAtColdAisleTemperature) {
  const ThermalMap map(4, ThermalConfig{});
  const std::vector<double> inlets = map.inlet_temps({0.0, 0.0, 0.0, 0.0});
  for (const double t : inlets) {
    EXPECT_DOUBLE_EQ(t, ThermalConfig{}.cold_aisle_c);
  }
}

TEST(ThermalMap, NoSelfHeating) {
  // A single hot server in an otherwise idle row does not raise its own
  // inlet (no direct self-recirculation in the model).
  const ThermalMap map(3, ThermalConfig{});
  const std::vector<double> inlets = map.inlet_temps({0.0, 400.0, 0.0});
  EXPECT_DOUBLE_EQ(inlets[1], ThermalConfig{}.cold_aisle_c);
  EXPECT_GT(inlets[0], ThermalConfig{}.cold_aisle_c);
  EXPECT_GT(inlets[2], ThermalConfig{}.cold_aisle_c);
}

TEST(ThermalMap, RecirculationDecaysWithDistance) {
  const ThermalMap map(5, ThermalConfig{});
  const std::vector<double> inlets =
      map.inlet_temps({0.0, 0.0, 0.0, 0.0, 500.0});
  // Closer neighbours of the hot server run hotter.
  EXPECT_GT(inlets[3], inlets[2]);
  EXPECT_GT(inlets[2], inlets[1]);
  EXPECT_GT(inlets[1], inlets[0]);
}

TEST(ThermalMap, InletRiseLinearInPower) {
  ThermalConfig config;
  const ThermalMap map(2, config);
  const double rise1 =
      map.inlet_temps({200.0, 0.0})[1] - config.cold_aisle_c;
  const double rise2 =
      map.inlet_temps({400.0, 0.0})[1] - config.cold_aisle_c;
  EXPECT_NEAR(rise2, 2.0 * rise1, 1e-12);
}

TEST(ThermalMap, PeakInletFindsHotspot) {
  const ThermalMap map(4, ThermalConfig{});
  const std::vector<double> power = {500.0, 500.0, 0.0, 0.0};
  const std::vector<double> inlets = map.inlet_temps(power);
  EXPECT_DOUBLE_EQ(map.peak_inlet_c(power),
                   *std::max_element(inlets.begin(), inlets.end()));
}

TEST(ThermalMap, CoolingPowerFollowsCop) {
  ThermalConfig config;
  config.crac_cop = 4.0;
  const ThermalMap map(1, config);
  EXPECT_DOUBLE_EQ(map.cooling_power_w(1000.0), 250.0);
  EXPECT_THROW((void)map.cooling_power_w(-1.0), std::invalid_argument);
}

TEST(ThermalMap, RejectsBadInputs) {
  EXPECT_THROW(ThermalMap(0, ThermalConfig{}), std::invalid_argument);
  ThermalConfig bad;
  bad.recirculation = 1.0;
  EXPECT_THROW(ThermalMap(2, bad), std::invalid_argument);
  bad = ThermalConfig{};
  bad.crac_cop = 0.0;
  EXPECT_THROW(ThermalMap(2, bad), std::invalid_argument);
  bad = ThermalConfig{};
  bad.inlet_limit_c = bad.cold_aisle_c;
  EXPECT_THROW(ThermalMap(2, bad), std::invalid_argument);
  const ThermalMap map(2, ThermalConfig{});
  EXPECT_THROW((void)map.inlet_temps({1.0}), std::invalid_argument);
}

class GuardFixture : public ::testing::Test {
 protected:
  const modeldb::ModelDatabase& db_ = testing::shared_db();
  ThermalMap map_{6, ThermalConfig{}};

  ThermalGuardAllocator make_guard(GuardConfig config = {}) {
    core::ProactiveConfig pc;
    pc.alpha = 0.0;
    return ThermalGuardAllocator(
        std::make_unique<core::ProactiveAllocator>(db_, pc), db_, map_,
        config);
  }
};

TEST_F(GuardFixture, NameWrapsInner) {
  EXPECT_EQ(make_guard().name(), "TG(PA-0)");
}

TEST_F(GuardFixture, PredictsInletsFromAllocations) {
  std::vector<ServerState> servers;
  for (int s = 0; s < 6; ++s) {
    servers.push_back(ServerState{s, ClassCounts{}, false, 0});
  }
  servers[2].allocated = ClassCounts{4, 0, 0};
  servers[2].powered = true;
  const ThermalGuardAllocator guard = make_guard();
  const std::vector<double> inlets = guard.predicted_inlets(servers);
  // Neighbours of the busy server are warmer than the far end.
  EXPECT_GT(inlets[1], inlets[5]);
  EXPECT_GT(inlets[3], inlets[5]);
}

TEST_F(GuardFixture, MasksHotNeighbourhood) {
  // Servers 0-2 run hot mixes; with a tight soft limit the guard must
  // steer the next VM to the cool end of the row.
  GuardConfig config;
  config.soft_limit_c = 20.0;  // aggressive masking
  const ThermalGuardAllocator guard = make_guard(config);

  std::vector<ServerState> servers;
  for (int s = 0; s < 6; ++s) {
    servers.push_back(ServerState{s, ClassCounts{}, false, 0});
  }
  for (int s = 0; s < 3; ++s) {
    servers[static_cast<std::size_t>(s)].allocated = ClassCounts{4, 0, 0};
    servers[static_cast<std::size_t>(s)].powered = true;
  }
  std::vector<VmRequest> vms = {VmRequest{1, ProfileClass::kIo, 1e12}};
  const auto result = guard.allocate(vms, servers);
  ASSERT_TRUE(result.complete);
  EXPECT_GE(result.placements[0].server_id, 4)
      << "guard should avoid the hot zone";
}

TEST_F(GuardFixture, FallsBackWhenEverythingIsHot) {
  GuardConfig config;
  config.soft_limit_c = 18.5;  // below any loaded prediction
  const ThermalGuardAllocator guard = make_guard(config);
  std::vector<ServerState> servers;
  for (int s = 0; s < 6; ++s) {
    servers.push_back(
        ServerState{s, ClassCounts{1, 1, 0}, true, 0});
  }
  std::vector<VmRequest> vms = {VmRequest{1, ProfileClass::kCpu, 1e12}};
  const auto result = guard.allocate(vms, servers);
  EXPECT_TRUE(result.complete) << "guard must not starve the queue";
}

TEST_F(GuardFixture, RejectsBadConstruction) {
  EXPECT_THROW(ThermalGuardAllocator(nullptr, db_, map_),
               std::invalid_argument);
  GuardConfig bad;
  bad.soft_limit_c = 10.0;  // below the cold aisle
  core::ProactiveConfig pc;
  EXPECT_THROW(ThermalGuardAllocator(
                   std::make_unique<core::ProactiveAllocator>(db_, pc), db_,
                   map_, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace aeva::thermal
