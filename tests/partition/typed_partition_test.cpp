#include "partition/typed_partition.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "partition/set_partition.hpp"

namespace aeva::partition {
namespace {

using workload::ClassCounts;

std::size_t count_all(ClassCounts total) {
  return count_typed_partitions(
      total, [](const ClassCounts&) { return true; });
}

TEST(TypedPartition, SingleVm) {
  EXPECT_EQ(count_all({1, 0, 0}), 1u);
}

TEST(TypedPartition, HomogeneousCountsAreIntegerPartitions) {
  // Partitions of a set of n interchangeable items = partitions of the
  // integer n: p(1..6) = 1, 2, 3, 5, 7, 11.
  const std::size_t expected[] = {1, 2, 3, 5, 7, 11};
  for (int n = 1; n <= 6; ++n) {
    EXPECT_EQ(count_all({n, 0, 0}),
              expected[static_cast<std::size_t>(n) - 1])
        << n;
    EXPECT_EQ(count_all({0, n, 0}),
              expected[static_cast<std::size_t>(n) - 1])
        << n;
  }
}

TEST(TypedPartition, MixedPairCounts) {
  // (1,1,0): {both together} or {separate} = 2.
  EXPECT_EQ(count_all({1, 1, 0}), 2u);
  // (1,1,1): partitions of a 3-set with all-distinct elements = B(3) = 5.
  EXPECT_EQ(count_all({1, 1, 1}), 5u);
}

TEST(TypedPartition, BlocksSumToTotal) {
  const ClassCounts total{2, 3, 1};
  (void)for_each_typed_partition(total, [&](const TypedPartition& blocks) {
    ClassCounts sum;
    for (const ClassCounts& block : blocks) {
      EXPECT_GT(block.total(), 0);
      sum = sum + block;
    }
    EXPECT_EQ(sum, total);
    return true;
  });
}

TEST(TypedPartition, CanonicalOrderIsNonIncreasing) {
  (void)for_each_typed_partition({2, 2, 2}, [](const TypedPartition& blocks) {
    for (std::size_t i = 1; i < blocks.size(); ++i) {
      EXPECT_FALSE(blocks[i - 1] < blocks[i]) << "blocks out of order";
    }
    return true;
  });
}

TEST(TypedPartition, NoDuplicatePartitions) {
  std::set<std::vector<std::tuple<int, int, int>>> seen;
  (void)for_each_typed_partition({3, 2, 1}, [&](const TypedPartition& blocks) {
    std::vector<std::tuple<int, int, int>> key;
    for (const ClassCounts& block : blocks) {
      key.emplace_back(block.cpu, block.mem, block.io);
    }
    EXPECT_TRUE(seen.insert(key).second) << "duplicate typed partition";
    return true;
  });
}

TEST(TypedPartition, MatchesQuotientOfSetPartitions) {
  // Ground truth: enumerate all set partitions of a labelled set whose
  // elements carry classes, map each to its canonical typed signature, and
  // count distinct signatures. The typed enumerator must agree exactly.
  const ClassCounts total{2, 2, 1};
  std::vector<workload::ProfileClass> labels;
  for (int i = 0; i < total.cpu; ++i)
    labels.push_back(workload::ProfileClass::kCpu);
  for (int i = 0; i < total.mem; ++i)
    labels.push_back(workload::ProfileClass::kMem);
  for (int i = 0; i < total.io; ++i)
    labels.push_back(workload::ProfileClass::kIo);

  std::set<std::vector<std::tuple<int, int, int>>> signatures;
  (void)for_each_partition(total.total(), [&](const Partition& p) {
    TypedPartition typed;
    for (const Block& block : p) {
      ClassCounts counts;
      for (const int e : block) {
        ++counts.of(labels[static_cast<std::size_t>(e)]);
      }
      typed.push_back(counts);
    }
    typed = canonicalize(std::move(typed));
    std::vector<std::tuple<int, int, int>> sig;
    for (const ClassCounts& c : typed) {
      sig.emplace_back(c.cpu, c.mem, c.io);
    }
    signatures.insert(std::move(sig));
    return true;
  });

  EXPECT_EQ(count_all(total), signatures.size());
}

TEST(TypedPartition, BlockFilterPrunes) {
  // Only singleton blocks admitted: exactly one partition remains.
  const std::size_t count = count_typed_partitions(
      {2, 2, 0}, [](const ClassCounts& block) { return block.total() == 1; });
  EXPECT_EQ(count, 1u);
}

TEST(TypedPartition, BlockFilterByCapacity) {
  // Blocks of at most 2 VMs.
  std::size_t max_block = 0;
  (void)for_each_typed_partition(
      {3, 1, 0},
      [](const ClassCounts& block) { return block.total() <= 2; },
      [&](const TypedPartition& blocks) {
        for (const ClassCounts& b : blocks) {
          max_block = std::max(max_block, static_cast<std::size_t>(b.total()));
        }
        return true;
      });
  EXPECT_LE(max_block, 2u);
}

TEST(TypedPartition, ImpossibleFilterYieldsNothing) {
  const std::size_t count = count_typed_partitions(
      {1, 1, 0}, [](const ClassCounts&) { return false; });
  EXPECT_EQ(count, 0u);
}

TEST(TypedPartition, EarlyStopCountsPartials) {
  std::size_t visited = 0;
  const std::size_t reported = for_each_typed_partition(
      {3, 3, 0}, [&](const TypedPartition&) {
        ++visited;
        return visited < 3;
      });
  EXPECT_EQ(visited, 3u);
  EXPECT_EQ(reported, 3u);
}

TEST(TypedPartition, MaxBlocksPrunes) {
  // Partitions of 4 interchangeable items: 5 total; with at most 2 blocks:
  // {4}, {3,1}, {2,2} → 3.
  const auto count_with = [](std::size_t max_blocks) {
    return for_each_typed_partition(
        ClassCounts{4, 0, 0}, [](const ClassCounts&) { return true; },
        max_blocks, [](const TypedPartition&) { return true; });
  };
  EXPECT_EQ(count_with(1), 1u);
  EXPECT_EQ(count_with(2), 3u);
  EXPECT_EQ(count_with(4), 5u);
  EXPECT_EQ(count_with(99), 5u);
}

TEST(TypedPartition, MaxBlocksRespectedInVisitor) {
  (void)for_each_typed_partition(
      ClassCounts{2, 2, 1}, [](const ClassCounts&) { return true; }, 2,
      [](const TypedPartition& blocks) {
        EXPECT_LE(blocks.size(), 2u);
        return true;
      });
}

TEST(TypedPartition, RejectsBadInput) {
  EXPECT_THROW(count_all({0, 0, 0}), std::invalid_argument);
  EXPECT_THROW((void)for_each_typed_partition(
                   ClassCounts{1, 0, 0},
                   [](const ClassCounts&) { return true; }, 0,
                   [](const TypedPartition&) { return true; }),
               std::invalid_argument);
  EXPECT_THROW(count_all({-1, 2, 0}), std::invalid_argument);
  EXPECT_THROW((void)for_each_typed_partition({1, 0, 0}, nullptr),
               std::invalid_argument);
}

TEST(Canonicalize, SortsDescending) {
  TypedPartition p = {{0, 1, 0}, {2, 0, 0}, {0, 0, 3}};
  p = canonicalize(std::move(p));
  EXPECT_EQ(p[0], (ClassCounts{2, 0, 0}));
  EXPECT_EQ(p[1], (ClassCounts{0, 1, 0}));
  EXPECT_EQ(p[2], (ClassCounts{0, 0, 3}));
}

/// Property sweep: typed count always equals the quotient count for small
/// multisets (exhaustive cross-check against the Orlov enumeration).
class TypedQuotientSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TypedQuotientSweep, AgreesWithSetPartitionQuotient) {
  const auto [a, b, c] = GetParam();
  const ClassCounts total{a, b, c};
  std::vector<workload::ProfileClass> labels;
  for (int i = 0; i < a; ++i) labels.push_back(workload::ProfileClass::kCpu);
  for (int i = 0; i < b; ++i) labels.push_back(workload::ProfileClass::kMem);
  for (int i = 0; i < c; ++i) labels.push_back(workload::ProfileClass::kIo);

  std::set<std::vector<std::tuple<int, int, int>>> signatures;
  (void)for_each_partition(total.total(), [&](const Partition& p) {
    TypedPartition typed;
    for (const Block& block : p) {
      ClassCounts counts;
      for (const int e : block) {
        ++counts.of(labels[static_cast<std::size_t>(e)]);
      }
      typed.push_back(counts);
    }
    typed = canonicalize(std::move(typed));
    std::vector<std::tuple<int, int, int>> sig;
    for (const ClassCounts& cc : typed) {
      sig.emplace_back(cc.cpu, cc.mem, cc.io);
    }
    signatures.insert(std::move(sig));
    return true;
  });
  EXPECT_EQ(count_all(total), signatures.size());
}

INSTANTIATE_TEST_SUITE_P(
    SmallMultisets, TypedQuotientSweep,
    ::testing::Values(std::make_tuple(1, 1, 0), std::make_tuple(2, 1, 0),
                      std::make_tuple(2, 2, 0), std::make_tuple(1, 1, 1),
                      std::make_tuple(3, 1, 1), std::make_tuple(2, 2, 2),
                      std::make_tuple(4, 0, 0), std::make_tuple(3, 3, 0),
                      std::make_tuple(4, 2, 1)));

/// The parallel search depends on the chunked and materialized entry
/// points reproducing the streaming enumeration exactly — same partitions,
/// same canonical order, chunk boundaries invisible.
std::vector<TypedPartition> streamed(ClassCounts total, std::size_t max_blocks,
                                     std::size_t limit = ~0ULL) {
  std::vector<TypedPartition> all;
  (void)for_each_typed_partition(
      total, [](const ClassCounts&) { return true; }, max_blocks,
      [&](const TypedPartition& blocks) {
        all.push_back(blocks);
        return all.size() < limit;
      });
  return all;
}

TEST(TypedPartitionChunk, ChunksConcatenateToTheStreamedOrder) {
  const ClassCounts total{3, 2, 1};
  const std::vector<TypedPartition> expected = streamed(total, 99);
  for (const std::size_t chunk_size : {1u, 2u, 3u, 7u, 1000u}) {
    std::vector<TypedPartition> collected;
    const std::size_t count = for_each_typed_partition_chunk(
        total, [](const ClassCounts&) { return true; }, 99, chunk_size,
        [&](std::vector<TypedPartition>&& chunk) {
          EXPECT_LE(chunk.size(), chunk_size);
          for (TypedPartition& blocks : chunk) {
            collected.push_back(std::move(blocks));
          }
          return true;
        });
    EXPECT_EQ(count, expected.size()) << "chunk size " << chunk_size;
    EXPECT_EQ(collected, expected) << "chunk size " << chunk_size;
  }
}

TEST(TypedPartitionChunk, StopAfterChunkIsHonoured) {
  std::size_t chunks_seen = 0;
  const std::size_t count = for_each_typed_partition_chunk(
      ClassCounts{3, 3, 0}, [](const ClassCounts&) { return true; }, 99, 2,
      [&](std::vector<TypedPartition>&&) {
        ++chunks_seen;
        return chunks_seen < 2;  // stop after the second chunk
      });
  EXPECT_EQ(chunks_seen, 2u);
  EXPECT_EQ(count, 4u);  // two full chunks of two
}

TEST(TypedPartitionChunk, CollectMatchesStreamedPrefix) {
  const ClassCounts total{2, 2, 2};
  const auto all_ok = [](const ClassCounts&) { return true; };
  const std::vector<TypedPartition> everything =
      collect_typed_partitions(total, all_ok, 99, 100000);
  EXPECT_EQ(everything, streamed(total, 99));

  // A limit materializes exactly the first `limit` candidates.
  const std::vector<TypedPartition> prefix =
      collect_typed_partitions(total, all_ok, 99, 5);
  ASSERT_EQ(prefix.size(), 5u);
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix[i], everything[i]) << "candidate " << i;
  }
}

TEST(TypedPartitionChunk, RespectsMaxBlocksAndFilter) {
  const ClassCounts total{4, 1, 0};
  const auto pairs_only = [](const ClassCounts& block) {
    return block.total() <= 2;
  };
  std::vector<TypedPartition> collected;
  (void)for_each_typed_partition_chunk(
      total, pairs_only, 3, 4, [&](std::vector<TypedPartition>&& chunk) {
        for (TypedPartition& blocks : chunk) {
          collected.push_back(std::move(blocks));
        }
        return true;
      });
  std::vector<TypedPartition> expected;
  (void)for_each_typed_partition(total, pairs_only, 3,
                                 [&](const TypedPartition& blocks) {
                                   expected.push_back(blocks);
                                   return true;
                                 });
  EXPECT_EQ(collected, expected);
  EXPECT_EQ(collect_typed_partitions(total, pairs_only, 3, 100000), expected);
}

}  // namespace
}  // namespace aeva::partition
