#include "partition/set_partition.hpp"

#include <gtest/gtest.h>

#include <set>

namespace aeva::partition {
namespace {

TEST(BellNumber, KnownValues) {
  EXPECT_EQ(bell_number(0), 1u);
  EXPECT_EQ(bell_number(1), 1u);
  EXPECT_EQ(bell_number(2), 2u);
  EXPECT_EQ(bell_number(3), 5u);
  EXPECT_EQ(bell_number(4), 15u);
  EXPECT_EQ(bell_number(5), 52u);
  EXPECT_EQ(bell_number(6), 203u);
  EXPECT_EQ(bell_number(10), 115975u);
  EXPECT_EQ(bell_number(25), 4638590332229999353ULL);
}

TEST(BellNumber, RejectsOutOfRange) {
  EXPECT_THROW((void)bell_number(-1), std::invalid_argument);
  EXPECT_THROW((void)bell_number(26), std::invalid_argument);
}

TEST(SetPartitionGenerator, CountsMatchBellNumbers) {
  for (int n = 1; n <= 10; ++n) {
    SetPartitionGenerator gen(n);
    std::uint64_t count = 1;
    while (gen.next()) {
      ++count;
    }
    EXPECT_EQ(count, bell_number(n)) << "n=" << n;
  }
}

TEST(SetPartitionGenerator, FirstPartitionIsSingleBlock) {
  SetPartitionGenerator gen(4);
  const Partition p = gen.partition();
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], (Block{0, 1, 2, 3}));
  EXPECT_EQ(gen.block_count(), 1);
}

TEST(SetPartitionGenerator, LastPartitionIsAllSingletons) {
  SetPartitionGenerator gen(4);
  while (gen.next()) {
  }
  const Partition p = gen.partition();
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(gen.block_count(), 4);
}

TEST(SetPartitionGenerator, EveryPartitionIsValid) {
  SetPartitionGenerator gen(6);
  do {
    const Partition p = gen.partition();
    std::set<int> seen;
    for (const Block& block : p) {
      EXPECT_FALSE(block.empty());
      for (const int e : block) {
        EXPECT_TRUE(seen.insert(e).second) << "element repeated";
      }
    }
    EXPECT_EQ(seen.size(), 6u) << "elements missing";
  } while (gen.next());
}

TEST(SetPartitionGenerator, AllPartitionsDistinct) {
  SetPartitionGenerator gen(7);
  std::set<std::vector<int>> seen;
  do {
    EXPECT_TRUE(seen.insert(gen.rgs()).second);
  } while (gen.next());
  EXPECT_EQ(seen.size(), bell_number(7));
}

TEST(SetPartitionGenerator, RgsLexicographicOrder) {
  SetPartitionGenerator gen(5);
  std::vector<int> previous = gen.rgs();
  while (gen.next()) {
    EXPECT_LT(previous, gen.rgs());
    previous = gen.rgs();
  }
}

TEST(SetPartitionGenerator, NextReturnsFalseWhenExhaustedAndStays) {
  SetPartitionGenerator gen(3);
  while (gen.next()) {
  }
  const std::vector<int> last = gen.rgs();
  EXPECT_FALSE(gen.next());
  EXPECT_EQ(gen.rgs(), last);
}

TEST(SetPartitionGenerator, SingleElement) {
  SetPartitionGenerator gen(1);
  EXPECT_EQ(gen.partition().size(), 1u);
  EXPECT_FALSE(gen.next());
}

TEST(SetPartitionGenerator, RejectsOutOfRangeSize) {
  EXPECT_THROW(SetPartitionGenerator(0), std::invalid_argument);
  EXPECT_THROW(SetPartitionGenerator(26), std::invalid_argument);
}

TEST(ForEachPartition, VisitsAll) {
  std::size_t count = 0;
  const std::size_t visited =
      for_each_partition(5, [&](const Partition&) {
        ++count;
        return true;
      });
  EXPECT_EQ(count, bell_number(5));
  EXPECT_EQ(visited, bell_number(5));
}

TEST(ForEachPartition, EarlyStop) {
  std::size_t count = 0;
  const std::size_t visited =
      for_each_partition(6, [&](const Partition&) {
        ++count;
        return count < 10;
      });
  EXPECT_EQ(count, 10u);
  EXPECT_EQ(visited, 10u);
}

TEST(ForEachPartition, RejectsNullVisitor) {
  EXPECT_THROW((void)for_each_partition(3, nullptr), std::invalid_argument);
}

TEST(RgsToPartition, BlocksOrderedBySmallestElement) {
  const Partition p = rgs_to_partition({0, 1, 0, 2, 1});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], (Block{0, 2}));
  EXPECT_EQ(p[1], (Block{1, 4}));
  EXPECT_EQ(p[2], (Block{3}));
}

TEST(RgsToPartition, RejectsInvalidStrings) {
  EXPECT_THROW((void)rgs_to_partition({}), std::invalid_argument);
  EXPECT_THROW((void)rgs_to_partition({1}), std::invalid_argument);
  EXPECT_THROW((void)rgs_to_partition({0, 2}), std::invalid_argument);
  EXPECT_THROW((void)rgs_to_partition({0, -1}), std::invalid_argument);
}

/// Property: block counts across all partitions of n elements follow the
/// Stirling numbers of the second kind.
TEST(SetPartitionGenerator, BlockCountsFollowStirlingNumbers) {
  // S(5, k) for k = 1..5.
  const std::uint64_t stirling[5] = {1, 15, 25, 10, 1};
  std::uint64_t counts[5] = {0, 0, 0, 0, 0};
  SetPartitionGenerator gen(5);
  do {
    ++counts[static_cast<std::size_t>(gen.block_count()) - 1];
  } while (gen.next());
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(counts[k], stirling[k]) << "k=" << (k + 1);
  }
}

}  // namespace
}  // namespace aeva::partition
