#include "metering/power_meter.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aeva::metering {
namespace {

util::TimeSeries constant_power(double watts, double duration_s) {
  util::TimeSeries series("power", "W");
  series.append(0.0, watts);
  series.append(duration_s, watts);
  return series;
}

TEST(PowerMeter, SamplesAtOneHertz) {
  PowerMeter meter(MeterSpec{}, 1);
  const MeterReading reading = meter.measure(constant_power(100.0, 10.0));
  EXPECT_EQ(reading.samples.size(), 11u);  // 0..10 inclusive
  EXPECT_DOUBLE_EQ(reading.samples.start_time(), 0.0);
  EXPECT_DOUBLE_EQ(reading.samples.end_time(), 10.0);
}

TEST(PowerMeter, DeterministicForSameSeed) {
  const auto trace = constant_power(150.0, 100.0);
  PowerMeter a(MeterSpec{}, 42);
  PowerMeter b(MeterSpec{}, 42);
  const MeterReading ra = a.measure(trace);
  const MeterReading rb = b.measure(trace);
  EXPECT_DOUBLE_EQ(ra.energy_j, rb.energy_j);
  EXPECT_DOUBLE_EQ(ra.max_power_w, rb.max_power_w);
}

TEST(PowerMeter, DifferentSeedsDiffer) {
  const auto trace = constant_power(150.0, 100.0);
  PowerMeter a(MeterSpec{}, 1);
  PowerMeter b(MeterSpec{}, 2);
  EXPECT_NE(a.measure(trace).energy_j, b.measure(trace).energy_j);
}

TEST(PowerMeter, NoiseWithinAccuracyEnvelope) {
  // ±1.5% is the 95% envelope; allow the odd 1-in-1e4 excursion to 3σ.
  const auto trace = constant_power(200.0, 2000.0);
  PowerMeter meter(MeterSpec{}, 7);
  const MeterReading reading = meter.measure(trace);
  int outside = 0;
  for (const auto& sample : reading.samples.samples()) {
    if (std::abs(sample.value - 200.0) / 200.0 > 0.015) {
      ++outside;
    }
  }
  EXPECT_LT(static_cast<double>(outside) / reading.samples.size(), 0.10);
}

TEST(PowerMeter, EnergyCloseToGroundTruth) {
  // Integration of many noisy samples averages out: energy error well
  // below the per-sample accuracy.
  const double truth = 200.0 * 3600.0;
  PowerMeter meter(MeterSpec{}, 99);
  const MeterReading reading = meter.measure(constant_power(200.0, 3600.0));
  EXPECT_NEAR(reading.energy_j, truth, truth * 0.002);
}

TEST(PowerMeter, ZeroAccuracyIsExact) {
  MeterSpec spec;
  spec.accuracy_fraction = 0.0;
  PowerMeter meter(spec, 5);
  const MeterReading reading = meter.measure(constant_power(123.0, 60.0));
  EXPECT_DOUBLE_EQ(reading.max_power_w, 123.0);
  EXPECT_NEAR(reading.energy_j, 123.0 * 60.0, 1e-9);
}

TEST(PowerMeter, TracksMaxPower) {
  util::TimeSeries trace("power", "W");
  trace.append(0.0, 100.0);
  trace.append(10.0, 300.0);
  trace.append(20.0, 100.0);
  MeterSpec spec;
  spec.accuracy_fraction = 0.0;
  PowerMeter meter(spec, 5);
  EXPECT_DOUBLE_EQ(meter.measure(trace).max_power_w, 300.0);
}

TEST(PowerMeter, ReadingsNeverNegative) {
  // Even with absurd noise, readings clamp at zero.
  MeterSpec spec;
  spec.accuracy_fraction = 5.0;
  PowerMeter meter(spec, 3);
  const MeterReading reading = meter.measure(constant_power(1.0, 500.0));
  for (const auto& sample : reading.samples.samples()) {
    EXPECT_GE(sample.value, 0.0);
  }
}

TEST(PowerMeter, RejectsBadInputs) {
  MeterSpec bad;
  bad.sample_period_s = 0.0;
  EXPECT_THROW(PowerMeter(bad, 1), std::invalid_argument);

  bad = MeterSpec{};
  bad.accuracy_fraction = -0.1;
  EXPECT_THROW(PowerMeter(bad, 1), std::invalid_argument);

  PowerMeter meter(MeterSpec{}, 1);
  EXPECT_THROW((void)meter.measure(util::TimeSeries{}),
               std::invalid_argument);
}

TEST(PowerMeter, CustomSamplePeriod) {
  MeterSpec spec;
  spec.sample_period_s = 0.5;
  spec.accuracy_fraction = 0.0;
  PowerMeter meter(spec, 1);
  const MeterReading reading = meter.measure(constant_power(100.0, 10.0));
  EXPECT_EQ(reading.samples.size(), 21u);
}

}  // namespace
}  // namespace aeva::metering
