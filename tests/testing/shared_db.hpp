#pragma once

/// Test helper: one lazily-built model database shared by the core,
/// datacenter, and integration suites (the campaign is deterministic, so
/// sharing is safe and keeps the test binary fast).

#include "modeldb/campaign.hpp"
#include "modeldb/database.hpp"
#include "testbed/server_config.hpp"

namespace aeva::testing {

inline const modeldb::ModelDatabase& shared_db() {
  static const modeldb::ModelDatabase db = [] {
    modeldb::CampaignConfig config;
    config.server = testbed::testbed_server();
    return modeldb::Campaign(config).build();
  }();
  return db;
}

}  // namespace aeva::testing
