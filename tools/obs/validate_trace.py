#!/usr/bin/env python3
"""validate_trace: check an AEVA observability export against its schema.

Validates the JSON Lines trace written by `obs::to_jsonl` (and optionally
the Chrome trace-event and metrics-snapshot exports) against
tools/obs/trace_schema.json. CI's obs-smoke step runs this after
`bench/obs_overhead`; it also works on any `--trace-out=` file from the
harness CLIs.

Checks, in order:

  1. every line parses as a standalone JSON object;
  2. each line matches the schema's `event` shape, except the final line,
     which must match `meta` (the only meta line in the stream);
  3. stream invariants: `seq` strictly increasing, `meta.events` equals
     the number of event lines, and (unless --allow-empty) at least one
     event was recorded;
  4. with --chrome: the file is a Chrome trace-event JSON object whose
     traceEvents count matches the JSONL event count;
  5. with --metrics: the file is a metrics snapshot with counters/gauges/
     histograms, and every histogram has len(bounds)+1 buckets summing to
     its count.

No third-party dependencies — the schema file uses a small JSON-Schema
subset (type, required, properties, additionalProperties, enum, const,
minimum, minLength, items) interpreted here.

Exit status: 0 valid, 1 violations found, 2 bad invocation/unreadable file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_SCHEMA = Path(__file__).resolve().parent / "trace_schema.json"

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; exclude it from the numeric types.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def check_schema(value, schema: dict, where: str, errors: list[str]) -> None:
    """Appends a message to `errors` for every violation of `schema` by
    `value`. Implements the subset documented in the module docstring."""
    expected = schema.get("type")
    if expected is not None and not TYPE_CHECKS[expected](value):
        errors.append(f"{where}: expected {expected}, got {type(value).__name__}")
        return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{where}: must equal {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{where}: {value!r} not one of {schema['enum']!r}")
    if "minimum" in schema and TYPE_CHECKS["number"](value):
        if value < schema["minimum"]:
            errors.append(f"{where}: {value!r} below minimum {schema['minimum']}")
    if "minLength" in schema and isinstance(value, str):
        if len(value) < schema["minLength"]:
            errors.append(f"{where}: shorter than minLength {schema['minLength']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{where}: missing required key {key!r}")
        properties = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in properties:
                check_schema(item, properties[key], f"{where}.{key}", errors)
            elif extra is False:
                errors.append(f"{where}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                check_schema(item, extra, f"{where}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            check_schema(item, schema["items"], f"{where}[{index}]", errors)


def load_json(path: Path, what: str):
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except OSError as err:
        print(f"validate_trace: cannot read {what} {path}: {err}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as err:
        print(f"validate_trace: {what} {path} is not JSON: {err}", file=sys.stderr)
        sys.exit(2)


def validate_jsonl(path: Path, schema: dict, allow_empty: bool) -> list[str]:
    errors: list[str] = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as err:
        print(f"validate_trace: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    lines = [line for line in lines if line.strip()]
    if not lines:
        return [f"{path}: empty file (expected at least the meta line)"]

    event_schema = schema["line_schemas"]["event"]
    meta_schema = schema["line_schemas"]["meta"]
    event_count = 0
    last_seq = -1
    meta = None
    for lineno, line in enumerate(lines, start=1):
        where = f"{path}:{lineno}"
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as err:
            errors.append(f"{where}: not valid JSON: {err}")
            continue
        if not isinstance(obj, dict):
            errors.append(f"{where}: line is not a JSON object")
            continue
        if "meta" in obj:
            if lineno != len(lines):
                errors.append(f"{where}: meta line before the end of the stream")
            check_schema(obj, meta_schema, where, errors)
            meta = obj.get("meta")
            continue
        check_schema(obj, event_schema, where, errors)
        event_count += 1
        seq = obj.get("seq")
        if isinstance(seq, int):
            if seq <= last_seq:
                errors.append(
                    f"{where}: seq {seq} not strictly increasing "
                    f"(previous {last_seq})"
                )
            last_seq = seq

    if meta is None:
        errors.append(f"{path}: missing terminating meta line")
    elif isinstance(meta, dict) and meta.get("events") != event_count:
        errors.append(
            f"{path}: meta.events={meta.get('events')} but the stream "
            f"contains {event_count} event line(s)"
        )
    if event_count == 0 and not allow_empty:
        errors.append(
            f"{path}: no trace events recorded (pass --allow-empty if "
            "an empty trace is expected)"
        )
    return errors


def validate_chrome(path: Path, expected_events: int) -> list[str]:
    data = load_json(path, "chrome trace")
    errors: list[str] = []
    if not isinstance(data, dict) or "traceEvents" not in data:
        return [f"{path}: not a Chrome trace-event object (no traceEvents)"]
    events = data["traceEvents"]
    if not isinstance(events, list):
        return [f"{path}: traceEvents is not an array"]
    for index, event in enumerate(events):
        where = f"{path}:traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "cat", "ph", "pid", "tid", "ts"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        if event.get("ph") == "X" and "dur" not in event:
            errors.append(f"{where}: complete event without dur")
    if expected_events >= 0 and len(events) != expected_events:
        errors.append(
            f"{path}: {len(events)} traceEvents but the JSONL trace has "
            f"{expected_events} event line(s)"
        )
    return errors


def validate_metrics(path: Path) -> list[str]:
    data = load_json(path, "metrics snapshot")
    errors: list[str] = []
    if not isinstance(data, dict):
        return [f"{path}: metrics snapshot is not a JSON object"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(data.get(section), dict):
            errors.append(f"{path}: missing object section {section!r}")
    for name, value in data.get("counters", {}).items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(f"{path}: counter {name!r} is not a non-negative int")
    for name, hist in data.get("histograms", {}).items():
        where = f"{path}: histogram {name!r}"
        if not isinstance(hist, dict):
            errors.append(f"{where}: not an object")
            continue
        bounds = hist.get("bounds")
        buckets = hist.get("buckets")
        count = hist.get("count")
        if not isinstance(bounds, list) or not isinstance(buckets, list):
            errors.append(f"{where}: missing bounds/buckets arrays")
            continue
        if len(buckets) != len(bounds) + 1:
            errors.append(
                f"{where}: {len(buckets)} buckets for {len(bounds)} bounds "
                "(want len(bounds)+1 including the overflow bucket)"
            )
        if isinstance(count, int) and sum(buckets) != count:
            errors.append(
                f"{where}: buckets sum to {sum(buckets)} but count={count}"
            )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", help="JSON Lines trace to validate")
    parser.add_argument(
        "--schema",
        default=str(DEFAULT_SCHEMA),
        help="schema file (default: tools/obs/trace_schema.json)",
    )
    parser.add_argument(
        "--chrome", metavar="FILE", help="also validate a Chrome trace export"
    )
    parser.add_argument(
        "--metrics", metavar="FILE", help="also validate a metrics snapshot"
    )
    parser.add_argument(
        "--allow-empty",
        action="store_true",
        help="accept a trace with zero events (meta line only)",
    )
    args = parser.parse_args()

    schema = load_json(Path(args.schema), "schema")
    if "line_schemas" not in schema:
        print(
            f"validate_trace: {args.schema} has no line_schemas section",
            file=sys.stderr,
        )
        return 2

    jsonl_path = Path(args.jsonl)
    errors = validate_jsonl(jsonl_path, schema, args.allow_empty)
    event_count = -1
    if not errors:
        lines = [
            l for l in jsonl_path.read_text(encoding="utf-8").splitlines() if l.strip()
        ]
        event_count = len(lines) - 1  # minus the meta line
    if args.chrome:
        errors += validate_chrome(Path(args.chrome), event_count)
    if args.metrics:
        errors += validate_metrics(Path(args.metrics))

    for message in errors:
        print(message)
    if errors:
        print(f"validate_trace: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    checked = [args.jsonl] + [p for p in (args.chrome, args.metrics) if p]
    print(f"validate_trace: OK ({', '.join(checked)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
