#!/usr/bin/env python3
"""aeva_check: compile_commands-driven AST-level determinism & concurrency
checks that neither clang-tidy nor regex lint (tools/lint/aeva_lint.py) can
express. The paper-reproduction contract is *bit-identical results under
any thread count* (CONTRIBUTING.md); these checks reject the constructs
that silently break it on paths no test happens to exercise.

Checks
------

  unordered-iteration-sink
      Iterating a `std::unordered_{map,set,multimap,multiset}` (or an
      alias of one) in a loop whose body feeds an order-sensitive sink:
      a stream/writer insertion (`<<`), an append to a sequence container
      (`push_back`/`emplace_back`/`append`), or a call into an output
      layer (write/record/export/emit/encode/snapshot/print/add_row).
      Hash-iteration order is implementation- and seed-defined, so such a
      loop embeds nondeterministic order into metrics, reports, or
      snapshots. Inserting into a `std::map`/`std::set` inside the loop
      is NOT flagged — re-sorting through an ordered container is exactly
      the sanctioned canonicalization.

  unordered-float-reduction
      A `+=`/`-=`/`*=`//= accumulation into a floating-point variable
      inside such a loop. Float addition is non-associative: summing in
      hash order produces different bits per run even when the set of
      addends is identical. Integer accumulations are order-independent
      and allowed; floats must reduce in canonical order (sort the keys
      first, or reduce per-slot then merge like util::RunningStats).

  mutable-static
      A non-const `static` (or `thread_local`) variable at namespace,
      class, or function scope. All of src/ is reachable from
      `Simulator::run` via the allocator/observability call graph, so any
      mutable static is cross-run shared state: it couples consecutive
      simulations, breaks sharded determinism, and dodges both snapshot
      capture and the thread-safety annotations. Inject state through
      config/members instead; genuinely safe exceptions (e.g. the
      EstimateCache's tagged thread-local L1) carry an allowlist entry
      with the safety argument.

  raw-thread
      `std::thread`/`std::jthread` construction, `std::async`,
      `pthread_create`, or a `.detach()` call outside src/util/. All
      parallelism must fan out through `util::ThreadPool` (deterministic
      join, earliest-failure rethrow, annotated mutex) — a detached or
      ad-hoc thread has no join point, so neither the determinism suite
      nor TSan/thread-safety analysis can reason about it.
      (`std::thread::id` / `std::this_thread` / `hardware_concurrency`
      are reads, not spawns, and are allowed.)

  hot-path-lock
      Inside a loop of a configured hot function (default:
      `Simulator::run` / `Simulator::run_impl` in
      src/datacenter/simulator.cpp — the event loop),
      a lexical lock acquisition (`util::MutexGuard`, `lock_guard`, ...,
      `.lock()`) or a by-name metrics-registry lookup
      (`.counter("...")`/`.gauge("...")`/`.histogram("...")`, which takes
      the registry-wide map lock). Handles must be resolved once at setup
      (see SimObs in simulator.cpp); locking per event serializes the
      sharded-simulation push. Override/extend the hot list with
      `--hot file.cpp:Qualified::name`.

Engines
-------

`--engine builtin` (the default and the reference implementation) runs a
project-tuned C++ tokenizer + structural analyzer: comment/string/raw
-string aware lexing, brace/paren matching, function & loop extraction,
and per-file tracking of unordered-container and floating declarations.
It needs nothing beyond the Python stdlib, so it runs identically on a
bare gcc container and in CI, and its exact behavior is pinned by the
fixture suite under tests/tools/.

`--engine libclang` re-runs the declaration-level checks
(mutable-static, raw-thread) on real clang ASTs via the `clang.cindex`
bindings for type-accurate cross-validation, and delegates the
flow-sensitive checks to the builtin engine. `--engine auto` uses
libclang when the bindings import, builtin otherwise.

Input is a compile_commands.json (CMake exports one unconditionally,
see CMAKE_EXPORT_COMPILE_COMMANDS in the top-level CMakeLists); analyzed
files are the listed first-party TUs plus headers discovered under
--paths. Findings print as `path:line:col: [check] message` and can be
written as a JSON report (--json). Known, justified exceptions live in
tools/analyze/aeva_check_allowlist.json as {check: {"path-glob":
"reason"}} — the reason is mandatory and should contain the safety
argument, not just a waiver.

Exit status: 0 clean, 1 findings, 2 bad invocation/environment.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
ALLOWLIST_PATH = Path(__file__).resolve().parent / "aeva_check_allowlist.json"

CHECKS = [
    "unordered-iteration-sink",
    "unordered-float-reduction",
    "mutable-static",
    "raw-thread",
    "hot-path-lock",
]

#: file suffix sets
SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx"}
HEADER_SUFFIXES = {".hpp", ".hh", ".h"}

#: default hot-path spec: (file glob relative to repo, function).
#: A function matches if its recovered qualified name equals the spec or
#: ends with "::<spec>".
DEFAULT_HOT_PATHS = [
    ("src/datacenter/simulator.cpp", "Simulator::run"),
    ("src/datacenter/simulator.cpp", "Simulator::run_impl"),
]

#: checks exempt inside src/util/ by construction (the sanctioned
#: primitives themselves live there).
BUILTIN_EXEMPT = {
    "raw-thread": ["src/util/*"],
    "hot-path-lock": [],
    "mutable-static": [],
    "unordered-iteration-sink": [],
    "unordered-float-reduction": [],
}

UNORDERED_TYPES = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
}

SEQUENCE_APPENDS = {"push_back", "emplace_back", "append"}

SINK_CALL_RE = re.compile(
    r"^(write|record|export|emit|encode|snapshot|print|serialize|add_row"
    r"|to_json|to_csv|to_jsonl)", re.IGNORECASE
)

LOCK_TYPES = {"MutexGuard", "lock_guard", "unique_lock", "scoped_lock"}

FLOAT_TYPES = {"double", "float"}

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "do",
    "else", "case",
}

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------


@dataclass
class Tok:
    kind: str  # 'id' | 'num' | 'str' | 'chr' | 'punct'
    text: str
    line: int  # 1-based
    col: int   # 1-based


ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
NUM_RE = re.compile(r"\.?\d(?:[\w.]|['][\w]|[eEpP][+-])*")
RAW_OPEN_RE = re.compile(r'(?:u8|[uUL])?R"([^\s()\\]{0,16})\(')
PUNCTS = sorted(
    [
        "->*", "<<=", ">>=", "...", "::", "<<", ">>", "->", "++", "--",
        "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "==", "!=",
        "<=", ">=", "&&", "||", ".*",
    ],
    key=len,
    reverse=True,
)


def tokenize(text: str) -> list[Tok]:
    """C++-aware lexer: skips comments, preprocessor directives (with
    continuations), and blanks string/char literal contents, emitting
    (kind, text, line, col) tokens with exact source positions."""
    toks: list[Tok] = []
    i, n = 0, len(text)
    line, col = 1, 1
    at_line_start = True

    def advance(upto: int) -> None:
        nonlocal i, line, col
        seg = text[i:upto]
        nl = seg.count("\n")
        if nl:
            line += nl
            col = upto - seg.rfind("\n") - i
        else:
            col += upto - i
        i = upto

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            at_line_start = True
            advance(i + 1)
            continue
        if c in " \t\r\f\v":
            advance(i + 1)
            continue
        if c == "#" and at_line_start:
            # preprocessor directive incl. backslash continuations
            j = i
            while j < n:
                e = text.find("\n", j)
                e = n if e == -1 else e
                if e > j and text[e - 1] == "\\":
                    j = e + 1
                else:
                    j = e
                    break
            advance(j)
            continue
        at_line_start = False
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            advance(n if j == -1 else j)
            continue
        if c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            advance(n if j == -1 else j + 2)
            continue
        if c in "RuUL":
            prev = text[i - 1] if i > 0 else ""
            m = None
            if not (prev.isalnum() or prev == "_"):
                m = RAW_OPEN_RE.match(text, i)
            if m:
                closer = ")" + m.group(1) + '"'
                j = text.find(closer, m.end())
                j = n if j == -1 else j + len(closer)
                toks.append(Tok("str", '""', line, col))
                advance(j)
                continue
        if c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c and text[j] != "\n":
                j += 2 if text[j] == "\\" else 1
            toks.append(Tok("str" if c == '"' else "chr", c + c, line, col))
            advance(min(j + 1, n) if j < n and text[j] == c else j)
            continue
        m = ID_RE.match(text, i)
        if m:
            toks.append(Tok("id", m.group(0), line, col))
            advance(m.end())
            continue
        if c.isdigit() or (c == "." and nxt.isdigit()):
            m = NUM_RE.match(text, i)
            end = m.end() if m else i + 1
            toks.append(Tok("num", text[i:end], line, col))
            advance(end)
            continue
        for p in PUNCTS:
            if text.startswith(p, i):
                toks.append(Tok("punct", p, line, col))
                advance(i + len(p))
                break
        else:
            toks.append(Tok("punct", c, line, col))
            advance(i + 1)
    return toks


def build_match(toks: list[Tok]) -> dict[int, int]:
    """index of every ( { [ -> index of its closer, and the reverse.
    Unbalanced tokens (macro tricks) simply stay unmatched."""
    match: dict[int, int] = {}
    stacks: dict[str, list[int]] = {"(": [], "{": [], "[": []}
    closer_of = {")": "(", "}": "{", "]": "["}
    for idx, t in enumerate(toks):
        if t.text in stacks:
            stacks[t.text].append(idx)
        elif t.text in closer_of:
            stack = stacks[closer_of[t.text]]
            if stack:
                o = stack.pop()
                match[o] = idx
                match[idx] = o
    return match


# ---------------------------------------------------------------------------
# Structure recovery
# ---------------------------------------------------------------------------

TRAILING_FN_OK = {
    "const", "noexcept", "override", "final", "mutable", "&", "&&", "->",
    "*", "::", ",", ">", "<",
}


def find_functions(toks, match):
    """Recovers (qualified_name, body_open_idx, body_close_idx) for
    function definitions: a `{` preceded (over trailing qualifiers /
    annotation macros) by a `)` whose matching `(` follows an identifier
    chain. Lambdas and member-init lists fall out naturally (their
    recovered 'names' never match real hot-path specs)."""
    funcs = []
    for i, t in enumerate(toks):
        if t.text != "{" or i not in match:
            continue
        k, steps, paren = i - 1, 0, None
        while k >= 0 and steps < 40:
            tx = toks[k].text
            if tx == ")":
                paren = k
                break
            if tx in TRAILING_FN_OK or toks[k].kind in ("id", "num"):
                k -= 1
                steps += 1
                continue
            break
        if paren is None or paren not in match:
            continue
        o = match[paren]
        parts = []
        k = o - 1
        while k >= 0 and toks[k].kind == "id":
            parts.append(toks[k].text)
            if k - 1 >= 0 and toks[k - 1].text == "::":
                k -= 2
            else:
                break
        if not parts or parts[0] in CONTROL_KEYWORDS:
            continue
        funcs.append(("::".join(reversed(parts)), i, match[i]))
    return funcs


def loop_body_ranges(toks, match, start, end):
    """Token-index ranges of loop bodies (for/while/do) inside
    [start, end]. Single-statement bodies extend to their `;`."""
    ranges = []
    k = start
    while k < end:
        t = toks[k]
        if t.kind == "id" and t.text in ("for", "while"):
            p = k + 1
            if p < end and toks[p].text == "(" and p in match:
                cp = match[p]
                after = cp + 1
                if after < end and toks[after].text == "{" and after in match:
                    ranges.append((after, match[after]))
                elif after < end and toks[after].text != ";":
                    j, depth = after, 0
                    while j < end:
                        if toks[j].text in "([{":
                            depth += 1
                        elif toks[j].text in ")]}":
                            depth -= 1
                        elif toks[j].text == ";" and depth <= 0:
                            break
                        j += 1
                    ranges.append((after, j))
        elif t.kind == "id" and t.text == "do":
            if k + 1 < end and toks[k + 1].text == "{" and k + 1 in match:
                ranges.append((k + 1, match[k + 1]))
        k += 1
    return ranges


def skip_template_args(toks, j):
    """j at '<' -> index just past the matching '>' (handles '>>')."""
    depth = 0
    n = len(toks)
    while j < n:
        tx = toks[j].text
        if tx == "<":
            depth += 1
        elif tx == ">":
            depth -= 1
        elif tx == ">>":
            depth -= 2
        elif tx in (";", "{"):
            return j  # bail: was a comparison, not template args
        j += 1
        if depth <= 0:
            return j
    return j


def collect_unordered_names(toks):
    """Names of variables/members/aliases whose declared type is an
    unordered container (per-file, flow-insensitive)."""
    names: set[str] = set()
    aliases: set[str] = set()
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in UNORDERED_TYPES:
            continue
        # alias?  using A = [std::]unordered_map<...>
        k = i - 1
        if k >= 0 and toks[k].text == "::":
            k -= 2  # std ::
        if k >= 0 and toks[k].text == "=" and k - 2 >= 0 \
                and toks[k - 1].kind == "id" and toks[k - 2].text == "using":
            aliases.add(toks[k - 1].text)
        j = i + 1
        if j < n and toks[j].text == "<":
            j = skip_template_args(toks, j)
        while j < n and toks[j].text in ("&", "*", "const", ")"):
            j += 1
        if j < n and toks[j].kind == "id":
            names.add(toks[j].text)
    # declarations through an alias:  A x;  /  const A& x
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text in aliases:
            j = i + 1
            while j < n and toks[j].text in ("&", "*", "const"):
                j += 1
            if j < n and toks[j].kind == "id":
                names.add(toks[j].text)
    names |= aliases
    return names


def collect_float_names(toks):
    """Names declared as double/float (members, locals, params)."""
    names: set[str] = set()
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in FLOAT_TYPES:
            continue
        j = i + 1
        while j < n and toks[j].text in ("&", "*", "const"):
            j += 1
        if j < n and toks[j].kind == "id":
            names.add(toks[j].text)
    return names


# ---------------------------------------------------------------------------
# Builtin-engine checks
# ---------------------------------------------------------------------------


def finding(check, rel, tok, message, lines):
    excerpt = lines[tok.line - 1].strip()[:140] if tok.line - 1 < len(lines) else ""
    return {
        "check": check,
        "path": rel,
        "line": tok.line,
        "col": tok.col,
        "message": message,
        "excerpt": excerpt,
    }


def check_unordered_loops(toks, match, rel, lines):
    out = []
    unordered = collect_unordered_names(toks)
    floats = collect_float_names(toks)
    if not unordered:
        return out
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "for":
            continue
        if i + 1 >= n or toks[i + 1].text != "(" or i + 1 not in match:
            continue
        p, cp = i + 1, match[i + 1]
        # range-for: ':' at our own paren level
        colon, depth = None, 0
        for j in range(p + 1, cp):
            tx = toks[j].text
            if tx in "([{":
                depth += 1
            elif tx in ")]}":
                depth -= 1
            elif tx == ":" and depth == 0:
                colon = j
                break
        iterated = None
        if colon is not None:
            expr_ids = [x for x in toks[colon + 1:cp] if x.kind == "id"]
            if expr_ids and expr_ids[-1].text in unordered:
                iterated = expr_ids[-1].text
        else:
            # classic iterator loop: <name>.begin() / .cbegin() in header
            for j in range(p + 1, cp - 1):
                if (toks[j].kind == "id" and toks[j].text in unordered
                        and j + 2 < cp and toks[j + 1].text in (".", "->")
                        and toks[j + 2].text in ("begin", "cbegin")):
                    iterated = toks[j].text
                    break
        if iterated is None:
            continue
        # body range
        after = cp + 1
        if after < n and toks[after].text == "{" and after in match:
            b0, b1 = after, match[after]
        else:
            b0, depth = after, 0
            b1 = b0
            while b1 < n:
                tx = toks[b1].text
                if tx in "([{":
                    depth += 1
                elif tx in ")]}":
                    depth -= 1
                elif tx == ";" and depth <= 0:
                    break
                b1 += 1
        sink_tok = None
        sink_what = None
        for j in range(b0, b1):
            tx = toks[j]
            if tx.text == "<<":
                sink_tok, sink_what = tx, "stream insertion"
                break
            if tx.text in (".", "->") and j + 2 < b1 \
                    and toks[j + 1].kind == "id" and toks[j + 2].text == "(":
                callee = toks[j + 1].text
                if callee in SEQUENCE_APPENDS:
                    sink_tok, sink_what = toks[j + 1], f".{callee}() append"
                    break
                if SINK_CALL_RE.match(callee):
                    sink_tok, sink_what = toks[j + 1], f"call to {callee}()"
                    break
            if tx.kind == "id" and SINK_CALL_RE.match(tx.text) \
                    and j + 1 < b1 and toks[j + 1].text == "(" \
                    and (j == b0 or toks[j - 1].text not in (".", "->")):
                sink_tok, sink_what = tx, f"call to {tx.text}()"
                break
        if sink_tok is not None:
            out.append(finding(
                "unordered-iteration-sink", rel, t,
                f"iteration over unordered container '{iterated}' feeds an "
                f"order-sensitive sink ({sink_what}); hash order is "
                "nondeterministic — iterate a sorted view (std::map / "
                "sorted key vector) instead", lines))
        for j in range(b0, b1):
            tx = toks[j]
            if tx.text in ("+=", "-=", "*=", "/=") and j >= 1 \
                    and toks[j - 1].kind == "id" \
                    and toks[j - 1].text in floats:
                out.append(finding(
                    "unordered-float-reduction", rel, tx,
                    f"floating-point accumulation into "
                    f"'{toks[j - 1].text}' in unordered-container "
                    f"iteration over '{iterated}': float addition is "
                    "non-associative, so hash order changes the bits — "
                    "reduce in canonical (sorted) order", lines))
                break
    return out


def check_mutable_static(toks, match, rel, lines):
    out = []
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind != "id" or t.text not in ("static", "thread_local"):
            i += 1
            continue
        start = i
        j = i
        # merge `static thread_local` into one declaration site
        while j < n and toks[j].kind == "id" \
                and toks[j].text in ("static", "thread_local", "inline"):
            j += 1
        # scan declaration until ; { or ( at depth 0
        is_const = False
        first_paren = None
        brace_init = None
        k = j
        depth = 0
        while k < n:
            tx = toks[k].text
            if depth == 0 and tx in ("const", "constexpr", "constinit"):
                is_const = True
            if tx == "<":
                k = skip_template_args(toks, k)
                continue
            if depth == 0 and tx == "(" and first_paren is None:
                first_paren = k
            if depth == 0 and tx == "{":
                brace_init = k
                break
            if depth == 0 and (tx == ";" or tx == "="):
                break
            if tx in "([":
                depth += 1
            elif tx in ")]":
                depth -= 1
            k += 1
        if is_const:
            i = k + 1
            continue
        if first_paren is not None and brace_init is None:
            # `static name(...)` — a function declaration/definition at
            # namespace/class scope; only a variable when the matching ')'
            # is followed by an initializer-free ';' *inside* a function
            # body — too ambiguous to flag, so skip parenthesized decls.
            i = k + 1
            continue
        # must actually declare a name
        decl_ids = [x for x in toks[j:k] if x.kind == "id"]
        if not decl_ids:
            i = k + 1
            continue
        out.append(finding(
            "mutable-static", rel, t,
            "mutable static state (shared across every simulation and "
            "thread reachable from Simulator::run): inject it via "
            "config/members, or document the safety argument in the "
            "aeva_check allowlist", lines))
        i = k + 1
    return out


def check_raw_thread(toks, match, rel, lines):
    out = []
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        if t.text in ("thread", "jthread") and i >= 2 \
                and toks[i - 1].text == "::" and toks[i - 2].text == "std":
            nxt = toks[i + 1].text if i + 1 < n else ""
            if nxt == "::":
                continue  # std::thread::id / ::hardware_concurrency — a read
            out.append(finding(
                "raw-thread", rel, toks[i - 2],
                f"raw std::{t.text} outside util::ThreadPool: ad-hoc "
                "threads have no deterministic join/rethrow and are "
                "invisible to the pool's annotations — fan out through "
                "util::ThreadPool", lines))
        elif t.text == "async" and i >= 2 and toks[i - 1].text == "::" \
                and toks[i - 2].text == "std":
            out.append(finding(
                "raw-thread", rel, toks[i - 2],
                "std::async launches unmanaged threads with "
                "implementation-defined policy — fan out through "
                "util::ThreadPool", lines))
        elif t.text == "pthread_create":
            out.append(finding(
                "raw-thread", rel, t,
                "pthread_create outside util::ThreadPool", lines))
        elif t.text == "detach" and i >= 1 and toks[i - 1].text in (".", "->") \
                and i + 1 < n and toks[i + 1].text == "(":
            out.append(finding(
                "raw-thread", rel, t,
                "detached thread: nothing can join it, so completion "
                "ordering is unobservable and shutdown races are "
                "guaranteed — keep threads joinable inside "
                "util::ThreadPool", lines))
    return out


def check_hot_path_locks(toks, match, rel, lines, hot_specs):
    out = []
    specs = [fn for (glob, fn) in hot_specs
             if fnmatch.fnmatch(rel, glob) or rel.endswith(glob)]
    if not specs:
        return out
    n = len(toks)
    for name, b0, b1 in find_functions(toks, match):
        if not any(name == s or name.endswith("::" + s) for s in specs):
            continue
        for (l0, l1) in loop_body_ranges(toks, match, b0 + 1, b1):
            for j in range(l0, l1):
                tx = toks[j]
                # a guard type either declares a named local
                # (`MutexGuard lock(mu)`), is templated
                # (`unique_lock<std::mutex> l(mu)`), or is a temporary
                # (`MutexGuard(mu)`).
                if tx.kind == "id" and tx.text in LOCK_TYPES \
                        and j + 1 < l1 \
                        and (toks[j + 1].text in ("(", "<")
                             or toks[j + 1].kind == "id") \
                        and (j == 0 or toks[j - 1].text != "::"
                             or (j >= 2 and toks[j - 2].text in ("util", "std"))):
                    out.append(finding(
                        "hot-path-lock", rel, tx,
                        f"lock acquisition ({tx.text}) inside the "
                        f"event-loop hot path ({name}): per-event locking "
                        "serializes sharded simulation — hoist the lock "
                        "out of the loop or restructure to per-shard "
                        "state", lines))
                elif tx.text in (".", "->") and j + 2 < l1 \
                        and toks[j + 1].kind == "id" \
                        and toks[j + 1].text in ("lock", "try_lock") \
                        and toks[j + 2].text == "(":
                    out.append(finding(
                        "hot-path-lock", rel, toks[j + 1],
                        f"explicit .{toks[j + 1].text}() inside the "
                        f"event-loop hot path ({name})", lines))
                elif tx.text in (".", "->") and j + 3 < l1 \
                        and toks[j + 1].kind == "id" \
                        and toks[j + 1].text in ("counter", "gauge", "histogram") \
                        and toks[j + 2].text == "(" \
                        and toks[j + 3].kind == "str":
                    out.append(finding(
                        "hot-path-lock", rel, toks[j + 1],
                        f"by-name registry lookup .{toks[j + 1].text}(...) "
                        f"inside the event-loop hot path ({name}): it takes "
                        "the registry-wide map lock per event — resolve "
                        "the handle once at setup (see SimObs)", lines))
    return out


def analyze_file_builtin(path: Path, rel: str, hot_specs) -> list[dict]:
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    toks = tokenize(text)
    match = build_match(toks)
    findings = []
    findings += check_unordered_loops(toks, match, rel, lines)
    findings += check_mutable_static(toks, match, rel, lines)
    findings += check_raw_thread(toks, match, rel, lines)
    findings += check_hot_path_locks(toks, match, rel, lines, hot_specs)
    return findings


# ---------------------------------------------------------------------------
# libclang engine (declaration-level cross-validation)
# ---------------------------------------------------------------------------


def libclang_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def analyze_file_libclang(path: Path, rel: str, args: list[str],
                          lines: list[str]) -> list[dict] | None:
    """mutable-static + raw-thread on a real clang AST. Returns None when
    the TU fails to parse (caller falls back to builtin for this file)."""
    import clang.cindex as ci

    try:
        index = ci.Index.create()
        tu = index.parse(str(path), args=args)
    except Exception as err:
        print(f"aeva_check: libclang parse failed for {rel}: {err}",
              file=sys.stderr)
        return None

    def tok_at(cursor):
        loc = cursor.location
        return Tok("id", cursor.spelling or "?", loc.line or 1,
                   loc.column or 1)

    out = []
    for cur in tu.cursor.walk_preorder():
        loc = cur.location
        if loc.file is None or Path(str(loc.file)).resolve() != path.resolve():
            continue
        if cur.kind == ci.CursorKind.VAR_DECL:
            static = cur.storage_class == ci.StorageClass.STATIC
            tls = getattr(cur, "tls_kind", None)
            tls = tls is not None and tls != ci.TLSKind.NONE
            if static or tls:
                qtype = cur.type.get_canonical()
                if not qtype.is_const_qualified():
                    out.append(finding(
                        "mutable-static", rel, tok_at(cur),
                        "mutable static state (libclang): inject it via "
                        "config/members, or document the safety argument "
                        "in the aeva_check allowlist", lines))
            canonical = cur.type.get_canonical().spelling
            if re.search(r"\bstd::(thread|jthread)\b", canonical):
                out.append(finding(
                    "raw-thread", rel, tok_at(cur),
                    "raw std::thread outside util::ThreadPool "
                    "(libclang)", lines))
        elif cur.kind == ci.CursorKind.CALL_EXPR:
            if cur.spelling == "detach":
                out.append(finding(
                    "raw-thread", rel, tok_at(cur),
                    "detached thread (libclang)", lines))
            elif cur.spelling == "async":
                ref = cur.referenced
                if ref is not None and "std" in (
                        ref.semantic_parent.spelling
                        if ref.semantic_parent else ""):
                    out.append(finding(
                        "raw-thread", rel, tok_at(cur),
                        "std::async outside util::ThreadPool "
                        "(libclang)", lines))
    return out


def clang_args_from_command(entry: dict) -> list[str]:
    """Extracts -I/-D/-std flags from a compile_commands entry."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = entry.get("command", "").split()
    keep, i = [], 0
    while i < len(argv):
        a = argv[i]
        if a.startswith(("-I", "-D", "-std=")):
            keep.append(a)
        elif a in ("-I", "-D", "-isystem", "-include") and i + 1 < len(argv):
            keep.extend([a, argv[i + 1]])
            i += 1
        i += 1
    if not any(a.startswith("-std=") for a in keep):
        keep.append("-std=c++20")
    return keep


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def load_allowlist(path: Path) -> dict[str, dict[str, str]]:
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        print(f"aeva_check: malformed allowlist {path}: {err}",
              file=sys.stderr)
        sys.exit(2)
    data.pop("_comment", None)
    for check, entries in data.items():
        if check not in CHECKS:
            print(f"aeva_check: allowlist names unknown check {check!r}",
                  file=sys.stderr)
            sys.exit(2)
        if not isinstance(entries, dict) or not all(
                isinstance(v, str) and v.strip() for v in entries.values()):
            print(f"aeva_check: allowlist for {check!r} must map "
                  "path-glob -> non-empty reason", file=sys.stderr)
            sys.exit(2)
    return data


def is_exempt(check: str, rel: str, allowlist) -> bool:
    globs = list(BUILTIN_EXEMPT.get(check, []))
    globs += list(allowlist.get(check, {}).keys())
    return any(fnmatch.fnmatch(rel, g) for g in globs)


def rel_to_repo(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def collect_inputs(args) -> list[tuple[Path, dict | None]]:
    """(file, compile_commands entry or None) for every file to analyze."""
    inputs: dict[Path, dict | None] = {}
    if args.files:
        for f in args.files:
            p = Path(f).resolve()
            if not p.is_file():
                print(f"aeva_check: no such file: {f}", file=sys.stderr)
                sys.exit(2)
            inputs[p] = None
    if args.compile_commands:
        cc_path = Path(args.compile_commands)
        if not cc_path.is_file():
            print(f"aeva_check: compile_commands not found: {cc_path} "
                  "(configure with CMake first; CMAKE_EXPORT_COMPILE_COMMANDS "
                  "is on by default)", file=sys.stderr)
            sys.exit(2)
        try:
            entries = json.loads(cc_path.read_text())
        except json.JSONDecodeError as err:
            print(f"aeva_check: malformed {cc_path}: {err}", file=sys.stderr)
            sys.exit(2)
        roots = [Path(p) if Path(p).is_absolute() else REPO_ROOT / p
                 for p in args.paths]
        for entry in entries:
            f = Path(entry.get("file", ""))
            if not f.is_absolute():
                f = Path(entry.get("directory", ".")) / f
            f = f.resolve()
            if f.suffix not in SOURCE_SUFFIXES or not f.is_file():
                continue
            if not any(str(f).startswith(str(r.resolve()) + "/")
                       for r in roots):
                continue
            inputs.setdefault(f, entry)
        # headers are not TUs; pick them up from the same roots
        for r in roots:
            if r.is_dir():
                for h in sorted(r.rglob("*")):
                    if h.suffix in HEADER_SUFFIXES:
                        inputs.setdefault(h.resolve(), None)
    if not inputs:
        print("aeva_check: nothing to analyze (pass --compile-commands "
              "or --files)", file=sys.stderr)
        sys.exit(2)
    return sorted(inputs.items(), key=lambda kv: str(kv[0]))


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--compile-commands", metavar="JSON",
                        help="compilation database (e.g. "
                             "build/compile_commands.json)")
    parser.add_argument("--files", nargs="*", default=[],
                        help="analyze exactly these files (fixture mode)")
    parser.add_argument("--paths", nargs="*", default=["src"],
                        help="repo-relative roots to scope the database "
                             "to (default: src)")
    parser.add_argument("--json", metavar="FILE", help="write a JSON report")
    parser.add_argument("--allowlist", default=str(ALLOWLIST_PATH),
                        help="allowlist JSON (default: "
                             "tools/analyze/aeva_check_allowlist.json)")
    parser.add_argument("--engine", choices=["auto", "builtin", "libclang"],
                        default="builtin",
                        help="analysis engine (default: builtin, the "
                             "fixture-pinned reference)")
    parser.add_argument("--hot", action="append", default=[],
                        metavar="FILE:FUNCTION",
                        help="add a hot-path spec for hot-path-lock "
                             "(repeatable); replaces the default "
                             "src/datacenter/simulator.cpp:Simulator::run "
                             "when given")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the check catalog and exit")
    args = parser.parse_args()

    if args.list_checks:
        for c in CHECKS:
            print(c)
        return 0

    engine = args.engine
    if engine == "auto":
        engine = "libclang" if libclang_available() else "builtin"
    if engine == "libclang" and not libclang_available():
        print("aeva_check: --engine libclang requires the clang.cindex "
              "python bindings (python3-clang)", file=sys.stderr)
        return 2

    hot_specs = []
    for spec in args.hot:
        f, sep, fn = spec.partition(":")
        if not sep or not fn:
            print(f"aeva_check: bad --hot spec {spec!r} "
                  "(want FILE:FUNCTION)", file=sys.stderr)
            return 2
        hot_specs.append((f, fn))
    if not hot_specs:
        hot_specs = DEFAULT_HOT_PATHS

    allowlist = load_allowlist(Path(args.allowlist))
    inputs = collect_inputs(args)

    findings: list[dict] = []
    for path, entry in inputs:
        rel = rel_to_repo(path)
        file_findings = analyze_file_builtin(path, rel, hot_specs)
        if engine == "libclang" and path.suffix in SOURCE_SUFFIXES:
            # cross-validate declaration-level checks on the real AST;
            # AST results replace the token-engine ones for those checks.
            clang_args = clang_args_from_command(entry or {})
            lines = path.read_text(
                encoding="utf-8", errors="replace").splitlines()
            ast = analyze_file_libclang(path, rel, clang_args, lines)
            if ast is not None:
                file_findings = [
                    f for f in file_findings
                    if f["check"] not in ("mutable-static", "raw-thread")
                ] + ast
        findings.extend(
            f for f in file_findings
            if not is_exempt(f["check"], f["path"], allowlist))

    findings.sort(key=lambda f: (f["path"], f["line"], f["col"], f["check"]))
    for f in findings:
        print(f"{f['path']}:{f['line']}:{f['col']}: [{f['check']}] "
              f"{f['message']}\n    {f['excerpt']}")

    report = {
        "version": 1,
        "engine": engine,
        "compile_commands": args.compile_commands,
        "checked_files": len(inputs),
        "finding_count": len(findings),
        "findings": findings,
    }
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")

    if findings:
        print(f"aeva_check: {len(findings)} finding(s) in "
              f"{len(inputs)} files", file=sys.stderr)
        return 1
    print(f"aeva_check: clean ({len(inputs)} files, engine={engine})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
