#!/usr/bin/env bash
# clang-tidy gate driver.
#
# Usage:
#   tools/lint/run_clang_tidy.sh [--fix] [paths...]
#
# Configures a compile-commands build (build-tidy/ by default, override
# with AEVA_TIDY_BUILD_DIR), then runs clang-tidy with the repo-root
# .clang-tidy over every first-party translation unit (src/ by default).
# Exits non-zero on any finding (WarningsAsErrors: '*').
#
# Environment:
#   CLANG_TIDY           clang-tidy binary (default: clang-tidy)
#   AEVA_TIDY_BUILD_DIR  compile-commands dir (default: build-tidy)
#   AEVA_TIDY_JOBS       parallel jobs (default: nproc)
#   AEVA_TIDY_STRICT=1   fail (exit 2) when clang-tidy is not installed;
#                        the default is a diagnosed skip (exit 0) so that
#                        gcc-only developer machines aren't blocked — CI
#                        always sets AEVA_TIDY_STRICT=1.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
BUILD_DIR="${AEVA_TIDY_BUILD_DIR:-${ROOT}/build-tidy}"
JOBS="${AEVA_TIDY_JOBS:-$(nproc 2>/dev/null || echo 4)}"

FIX_ARGS=()
if [[ "${1:-}" == "--fix" ]]; then
  FIX_ARGS=(--fix --fix-errors)
  shift
fi

if ! command -v "${CLANG_TIDY}" >/dev/null 2>&1; then
  if [[ "${AEVA_TIDY_STRICT:-0}" == "1" ]]; then
    echo "run_clang_tidy: FATAL: '${CLANG_TIDY}' not found and AEVA_TIDY_STRICT=1" >&2
    exit 2
  fi
  echo "run_clang_tidy: '${CLANG_TIDY}' not found; skipping (set AEVA_TIDY_STRICT=1 to fail instead)" >&2
  exit 0
fi

# clang-tidy needs a compilation database; keep it in its own build dir so
# the normal build's flags (e.g. sanitizers) never leak into analysis.
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  cmake -B "${BUILD_DIR}" -S "${ROOT}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCMAKE_BUILD_TYPE=Debug \
    ${AEVA_TIDY_CMAKE_ARGS:-} >/dev/null
fi

if [[ $# -gt 0 ]]; then
  mapfile -t FILES < <(printf '%s\n' "$@")
else
  mapfile -t FILES < <(find "${ROOT}/src" -name '*.cpp' | sort)
fi

echo "run_clang_tidy: $(${CLANG_TIDY} --version | head -n1 | sed 's/^ *//')"
echo "run_clang_tidy: ${#FILES[@]} translation units, ${JOBS} jobs"

# Run in parallel; collect per-file logs and report every failing file.
TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

status=0
printf '%s\n' "${FILES[@]}" | xargs -P "${JOBS}" -I{} bash -c '
  out="$1/$(echo "{}" | tr "/" "_").log"
  if ! "$2" -p "$3" --quiet '"${FIX_ARGS[*]:-}"' "{}" >"${out}" 2>&1; then
    echo "{}" >> "$1/failed"
  fi
  # clang-tidy exits 0 yet prints warnings when WarningsAsErrors misses a
  # category; treat any "warning:"/"error:" line as a finding.
  if grep -qE "(warning|error):" "${out}"; then
    echo "{}" >> "$1/failed"
  fi
' _ "${TMP}" "${CLANG_TIDY}" "${BUILD_DIR}" || status=$?

if [[ -f "${TMP}/failed" ]]; then
  echo "run_clang_tidy: findings in:" >&2
  sort -u "${TMP}/failed" >&2
  for f in $(sort -u "${TMP}/failed"); do
    cat "${TMP}/$(echo "${f}" | tr '/' '_').log" >&2
  done
  exit 1
fi

echo "run_clang_tidy: clean"
exit "${status}"
