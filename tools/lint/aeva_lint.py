#!/usr/bin/env python3
"""aeva_lint: project-specific lint rules clang-tidy cannot express.

Rules (all scoped to first-party code under src/, see --paths):

  raw-assert           No `assert(...)` / `abort()` / `std::terminate()`.
                       Invariants must throw via AEVA_REQUIRE (public-API
                       preconditions, std::invalid_argument) or
                       AEVA_INVARIANT (internal invariants, std::logic_error)
                       from src/util/error.hpp, so Release builds keep the
                       checks and drivers can report which experiment died.

  nondeterministic-random
                       No `std::rand`/`rand()`, `srand`,
                       `std::random_device`, `mt19937` (seeded or not),
                       `minstd_rand`, `ranlux*`, `knuth_b`,
                       `default_random_engine`, `std::random_shuffle`, or
                       `#include <random>` outside src/util/rng.*.
                       Trace-driven simulations must be bit-reproducible
                       from explicit seeds (CONTRIBUTING.md); stdlib
                       distributions differ across implementations, and
                       stochastic subsystems (e.g. failure sampling) must
                       draw from dedicated util::Rng named streams so they
                       cannot perturb each other.

  wall-clock           No wall/CPU-clock reads (`std::chrono` clocks,
                       `clock_gettime`, `gettimeofday`, `time(nullptr)`,
                       ...) outside src/obs/. Simulation logic must run on
                       simulated time only, so results are bit-reproducible
                       regardless of host speed; the one sanctioned real
                       clock is obs::monotonic_now_ns (src/obs/trace_log),
                       whose readings are tagged nondeterministic and
                       excluded from golden outputs (docs/OBSERVABILITY.md).

  stray-io             No stream/console writes (`std::cout`, `std::cerr`,
                       `std::clog`, `printf`, `fprintf`, `puts`) outside
                       src/report/ and src/util/table_printer.*. Library
                       code reports through return values and exceptions;
                       only the reporting layer talks to the terminal.
                       (`snprintf` to a buffer is formatting, not I/O, and
                       is allowed.)

  bare-ofstream        No `std::ofstream` outside util::AtomicFileWriter's
                       own implementation. Output files must be published
                       through util::AtomicFileWriter /
                       util::write_file_atomic (temp + fsync + rename) so a
                       crash or full disk never leaves a torn artifact and
                       every write failure surfaces as a typed
                       util::FileWriteError carrying the path
                       (docs/RESILIENCE.md, "Process-level durability").

  raw-mutex            No raw `std::mutex` / `std::lock_guard` /
                       `std::unique_lock` / `std::scoped_lock` /
                       `std::condition_variable` (or their headers)
                       outside src/util/. Shared state must be locked
                       through the annotated wrappers in util/mutex.hpp
                       (util::Mutex, util::MutexGuard, util::CondVar) so
                       clang's -Wthread-safety analysis can prove the
                       locking discipline (docs/STATIC_ANALYSIS.md,
                       "Thread-safety annotations") — a raw std::mutex is
                       invisible to the analysis and silently exempts
                       every field it guards from the proof.

  unbounded-queue      No `std::deque` / `std::queue` outside src/util/
                       without an adjacent (±2 lines, comments included)
                       mention of the bound that protects it —
                       "bounded", "capacity", "limit", or similar.
                       Overload protection is only as good as its weakest
                       queue: an unbounded buffer turns backpressure into
                       memory growth and tail latency
                       (docs/RESILIENCE.md, "Overload protection"). A
                       queue that genuinely is bounded must say so where
                       it is declared, next to the capacity check that
                       enforces it.

  hot-path-container   No container construction inside the event-loop
                       hot-path files (src/datacenter/simulator.cpp,
                       ground_truth.cpp, fcfs_queue.hpp,
                       src/core/first_fit.cpp; other files opt in with an
                       "aeva-lint: hot-path" marker). Node-based
                       containers (std::map & friends) are banned
                       outright; sequence-container declarations must
                       carry an adjacent (±2 lines) comment naming why
                       the site is off the per-event path (cold, per-run,
                       scratch, snapshot/restore, ...). The steady-state
                       event loop is allocation-free
                       (docs/PERFORMANCE.md "Event-loop throughput");
                       this keeps fresh-container-per-event churn from
                       creeping back.

  header-standalone    Every .hpp must compile on its own
                       (`$CXX -fsyntax-only -I src`), i.e. include what it
                       uses. Skipped when no compiler is available or with
                       --no-compile.

  doc-links            Documentation graph integrity (always checked, even
                       when `paths` restricts the source scope; skip with
                       --no-doc-links): every relative markdown link in
                       README.md and docs/**/*.md must resolve after
                       stripping #anchors (http(s)/mailto links are not
                       followed), and every file under docs/ must be
                       reachable from README.md through that link graph —
                       a page nobody links to is a page nobody reads.

Findings are reported as `path:line: [rule] message`, and optionally as a
machine-readable JSON report (--json). Known, justified exceptions live in
tools/lint/aeva_lint_allowlist.json as {rule: {"path-glob": "reason"}}.

Exit status: 0 clean, 1 findings, 2 bad invocation/environment.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_PATHS = ["src"]


def rel_to_repo(path: Path) -> str:
    """Repo-relative posix path; paths outside the repo stay absolute."""
    try:
        return path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


ALLOWLIST_PATH = Path(__file__).resolve().parent / "aeva_lint_allowlist.json"

# (rule, compiled regex, message). Matched against comment- and
# string-stripped source so prose mentioning assert/cout cannot trip it.
PATTERN_RULES = [
    (
        "raw-assert",
        re.compile(r"(?<![\w:])(assert|abort)\s*\(|std::terminate\s*\("),
        "use AEVA_REQUIRE/AEVA_INVARIANT from util/error.hpp instead of "
        "assert/abort (checks must survive Release and unwind)",
    ),
    (
        "nondeterministic-random",
        re.compile(
            r"std::rand\b|(?<![\w:])s?rand\s*\(|random_device\b"
            r"|mt19937|minstd_rand|ranlux\d+|knuth_b"
            r"|default_random_engine|random_shuffle"
            r"|#\s*include\s*<random>"
        ),
        "all randomness must flow from util::Rng with an explicit seed "
        "(deterministic trace-driven simulation; stochastic failure "
        "sampling uses util::named_stream — the rng-entry rule pins the "
        "sanctioned stream labels per subsystem)",
    ),
    (
        "wall-clock",
        re.compile(
            r"std::chrono\b|#\s*include\s*<chrono>"
            r"|steady_clock|system_clock|high_resolution_clock"
            r"|clock_gettime|gettimeofday|timespec_get"
            r"|(?<![\w:])clock\s*\(\s*\)"
            r"|std::time\s*\(|(?<![\w:.])time\s*\(\s*(nullptr|NULL|0)\s*\)"
        ),
        "library code must not read wall/CPU clocks (simulated time only; "
        "bit-reproducibility must not depend on host speed) — real-time "
        "measurement goes through obs::monotonic_now_ns in src/obs",
    ),
    (
        "stray-io",
        re.compile(
            r"std::(cout|cerr|clog)\b"
            r"|std::(printf|fprintf|puts)\b"
            r"|(?<![\w:.])(printf|fprintf|puts)\s*\("
        ),
        "library code must not write to the console; route output through "
        "src/report or util::TablePrinter",
    ),
    (
        "bare-ofstream",
        re.compile(r"std::ofstream\b|(?<![\w:])ofstream\b"),
        "library code must not open output files directly: a crash or "
        "full disk leaves a torn file behind and errors are silently "
        "dropped — write through util::AtomicFileWriter / "
        "util::write_file_atomic (temp + fsync + rename, typed "
        "FileWriteError) instead",
    ),
    (
        "raw-mutex",
        re.compile(
            r"std::(recursive_|timed_|recursive_timed_|shared_|shared_timed_)?mutex\b"
            r"|std::(lock_guard|unique_lock|scoped_lock)\b"
            r"|std::condition_variable(_any)?\b"
            r"|#\s*include\s*<(mutex|shared_mutex|condition_variable)>"
        ),
        "lock shared state through the annotated util::Mutex / "
        "util::MutexGuard / util::CondVar (util/mutex.hpp) — raw std "
        "primitives are invisible to clang's -Wthread-safety analysis, "
        "so every field they guard drops out of the compile-time "
        "locking proof",
    ),
]

# hot-path-container: files on the event-loop hot path must not construct
# containers per call (docs/PERFORMANCE.md "Event-loop throughput"). The
# rule fires on container declarations inside the files below — plus any
# file carrying the opt-in marker — unless an adjacent comment justifies
# the site as cold/per-run/scratch. Node-based containers are flagged
# unconditionally: the hot files replaced every std::map with a flat
# structure, and the rule keeps them out.
HOT_PATH_FILES = {
    "src/datacenter/simulator.cpp",
    "src/datacenter/ground_truth.cpp",
    "src/datacenter/fcfs_queue.hpp",
    "src/core/first_fit.cpp",
}
# Files (e.g. lint fixtures, future hot paths) opt in by carrying this
# marker anywhere in their raw text.
HOT_PATH_MARKER = "aeva-lint: hot-path"
HOT_CONTAINER_RE = re.compile(
    r"std::(vector|deque|map|set|unordered_map|unordered_set"
    r"|multimap|multiset|list)\s*<"
)
NODE_CONTAINER_RE = re.compile(
    r"std::(map|set|unordered_map|unordered_set|multimap|multiset|list)\s*<"
)
# A nearby comment naming one of these marks the construction as off the
# per-event path (mirrors the unbounded-queue suppression idiom: justify
# the site where it is declared, or allowlist with a reason).
HOT_COLD_CONTEXT_RE = re.compile(
    r"cold|per-run|per run|once|setup|snapshot|restore|scratch|arena"
    r"|hoisted|reused|thread_local",
    re.IGNORECASE,
)

# rng-entry: the fault-injection subsystem keeps per-server and domain
# sampling on dedicated named streams so adding one process can never
# shift another's draws (failure.hpp). The rule pins that seam: inside
# the scoped files every RNG must enter through util::named_stream with
# one of the file's sanctioned labels — a direct seeded Rng construction
# or a novel label silently creates a stream whose draws interleave with
# (and perturb) the replay-stable ones. Fixtures and future stream
# owners opt in with the marker.
RNG_ENTRY_SCOPE = {
    "src/datacenter/failure.*": {"failures", "domain-failures"},
    "src/datacenter/topology.*": {"domain-failures"},
}
RNG_ENTRY_MARKER = "aeva-lint: rng-entry"
RNG_ENTRY_MARKER_LABELS = {"failures", "domain-failures"}
NAMED_STREAM_RE = re.compile(r"\bnamed_stream\s*\(")
NAMED_STREAM_LABEL_RE = re.compile(r'named_stream\s*\([^"]*"([^"]*)"')
# Seeded construction sites: a temporary `Rng(...)`/`Rng{...}` or a
# declaration with constructor arguments (`Rng name(...)`). Plain
# declarations, references, and Rng-valued template params don't match.
RNG_CONSTRUCT_RE = re.compile(r"(?<![\w.])Rng\s*(\w+\s*)?[({]")

# unbounded-queue is not a PATTERN_RULE: the pattern matches *stripped*
# source, but the suppressing bound declaration usually lives in a
# comment, so the rule re-reads the raw text around each hit.
UNBOUNDED_QUEUE_RE = re.compile(r"std::(deque|queue)\s*<")
# "unbounded" itself must not read as a bound (it is the rule's own name,
# and fixture EXPECT markers carry it on the finding line).
BOUND_KEYWORD_RE = re.compile(
    r"(?<!un)bound|capacit|limit|budget|fixed-size|ring buffer", re.IGNORECASE
)

# Files exempt from a rule by construction (the rule's own implementation
# site). Further exceptions belong in the allowlist file with a reason.
BUILTIN_EXEMPT = {
    "nondeterministic-random": ["src/util/rng.hpp", "src/util/rng.cpp"],
    "wall-clock": ["src/obs/*"],
    "stray-io": ["src/report/*", "src/util/table_printer.*"],
    "bare-ofstream": ["src/util/atomic_file.hpp", "src/util/atomic_file.cpp"],
    # util/ is where the annotated wrappers themselves (and ThreadPool's
    # condition waits) live; everywhere else goes through them.
    "raw-mutex": ["src/util/*"],
    # util/ hosts infrastructure queues (ThreadPool's work queue drains by
    # construction); product-code queues must declare their bound.
    "unbounded-queue": ["src/util/*"],
}

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}


RAW_STRING_OPEN = re.compile(r'(?:u8|[uUL])?R"([^\s()\\]{0,16})\(')


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string literals, and char literals.

    Line structure is preserved *exactly* — every newline in the input
    survives in the output, including newlines inside block comments and
    multi-line raw string literals, and an unterminated ordinary
    string/char literal is treated as ending at the end of its line. This
    is what keeps every reported line number 1-based and correct no matter
    what precedes the finding (regression: tests/tools fixtures)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "Ru" or c == "L":
            # Possible raw string literal prefix (R" / uR" / u8R" / LR"),
            # unless this char is the tail of a longer identifier.
            prev = text[i - 1] if i > 0 else ""
            m = None if (prev.isalnum() or prev == "_") else RAW_STRING_OPEN.match(text, i)
            if m:
                closer = ")" + m.group(1) + '"'
                j = text.find(closer, m.end())
                j = n if j == -1 else j + len(closer)
                out.append('""')
                out.append("\n" * text.count("\n", i, j))
                i = j
            else:
                out.append(c)
                i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            # Stop at end-of-line: a quote never legally spans lines here
            # (raw strings are handled above), and scanning past a newline
            # used to swallow line breaks and shift every later finding.
            while j < n and text[j] != quote and text[j] != "\n":
                j += 2 if text[j] == "\\" else 1
            out.append(quote + quote)
            i = j if j < n and text[j] == "\n" else j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def load_allowlist(path: Path) -> dict[str, dict[str, str]]:
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        print(f"aeva_lint: malformed allowlist {path}: {err}", file=sys.stderr)
        sys.exit(2)
    data.pop("_comment", None)
    for rule, entries in data.items():
        if not isinstance(entries, dict):
            print(
                f"aeva_lint: allowlist rule {rule!r} must map "
                "path-glob -> reason",
                file=sys.stderr,
            )
            sys.exit(2)
    return data


def is_exempt(rule: str, rel_path: str, allowlist) -> bool:
    globs = list(BUILTIN_EXEMPT.get(rule, []))
    globs += list(allowlist.get(rule, {}).keys())
    return any(fnmatch.fnmatch(rel_path, g) for g in globs)


def collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = (REPO_ROOT / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        if p.is_file():
            files.append(p)
        elif p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*")) if f.suffix in SOURCE_SUFFIXES
            )
        else:
            print(f"aeva_lint: no such path: {raw}", file=sys.stderr)
            sys.exit(2)
    return files


def run_pattern_rules(files: list[Path], allowlist) -> list[dict]:
    findings = []
    for path in files:
        rel = rel_to_repo(path)
        stripped = strip_comments_and_strings(
            path.read_text(encoding="utf-8", errors="replace")
        )
        lines = stripped.splitlines()
        for rule, regex, message in PATTERN_RULES:
            if is_exempt(rule, rel, allowlist):
                continue
            for lineno, line in enumerate(lines, start=1):
                if regex.search(line):
                    findings.append(
                        {
                            "rule": rule,
                            "path": rel,
                            "line": lineno,
                            "message": message,
                            "excerpt": line.strip()[:120],
                        }
                    )
    return findings


def run_unbounded_queue_rule(files: list[Path], allowlist) -> list[dict]:
    """Flags std::deque/std::queue with no bound named within ±2 raw lines.

    The match runs on stripped source (so a string mentioning std::queue
    cannot trip it), but the suppression context is the *raw* text: the
    bound is typically documented in a comment next to the capacity check
    (e.g. src/serve/service.cpp's admission queue)."""
    findings = []
    for path in files:
        rel = rel_to_repo(path)
        if is_exempt("unbounded-queue", rel, allowlist):
            continue
        raw = path.read_text(encoding="utf-8", errors="replace")
        raw_lines = raw.splitlines()
        stripped_lines = strip_comments_and_strings(raw).splitlines()
        for idx, line in enumerate(stripped_lines):
            if not UNBOUNDED_QUEUE_RE.search(line):
                continue
            lo = max(0, idx - 2)
            hi = min(len(raw_lines), idx + 3)
            if BOUND_KEYWORD_RE.search("\n".join(raw_lines[lo:hi])):
                continue
            findings.append(
                {
                    "rule": "unbounded-queue",
                    "path": rel,
                    "line": idx + 1,
                    "message": "queue primitive with no declared bound: "
                    "overload protection requires every queue to be "
                    "capacity-checked — add the check and name the bound "
                    "in an adjacent comment, or allowlist with a reason "
                    "(docs/RESILIENCE.md)",
                    "excerpt": raw_lines[idx].strip()[:120],
                }
            )
    return findings


def run_hot_path_container_rule(files: list[Path], allowlist) -> list[dict]:
    """Flags container construction on the event-loop hot path.

    Scope: the HOT_PATH_FILES plus any file carrying HOT_PATH_MARKER.
    Node-based containers (std::map & friends) are flagged wherever they
    appear. Sequence containers are flagged at declaration sites — lines
    that declare a reference/view (`&` anywhere, e.g. scratch.take
    bindings and range-for) are skipped — unless a raw-text comment
    within two lines of the declaration run names why the site is cold
    (HOT_COLD_CONTEXT_RE). Consecutive declarations (gaps of up to two
    lines, e.g. an interleaved comment) form one run sharing one
    justification, so a struct's column block needs a single comment."""
    findings = []
    for path in files:
        rel = rel_to_repo(path)
        if is_exempt("hot-path-container", rel, allowlist):
            continue
        raw = path.read_text(encoding="utf-8", errors="replace")
        if rel not in HOT_PATH_FILES and HOT_PATH_MARKER not in raw:
            continue
        raw_lines = raw.splitlines()
        stripped_lines = strip_comments_and_strings(raw).splitlines()

        node_hits = []
        candidates = []
        for idx, line in enumerate(stripped_lines):
            if NODE_CONTAINER_RE.search(line):
                node_hits.append(idx)
                continue
            if not HOT_CONTAINER_RE.search(line):
                continue
            if "&" in line:
                continue  # reference/view of an existing container
            candidates.append(idx)

        for idx in node_hits:
            findings.append(
                {
                    "rule": "hot-path-container",
                    "path": rel,
                    "line": idx + 1,
                    "message": "node-based container on the event-loop "
                    "hot path: every lookup chases pointers and every "
                    "insert allocates — use the flat replacements "
                    "(sorted vector, FcfsQueue) this file already "
                    "standardized on (docs/PERFORMANCE.md \"Event-loop "
                    "throughput\")",
                    "excerpt": raw_lines[idx].strip()[:120],
                }
            )

        # Group declaration runs: consecutive candidates at most two
        # lines apart share one justification window.
        runs: list[list[int]] = []
        for idx in candidates:
            if runs and idx - runs[-1][-1] <= 2:
                runs[-1].append(idx)
            else:
                runs.append([idx])
        for run in runs:
            lo = max(0, run[0] - 2)
            hi = min(len(raw_lines), run[-1] + 3)
            if HOT_COLD_CONTEXT_RE.search("\n".join(raw_lines[lo:hi])):
                continue
            for idx in run:
                findings.append(
                    {
                        "rule": "hot-path-container",
                        "path": rel,
                        "line": idx + 1,
                        "message": "container constructed on the "
                        "event-loop hot path: a fresh container per "
                        "event/call is the heap churn this file was "
                        "refactored to eliminate — reuse a "
                        "util::ScratchPool buffer or a hoisted per-run "
                        "local, or mark the site cold in an adjacent "
                        "comment (docs/ARCHITECTURE.md \"Event-loop "
                        "hot path\")",
                        "excerpt": raw_lines[idx].strip()[:120],
                    }
                )
    return findings


def run_rng_entry_rule(files: list[Path], allowlist) -> list[dict]:
    """Pins the sanctioned util::named_stream labels in scoped files.

    Scope: RNG_ENTRY_SCOPE globs (each with its own label set) plus any
    file carrying RNG_ENTRY_MARKER (which gets the default label set).
    Call sites are located on stripped source (prose in comments cannot
    trip the rule), but the label itself lives in a string literal, so it
    is re-read from the raw line."""
    findings = []
    for path in files:
        rel = rel_to_repo(path)
        if is_exempt("rng-entry", rel, allowlist):
            continue
        raw = path.read_text(encoding="utf-8", errors="replace")
        sanctioned = None
        for pattern, labels in RNG_ENTRY_SCOPE.items():
            if fnmatch.fnmatch(rel, pattern):
                sanctioned = labels
                break
        if sanctioned is None and RNG_ENTRY_MARKER in raw:
            sanctioned = RNG_ENTRY_MARKER_LABELS
        if sanctioned is None:
            continue
        raw_lines = raw.splitlines()
        stripped_lines = strip_comments_and_strings(raw).splitlines()
        allowed = ", ".join(sorted(sanctioned))
        for idx, line in enumerate(stripped_lines):
            if NAMED_STREAM_RE.search(line):
                m = NAMED_STREAM_LABEL_RE.search(raw_lines[idx])
                label = m.group(1) if m else None
                if label in sanctioned:
                    continue
                what = (
                    f'unsanctioned stream label "{label}"'
                    if label is not None
                    else "label must be a string literal on the call line"
                )
                findings.append(
                    {
                        "rule": "rng-entry",
                        "path": rel,
                        "line": idx + 1,
                        "message": f"{what}: this file's randomness is "
                        f"pinned to the named streams [{allowed}] so new "
                        "draws can never shift existing replay-stable "
                        "sequences (failure.hpp stream isolation)",
                        "excerpt": raw_lines[idx].strip()[:120],
                    }
                )
            elif RNG_CONSTRUCT_RE.search(line):
                findings.append(
                    {
                        "rule": "rng-entry",
                        "path": rel,
                        "line": idx + 1,
                        "message": "direct Rng construction bypasses the "
                        f"sanctioned named streams [{allowed}] — derive "
                        "the stream with util::named_stream(seed, label) "
                        "and fork() per entity instead",
                        "excerpt": raw_lines[idx].strip()[:120],
                    }
                )
    return findings


def find_compiler() -> list[str] | None:
    for cxx in ("c++", "g++", "clang++"):
        if shutil.which(cxx):
            return [cxx, "-std=c++20", "-fsyntax-only", "-I", str(REPO_ROOT / "src")]
    return None


def run_header_standalone(files: list[Path], allowlist, jobs: int) -> list[dict]:
    base = find_compiler()
    if base is None:
        print(
            "aeva_lint: no C++ compiler found; skipping header-standalone",
            file=sys.stderr,
        )
        return []
    headers = [
        f
        for f in files
        if f.suffix in (".hpp", ".hh", ".h")
        and not is_exempt(
            "header-standalone", rel_to_repo(f), allowlist
        )
    ]

    def check(path: Path):
        proc = subprocess.run(
            base + ["-x", "c++", str(path)],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            first_error = next(
                (l for l in proc.stderr.splitlines() if "error:" in l),
                proc.stderr.strip().splitlines()[0] if proc.stderr.strip() else "?",
            )
            # Report the real line when the first error is in the header
            # itself (not in something it includes), so the JSON line
            # numbers mean the same thing for every rule.
            line = 1
            m = re.match(r"(.+?):(\d+):(?:\d+:)?\s*(?:fatal )?error:", first_error)
            if m and Path(m.group(1)).name == path.name:
                line = int(m.group(2))
            return {
                "rule": "header-standalone",
                "path": rel_to_repo(path),
                "line": line,
                "message": "header does not compile standalone "
                "(include what you use)",
                "excerpt": first_error[:160],
            }
        return None

    with ThreadPoolExecutor(max_workers=jobs) as pool:
        results = list(pool.map(check, headers))
    return [r for r in results if r is not None]


MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_links(path: Path) -> list[tuple[int, str, Path]]:
    """(line, raw target, resolved path) for every relative link in `path`.
    External schemes and pure-anchor links are dropped; #anchors stripped."""
    links = []
    text = path.read_text(encoding="utf-8", errors="replace")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in MD_LINK.finditer(line):
            raw = match.group(1)
            if raw.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = raw.split("#", 1)[0]
            if not target:
                continue
            base = REPO_ROOT if target.startswith("/") else path.parent
            links.append((lineno, raw, (base / target.lstrip("/")).resolve()))
    return links


def run_doc_links() -> list[dict]:
    findings = []
    readme = REPO_ROOT / "README.md"
    docs_dir = REPO_ROOT / "docs"
    doc_files = sorted(docs_dir.rglob("*.md")) if docs_dir.is_dir() else []
    sources = ([readme] if readme.exists() else []) + doc_files

    link_graph: dict[Path, list[Path]] = {}
    for path in sources:
        rel = rel_to_repo(path)
        link_graph[path.resolve()] = []
        for lineno, raw, resolved in markdown_links(path):
            if not resolved.exists():
                findings.append(
                    {
                        "rule": "doc-links",
                        "path": rel,
                        "line": lineno,
                        "message": "relative link target does not exist",
                        "excerpt": raw[:120],
                    }
                )
                continue
            link_graph[path.resolve()].append(resolved)

    # Reachability: walk the markdown link graph from README.md; every page
    # under docs/ must be visited.
    reachable: set[Path] = set()
    stack = [readme.resolve()] if readme.exists() else []
    while stack:
        page = stack.pop()
        if page in reachable:
            continue
        reachable.add(page)
        for target in link_graph.get(page, []):
            if target.suffix == ".md" and target not in reachable:
                stack.append(target)
    for doc in doc_files:
        if doc.resolve() not in reachable:
            findings.append(
                {
                    "rule": "doc-links",
                    "path": rel_to_repo(doc),
                    "line": 1,
                    "message": "not reachable from README.md via markdown "
                    "links (add it to the docs index)",
                    "excerpt": rel_to_repo(doc),
                }
            )
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help="files or directories to lint (default: src)",
    )
    parser.add_argument("--json", metavar="FILE", help="write a JSON report")
    parser.add_argument(
        "--no-compile",
        action="store_true",
        help="skip the header-standalone compile check",
    )
    parser.add_argument(
        "--no-doc-links",
        action="store_true",
        help="skip the documentation link-graph check",
    )
    parser.add_argument(
        "--jobs", type=int, default=8, help="parallel header compiles"
    )
    parser.add_argument(
        "--allowlist",
        default=str(ALLOWLIST_PATH),
        help="allowlist JSON (default: tools/lint/aeva_lint_allowlist.json)",
    )
    args = parser.parse_args()

    allowlist = load_allowlist(Path(args.allowlist))
    files = collect_files(args.paths)

    findings = run_pattern_rules(files, allowlist)
    findings += run_unbounded_queue_rule(files, allowlist)
    findings += run_hot_path_container_rule(files, allowlist)
    findings += run_rng_entry_rule(files, allowlist)
    if not args.no_compile:
        findings += run_header_standalone(files, allowlist, args.jobs)
    if not args.no_doc_links:
        findings += run_doc_links()
    findings.sort(key=lambda f: (f["path"], f["line"], f["rule"]))

    for f in findings:
        print(
            f"{f['path']}:{f['line']}: [{f['rule']}] {f['message']}\n"
            f"    {f['excerpt']}"
        )

    report = {
        "version": 1,
        "checked_files": len(files),
        "finding_count": len(findings),
        "findings": findings,
    }
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")

    if findings:
        print(
            f"aeva_lint: {len(findings)} finding(s) in {len(files)} files",
            file=sys.stderr,
        )
        return 1
    print(f"aeva_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
