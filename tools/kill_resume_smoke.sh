#!/usr/bin/env bash
# Kill-and-resume smoke for process-level durability (docs/RESILIENCE.md,
# "Process-level durability" and "Overload protection").
#
# For each durable binary (the batch simulator, then the serve mode):
#
# 1. Runs it uninterrupted and records its final outputs.
# 2. Starts the same run with periodic checkpointing, waits for a
#    checkpoint file to appear, and SIGKILLs the process mid-run — the
#    crash a snapshot exists to survive.
# 3. Restores from the surviving checkpoint and requires the resumed
#    run's outputs to be byte-identical to the uninterrupted reference
#    (the bit-identical-resume guarantee, end to end through the real
#    binary, the wire format, and a real SIGKILL).
#
# Usage: tools/kill_resume_smoke.sh [build-dir]

set -euo pipefail

build_dir="${1:-build}"
sim="$build_dir/examples/datacenter_sim"
serve="$build_dir/examples/aeva_serve"

for bin in "$sim" "$serve"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (configure + build first)" >&2
    exit 1
  fi
done

# Starts "$@" in the background, waits for checkpoint file $snap to
# appear, then SIGKILLs the process. Fails if the run finishes before a
# checkpoint lands or if no checkpoint survives the kill.
kill_after_first_checkpoint() {
  local snap="$1"
  local log="$2"
  shift 2
  "$@" > "$log" 2>&1 &
  local pid=$!
  # The atomic rename guarantees we only ever observe complete snapshots.
  for _ in $(seq 1 600); do
    if [[ -s "$snap" ]]; then
      break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      break
    fi
    sleep 0.05
  done
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: run finished before a checkpoint was captured" >&2
    cat "$log" >&2
    return 1
  fi
  kill -KILL "$pid"
  wait "$pid" 2>/dev/null || true
  if [[ ! -s "$snap" ]]; then
    echo "FAIL: no checkpoint file survived the kill" >&2
    return 1
  fi
  echo "killed pid $pid; surviving checkpoint: $(stat -c%s "$snap") bytes"
}

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

args=(--vms 2000 --servers 16 --seed 2026)

echo "== reference run (uninterrupted) =="
"$sim" "${args[@]}" --final-metrics-out "$workdir/reference.json" \
  > "$workdir/reference.log"

echo "== checkpointed run, killed mid-flight =="
# --snapshot-sleep-ms stretches wall time at every checkpoint (the
# simulation itself is untouched), so the SIGKILL below reliably lands
# while the run is in progress.
kill_after_first_checkpoint "$workdir/run.snap" "$workdir/killed.log" \
  "$sim" "${args[@]}" --snapshot-every 1500 --snapshot-sleep-ms 250 \
  --snapshot-out "$workdir/run.snap"

echo "== resume from the surviving checkpoint =="
"$sim" "${args[@]}" --restore-from "$workdir/run.snap" \
  --final-metrics-out "$workdir/resumed.json" > "$workdir/resumed.log"

if ! cmp -s "$workdir/reference.json" "$workdir/resumed.json"; then
  echo "FAIL: resumed metrics differ from the uninterrupted reference" >&2
  diff "$workdir/reference.json" "$workdir/resumed.json" >&2 || true
  exit 1
fi

echo "PASS: resumed simulator run is byte-identical to the reference"

# ---------------------------------------------------------------------------
# Serve mode (docs/RESILIENCE.md, "Overload protection"): same contract
# through serve::AllocationService and the AEVASRV wire format — the
# resumed service must reproduce the uninterrupted run's decision log
# AND serve-metrics JSON byte for byte, with crashes, retries and the
# degradation ladder all active across the kill point.

serve_args=(--requests 400 --rate 40 --servers 8 --seed 2026
            --queue-cap 24 --hold-mean 5 --deadline-slack 6 --mtbf 300)

echo "== serve reference run (uninterrupted) =="
"$serve" "${serve_args[@]}" \
  --decision-log "$workdir/serve_reference.log" \
  --serve-metrics-out "$workdir/serve_reference.json" \
  > "$workdir/serve_reference.out"

echo "== checkpointed serve run, killed mid-flight =="
kill_after_first_checkpoint "$workdir/serve.snap" "$workdir/serve_killed.log" \
  "$serve" "${serve_args[@]}" --snapshot-every 1 --snapshot-sleep-ms 250 \
  --snapshot-out "$workdir/serve.snap"

echo "== resume the service from the surviving checkpoint =="
"$serve" "${serve_args[@]}" --restore-from "$workdir/serve.snap" \
  --decision-log "$workdir/serve_resumed.log" \
  --serve-metrics-out "$workdir/serve_resumed.json" \
  > "$workdir/serve_resumed.out"

for out in log json; do
  if ! cmp -s "$workdir/serve_reference.$out" "$workdir/serve_resumed.$out"; then
    echo "FAIL: resumed serve $out differs from the uninterrupted reference" >&2
    diff "$workdir/serve_reference.$out" "$workdir/serve_resumed.$out" >&2 || true
    exit 1
  fi
done

echo "PASS: resumed serve run is byte-identical to the reference"
