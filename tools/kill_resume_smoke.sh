#!/usr/bin/env bash
# Kill-and-resume smoke for process-level durability (docs/RESILIENCE.md,
# "Process-level durability").
#
# 1. Runs datacenter_sim uninterrupted and records its final metrics.
# 2. Starts the same run with periodic checkpointing, waits for a
#    checkpoint file to appear, and SIGKILLs the process mid-run — the
#    crash a snapshot exists to survive.
# 3. Restores from the surviving checkpoint and requires the resumed run's
#    final-metrics JSON to be byte-identical to the uninterrupted
#    reference (the bit-identical-resume guarantee, end to end through the
#    real binary, the wire format, and a real SIGKILL).
#
# Usage: tools/kill_resume_smoke.sh [build-dir]

set -euo pipefail

build_dir="${1:-build}"
sim="$build_dir/examples/datacenter_sim"

if [[ ! -x "$sim" ]]; then
  echo "error: $sim not built (configure + build first)" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

args=(--vms 2000 --servers 16 --seed 2026)

echo "== reference run (uninterrupted) =="
"$sim" "${args[@]}" --final-metrics-out "$workdir/reference.json" \
  > "$workdir/reference.log"

echo "== checkpointed run, killed mid-flight =="
# --snapshot-sleep-ms stretches wall time at every checkpoint (the
# simulation itself is untouched), so the SIGKILL below reliably lands
# while the run is in progress.
"$sim" "${args[@]}" --snapshot-every 1500 --snapshot-sleep-ms 250 \
  --snapshot-out "$workdir/run.snap" > "$workdir/killed.log" 2>&1 &
pid=$!

# Wait for the first checkpoint to land (the atomic rename guarantees we
# only ever observe complete snapshots), then kill without warning.
for _ in $(seq 1 600); do
  if [[ -s "$workdir/run.snap" ]]; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    break
  fi
  sleep 0.05
done
if ! kill -0 "$pid" 2>/dev/null; then
  echo "FAIL: simulation finished before a checkpoint was captured" >&2
  cat "$workdir/killed.log" >&2
  exit 1
fi
kill -KILL "$pid"
wait "$pid" 2>/dev/null || true
if [[ ! -s "$workdir/run.snap" ]]; then
  echo "FAIL: no checkpoint file survived the kill" >&2
  exit 1
fi
echo "killed pid $pid; surviving checkpoint: $(stat -c%s "$workdir/run.snap") bytes"

echo "== resume from the surviving checkpoint =="
"$sim" "${args[@]}" --restore-from "$workdir/run.snap" \
  --final-metrics-out "$workdir/resumed.json" > "$workdir/resumed.log"

if ! cmp -s "$workdir/reference.json" "$workdir/resumed.json"; then
  echo "FAIL: resumed metrics differ from the uninterrupted reference" >&2
  diff "$workdir/reference.json" "$workdir/resumed.json" >&2 || true
  exit 1
fi

echo "PASS: resumed run is byte-identical to the uninterrupted reference"
