#!/usr/bin/env bash
# Seed-sweep smoke for the fault-injection subsystem (docs/RESILIENCE.md).
#
# Runs the failure-resilience bench in --quick mode across 30 seeds and
# checks, per seed, that (a) the run completes, (b) a repeat of the same
# seed is byte-identical (seeded failure sampling is reproducible), and
# (c) every emitted goodput lies in [0, 1]. Catches nondeterminism or
# blow-ups in the failure path that a single fixed-seed test would miss.
#
# Then runs the correlated-failure-domain bench in full mode, whose
# internal 30-seed suite checks that an attached-but-inert topology
# leaves metrics and normalized snapshot bytes identical to the
# topology-free model (the topology-disabled bit-identity gate), plus
# the spread-defense retention gates. The bench exits nonzero if either
# gate fails.
#
# Usage: tools/failure_seed_sweep.sh [build-dir] [iterations]

set -euo pipefail

build_dir="${1:-build}"
iterations="${2:-30}"
bench="$build_dir/bench/extension_failure_resilience"

if [[ ! -x "$bench" ]]; then
  echo "error: $bench not built (configure + build first)" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

for ((seed = 1; seed <= iterations; ++seed)); do
  "$bench" --quick --seed="$seed" > "$workdir/run_a.txt"
  "$bench" --quick --seed="$seed" > "$workdir/run_b.txt"
  if ! cmp -s "$workdir/run_a.txt" "$workdir/run_b.txt"; then
    echo "FAIL: seed $seed is not reproducible" >&2
    diff "$workdir/run_a.txt" "$workdir/run_b.txt" >&2 || true
    exit 1
  fi
  if ! grep -q '^BENCH_JSON ' "$workdir/run_a.txt"; then
    echo "FAIL: seed $seed emitted no BENCH_JSON lines" >&2
    exit 1
  fi
  bad_goodput="$(grep '^BENCH_JSON ' "$workdir/run_a.txt" |
    sed -n 's/.*"goodput":\([0-9.]*\).*/\1/p' |
    awk '$1 < 0 || $1 > 1 { print }')"
  if [[ -n "$bad_goodput" ]]; then
    echo "FAIL: seed $seed produced goodput outside [0, 1]: $bad_goodput" >&2
    exit 1
  fi
  echo "seed $seed: ok"
done

echo "PASS: $iterations seeds reproducible and sane"

domains_bench="$build_dir/bench/failure_domains"
if [[ ! -x "$domains_bench" ]]; then
  echo "error: $domains_bench not built (configure + build first)" >&2
  exit 1
fi

# Full mode arms the 30-seed topology-disabled bit-identity suite; the
# binary itself exits 1 on a gate failure, so a plain run is the check.
"$domains_bench" > "$workdir/domains.txt" || {
  echo "FAIL: failure_domains gates" >&2
  cat "$workdir/domains.txt" >&2
  exit 1
}
if ! grep -q '"bit_identity_gate":true' "$workdir/domains.txt"; then
  echo "FAIL: failure_domains emitted no passing identity-gate record" >&2
  cat "$workdir/domains.txt" >&2
  exit 1
fi

echo "PASS: correlated-domain defense + 30-seed bit-identity gates"
