# Clang thread-safety analysis as a hard gate (docs/STATIC_ANALYSIS.md,
# "Thread-safety annotations").
#
# The shared-state structures (util::ThreadPool, modeldb::EstimateCache
# shards, obs::MetricsRegistry / Histogram stripes / TraceLog, the
# proactive allocator's SearchRuntime) carry clang capability annotations
# via src/util/thread_annotations.hpp. With this gate on, any access to an
# AEVA_GUARDED_BY field outside its lock — on *any* path, not just the
# ones a test happens to exercise — fails the build. This is the static
# side of the race-detection pair; the TSan ctest job is the dynamic side,
# and CI runs both (-DAEVA_SANITIZE=thread plus this gate in the same
# build).
#
# Select with -DAEVA_THREAD_SAFETY=<mode>:
#
#   AUTO  (default) enable when the compiler is clang, silently skip
#         otherwise — gcc has no thread-safety analysis, and the
#         annotation macros already expand to nothing there.
#   ON    require the analysis: clang gets the flags, a non-clang
#         compiler is a configure-time error (what the CI `analyze` job
#         sets, so the gate cannot be skipped by a toolchain mixup).
#   OFF   never add the flags (escape hatch while iterating on clang).
#
# The warnings are promoted with -Werror=thread-safety independently of
# AEVA_WERROR: an unproven lock contract is never just a warning.

set(AEVA_THREAD_SAFETY "AUTO" CACHE STRING
    "Clang -Wthread-safety gate: AUTO | ON | OFF")
set_property(CACHE AEVA_THREAD_SAFETY PROPERTY STRINGS AUTO ON OFF)

if(AEVA_THREAD_SAFETY STREQUAL "OFF")
  # explicitly disabled
elseif(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  add_compile_options(-Wthread-safety -Werror=thread-safety)
  message(STATUS "aeva: clang thread-safety analysis enabled "
                 "(-Wthread-safety -Werror=thread-safety)")
elseif(AEVA_THREAD_SAFETY STREQUAL "ON")
  message(FATAL_ERROR
    "AEVA_THREAD_SAFETY=ON requires clang (compiler is "
    "${CMAKE_CXX_COMPILER_ID}); the thread-safety analysis only exists "
    "there. Configure with -DCMAKE_CXX_COMPILER=clang++ or use AUTO.")
elseif(NOT AEVA_THREAD_SAFETY STREQUAL "AUTO")
  message(FATAL_ERROR "Unknown AEVA_THREAD_SAFETY value: "
                      "${AEVA_THREAD_SAFETY} (expected AUTO, ON, or OFF)")
endif()
