# First-class sanitizer wiring (replaces the ad-hoc CMAKE_CXX_FLAGS the CI
# used to pass). Select with -DAEVA_SANITIZE=<mode>:
#
#   off       (default) no instrumentation
#   address   AddressSanitizer + LeakSanitizer
#   undefined UBSan, non-recoverable (any UB fails the test run)
#   address,undefined    the CI "sanitize" job
#   thread    ThreadSanitizer — the baseline future parallel-search PRs
#             must keep clean (cannot be combined with address)
#   fuzzer    libFuzzer + ASan + UBSan for the fuzz/ harnesses
#             (requires clang; gcc builds get the standalone driver only)
#
# Flags go on every target via add_compile_options/add_link_options, so the
# whole dependency tree is instrumented consistently — mixing instrumented
# and uninstrumented TUs yields false negatives.

set(AEVA_SANITIZE "off" CACHE STRING
    "Sanitizer mode: off | address | undefined | address,undefined | thread | fuzzer")
set_property(CACHE AEVA_SANITIZE PROPERTY STRINGS
    off address undefined "address,undefined" thread fuzzer)

set(AEVA_SANITIZER_AVAILABLE_FOR_FUZZING OFF)

if(NOT AEVA_SANITIZE STREQUAL "off")
  set(_aeva_san_flags "")
  if(AEVA_SANITIZE STREQUAL "address")
    set(_aeva_san_flags -fsanitize=address)
  elseif(AEVA_SANITIZE STREQUAL "undefined")
    # float-cast-overflow is named explicitly because gcc's `undefined`
    # umbrella omits it, and out-of-range double->int casts are exactly the
    # bug class the SWF/model-DB parsers guard against (fuzz/corpus/swf/
    # reject_huge_procs.swf).
    set(_aeva_san_flags -fsanitize=undefined,float-cast-overflow -fno-sanitize-recover=all)
  elseif(AEVA_SANITIZE STREQUAL "address,undefined")
    set(_aeva_san_flags -fsanitize=address,undefined,float-cast-overflow -fno-sanitize-recover=all)
  elseif(AEVA_SANITIZE STREQUAL "thread")
    set(_aeva_san_flags -fsanitize=thread)
  elseif(AEVA_SANITIZE STREQUAL "fuzzer")
    if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
      # fuzzer-no-link instruments everything for coverage feedback; the
      # harness executables add -fsanitize=fuzzer themselves for the driver.
      set(_aeva_san_flags -fsanitize=fuzzer-no-link,address,undefined,float-cast-overflow
                          -fno-sanitize-recover=all)
      set(AEVA_SANITIZER_AVAILABLE_FOR_FUZZING ON)
    else()
      message(WARNING
        "AEVA_SANITIZE=fuzzer needs clang (libFuzzer); building with "
        "ASan+UBSan and the standalone corpus driver instead")
      set(_aeva_san_flags -fsanitize=address,undefined,float-cast-overflow -fno-sanitize-recover=all)
    endif()
  else()
    message(FATAL_ERROR "Unknown AEVA_SANITIZE value: ${AEVA_SANITIZE}")
  endif()

  add_compile_options(${_aeva_san_flags} -fno-omit-frame-pointer -g)
  add_link_options(${_aeva_san_flags})
  message(STATUS "aeva: sanitizers enabled: ${_aeva_san_flags}")
endif()
