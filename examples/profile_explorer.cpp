/// Example: application profiling on the simulated testbed.
///
/// Runs any built-in benchmark (or all of them) solo on an idle server,
/// samples the four subsystem collectors at 1 Hz (mpstat / perfctr /
/// iostat / netstat equivalents), prints the utilization summary, and
/// shows the intensity classification the allocation model keys on.
///
/// Usage: profile_explorer [--app fftw] [--all]

#include <iostream>

#include "profiling/profiler.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"
#include "workload/registry.hpp"

namespace {

void explore(const aeva::profiling::Profiler& profiler,
             const aeva::workload::AppSpec& app) {
  using namespace aeva;
  const profiling::ApplicationProfile profile = profiler.profile(app);
  std::cout << "== " << profile.app_name << " ==\n";
  std::cout << "solo runtime: " << util::format_fixed(profile.runtime_s, 0)
            << " s\n";
  util::TablePrinter table(
      {"subsystem", "mean demand", "peak demand", "intensive?"});
  for (const auto& report : profile.subsystems) {
    const char* unit = "";
    switch (report.subsystem) {
      case workload::Subsystem::kCpu:
        unit = " cores";
        break;
      case workload::Subsystem::kMemory:
        unit = " bw-share";
        break;
      default:
        unit = " MB/s";
        break;
    }
    table.add_row({std::string(workload::to_string(report.subsystem)),
                   util::format_fixed(report.mean_natural, 2) + unit,
                   util::format_fixed(report.peak_natural, 2) + unit,
                   report.intensive ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "model class: " << workload::to_string(profile.mapped_class)
            << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aeva;
  const util::Args args(argc, argv, {"all"});
  const profiling::Profiler profiler;

  if (args.has("all")) {
    for (const workload::AppSpec& app : workload::builtin_apps()) {
      explore(profiler, app);
    }
    return 0;
  }
  const std::string name = args.get_string("app", "fftw");
  explore(profiler, workload::find_app(name));
  std::cout << "available benchmarks:";
  for (const std::string& n : workload::builtin_app_names()) {
    std::cout << " " << n;
  }
  std::cout << "\n";
  return 0;
}
