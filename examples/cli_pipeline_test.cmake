# Drives the aeva_cli pipeline end to end: generate -> clean -> campaign ->
# simulate. Any non-zero exit fails the test.
function(run)
  execute_process(COMMAND ${CLI} ${ARGN} RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "aeva_cli ${ARGN} failed with ${code}")
  endif()
endfunction()

run(generate --out cli_t.swf --jobs 400 --seed 11)
run(clean --in cli_t.swf --out cli_c.swf)
run(campaign --db cli_m.csv --aux cli_a.csv --max-base 8)
run(simulate --db cli_m.csv --aux cli_a.csv --trace cli_c.swf
    --vms 700 --servers 8 --strategy PA-0.5)
