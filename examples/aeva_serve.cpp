/// Example: the long-lived allocation service under open-loop load.
///
/// Builds the empirical model database, generates a deterministic Poisson
/// arrival stream, and drives serve::AllocationService over it with full
/// overload protection: bounded admission queue, deadline-aware admission,
/// the hysteresis degradation ladder, client retries with seeded backoff
/// jitter, and periodic AEVASRV checkpoints (docs/RESILIENCE.md,
/// "Overload protection").
///
/// SIGTERM/SIGINT request a graceful drain: the in-flight decision
/// finishes, the queue is preserved in a final snapshot, and the process
/// exits cleanly; `--restore-from` later resumes it (or a SIGKILLed run)
/// bit-identically — the serve section of tools/kill_resume_smoke.sh
/// `cmp`s the decision log and metrics JSON against an uninterrupted
/// reference run.

#include <chrono>
#include <csignal>
#include <iostream>
#include <thread>

#include "datacenter/failure.hpp"
#include "modeldb/campaign.hpp"
#include "obs/export.hpp"
#include "obs/session.hpp"
#include "persist/serve_snapshot.hpp"
#include "serve/service.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/strings.hpp"

namespace {

// Written only by the signal handler, polled at decision boundaries.
volatile std::sig_atomic_t g_drain_requested = 0;

extern "C" void handle_drain_signal(int) { g_drain_requested = 1; }

aeva::serve::ShedPolicy parse_shed_policy(const std::string& name) {
  using aeva::serve::ShedPolicy;
  if (name == "reject-newest") return ShedPolicy::kRejectNewest;
  if (name == "reject-oldest") return ShedPolicy::kRejectOldest;
  if (name == "reject-by-class") return ShedPolicy::kRejectByClass;
  throw std::invalid_argument("unknown shed policy: " + name);
}

/// Final-report table of serve rejection events by reason, each with its
/// retryable/terminal classification.
std::string reject_reason_table(const aeva::serve::ServeMetrics& m) {
  std::string out;
  for (std::size_t i = 0; i < aeva::core::kRejectReasonCount; ++i) {
    if (m.rejects_by_reason[i] == 0) {
      continue;
    }
    const auto reason = static_cast<aeva::core::RejectReason>(i);
    out += "    ";
    out += aeva::core::to_string(reason);
    out += " (";
    out += aeva::core::retry_class(reason);
    out += "): ";
    out += std::to_string(m.rejects_by_reason[i]);
    out += "\n";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aeva;
  const util::Args args(
      argc, argv,
      "long-lived allocation service with overload protection",
      {
          {"requests", "N", "arrival stream length"},
          {"rate", "rps", "mean arrival rate, requests per sim second"},
          {"servers", "N", "service fleet size"},
          {"seed", "N", "stream + retry-jitter seed"},
          {"queue-cap", "N", "admission queue capacity"},
          {"shed-policy", "NAME",
           "reject-newest | reject-oldest | reject-by-class"},
          {"hold-mean", "seconds",
           "mean residency after placement; <= 0 holds forever"},
          {"deadline-slack", "seconds",
           "mean decision-deadline slack; <= 0 disables deadlines"},
          {"alpha", "A", "proactive energy/performance trade-off"},
          {"incremental", "",
           "answer normal-mode decisions from the cached fleet planner"},
          {"oracle-every", "N",
           "exhaustive oracle cross-check every N decisions; 0 disables"},
          {"oracle-every-s", "seconds",
           "exhaustive oracle cross-check every S sim seconds; 0 disables"},
          {"drift-watermark", "N",
           "oracle divergences tolerated before a full fleet resync"},
          {"no-health", "", "disable the degradation-ladder controller"},
          {"no-retry", "", "disable client-side retries"},
          {"mtbf", "seconds",
           "per-server mean time between crashes; 0 disables"},
          {"failure-script", "path", "scripted fault trace (crash lines)"},
          {"decision-log", "path", "write the rendered decision log"},
          {"serve-metrics-out", "path", "write the serve metrics JSON"},
          {"snapshot-every", "seconds", "periodic AEVASRV checkpointing"},
          {"snapshot-out", "path", "checkpoint target file"},
          {"restore-from", "path", "resume from a checkpoint file"},
          {"snapshot-sleep-ms", "N",
           "hold the process N real ms at every checkpoint (smoke tests)"},
          {"obs", "", "collect and print an observability summary"},
          {"metrics-out", "path", "export the obs metrics as JSON"},
      });
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));

  serve::ArrivalStreamConfig stream_config;
  stream_config.count =
      static_cast<std::size_t>(args.get_int("requests", 2000));
  stream_config.rate_rps = args.get_double("rate", 20.0);
  stream_config.hold_mean_s = args.get_double("hold-mean", 60.0);
  stream_config.deadline_slack_s = args.get_double("deadline-slack", 0.0);

  serve::ServeConfig config;
  config.server_count = static_cast<int>(args.get_int("servers", 60));
  config.seed = seed;
  config.proactive.alpha = args.get_double("alpha", 0.5);
  config.queue.capacity =
      static_cast<std::size_t>(args.get_int("queue-cap", 64));
  config.queue.policy =
      parse_shed_policy(args.get_string("shed-policy", "reject-newest"));
  config.health.enabled = !args.has("no-health");
  config.retry.enabled = !args.has("no-retry");
  config.incremental.enabled = args.has("incremental");
  config.incremental.oracle_every_decisions =
      static_cast<std::uint64_t>(args.get_int("oracle-every", 0));
  config.incremental.oracle_every_s = args.get_double("oracle-every-s", 0.0);
  config.incremental.drift_watermark =
      static_cast<std::uint64_t>(args.get_int("drift-watermark", 1));
  config.failure.mtbf_s = args.get_double("mtbf", 0.0);
  const std::string failure_script = args.get_string("failure-script", "");
  if (!failure_script.empty()) {
    config.failure.script =
        datacenter::read_failure_script_file(failure_script);
  }
  config.failure.enabled =
      config.failure.mtbf_s > 0.0 || !config.failure.script.empty();
  config.failure.seed = seed;
  config.snapshot.every_s = args.get_double("snapshot-every", 0.0);
  config.snapshot.path = args.get_string("snapshot-out", "");
  const long long snapshot_sleep_ms = args.get_int("snapshot-sleep-ms", 0);
  if (snapshot_sleep_ms > 0) {
    config.snapshot.hook =
        [snapshot_sleep_ms](const persist::ServeSnapshot&) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(snapshot_sleep_ms));
        };
  }
  config.stop = [] { return g_drain_requested != 0; };

  obs::ObsConfig obs_config;
  obs_config.metrics_json_path = args.get_string("metrics-out", "");
  obs_config.enabled =
      args.has("obs") || !obs_config.metrics_json_path.empty();
  config.obs = obs::Session::create(obs_config);

  std::signal(SIGTERM, handle_drain_signal);
  std::signal(SIGINT, handle_drain_signal);

  std::cout << "building model database from the testbed campaign...\n";
  modeldb::CampaignConfig campaign_config;
  campaign_config.server = testbed::testbed_server();
  const modeldb::ModelDatabase db =
      modeldb::Campaign(campaign_config).build();

  const std::vector<serve::ServeRequest> stream =
      serve::generate_stream(stream_config, seed);
  std::cout << "serving " << stream.size() << " requests at "
            << util::format_fixed(stream_config.rate_rps, 1)
            << " req/s on " << config.server_count << " servers (queue cap "
            << config.queue.capacity << ", "
            << serve::to_string(config.queue.policy) << ")...\n";

  const serve::AllocationService service(db, config);
  const std::string restore_from = args.get_string("restore-from", "");
  serve::ServeResult result;
  if (!restore_from.empty()) {
    std::cout << "restoring checkpoint " << restore_from << "...\n";
    const persist::ServeSnapshot snapshot =
        persist::read_serve_snapshot_file(restore_from);
    std::cout << "resuming from t=" << util::format_fixed(snapshot.now, 3)
              << " s...\n";
    result = service.resume(stream, snapshot);
  } else {
    result = service.run(stream);
  }

  const serve::ServeMetrics& m = result.metrics;
  std::cout << "\nresults" << (result.drained ? " (drained)" : "") << ":\n"
            << "  duration        : " << util::format_fixed(m.duration_s, 1)
            << " s sim\n"
            << "  offered/placed  : " << m.offered << "/" << m.placed
            << " (goodput " << util::format_fixed(m.goodput_fraction, 3)
            << ")\n"
            << "  queue depth     : mean "
            << util::format_fixed(m.mean_queue_depth, 2) << ", peak "
            << util::format_fixed(m.peak_queue_depth, 0) << "\n"
            << "  decision latency: mean "
            << util::format_fixed(m.mean_decision_latency_s * 1e3, 2)
            << " ms, max "
            << util::format_fixed(m.max_decision_latency_s * 1e3, 2)
            << " ms\n"
            << "  breaker         : " << m.breaker_trips << " trip(s), "
            << m.breaker_rearms << " re-arm(s); time degraded "
            << util::format_fixed(m.time_in_mode_s[1], 1)
            << " s, shedding "
            << util::format_fixed(m.time_in_mode_s[2], 1) << " s\n"
            << "  retries         : " << m.retries << " scheduled, "
            << m.retries_exhausted << " exhausted\n"
            << "  sheds/expired   : " << m.sheds << "/" << m.expired << "\n"
            << "  crashes         : " << m.crashes << " (" << m.groups_lost
            << " groups lost, " << m.restarts << " re-admitted)\n";
  if (config.incremental.enabled) {
    std::cout << "  incremental     : " << m.decisions_incremental
              << " decision(s), " << m.oracle_checks << " oracle check(s), "
              << m.oracle_divergences << " divergence(s), "
              << m.fleet_resyncs << " resync(s)\n";
  }
  std::cout << "  rejections by reason:\n" << reject_reason_table(m);

  const std::string decision_log = args.get_string("decision-log", "");
  if (!decision_log.empty()) {
    util::write_file_atomic(decision_log,
                            serve::render_decision_log(result.log));
    std::cout << "wrote " << decision_log << " (" << result.log.size()
              << " records)\n";
  }
  const std::string metrics_out = args.get_string("serve-metrics-out", "");
  if (!metrics_out.empty()) {
    util::write_file_atomic(metrics_out, serve::serve_metrics_json(m));
    std::cout << "wrote " << metrics_out << "\n";
  }
  if (config.obs != nullptr) {
    std::cout << "\nobservability snapshot:\n"
              << obs::metrics_summary_table(config.obs->metrics().snapshot());
    config.obs->export_files();
    if (!obs_config.metrics_json_path.empty()) {
      std::cout << "wrote " << obs_config.metrics_json_path << "\n";
    }
  }
  return 0;
}
