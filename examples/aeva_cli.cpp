/// aeva_cli — the whole toolchain as one command-line tool.
///
/// Subcommands (first positional argument):
///   campaign  --db model.csv --aux model_aux.csv [--max-base 16]
///             run the benchmarking campaign and persist the model
///   profile   --app fftw
///             profile one benchmark on the simulated testbed
///   generate  --out trace.swf [--jobs 4600] [--span 48000] [--seed 2026]
///             synthesize an EGEE-like SWF trace (with imperfections)
///   clean     --in trace.swf --out clean.swf
///             strip failed/cancelled/anomalous jobs
///   prepare   --in clean.swf --out prepared.swf --db model.csv
///             --aux model_aux.csv [--vms 10000] [--seed 2026]
///             [--chain 0.0]
///             assign profiles/VM counts/QoS and write annotated SWF
///   lookup    --db model.csv --aux model_aux.csv --key 2,3,1
///             query the model: measured / proportional / extrapolated /
///             learned estimates for a (Ncpu,Nmem,Nio) mix
///   simulate  --db model.csv --aux model_aux.csv --trace clean.swf
///             [--prepared] [--strategy PA-0.5] [--servers 60]
///             [--vms 10000] [--backfill 0] [--migrate]
///             run the cloud simulation (with --prepared, --trace is an
///             annotated workload produced by `prepare`)
///
/// Every step consumes the previous step's files, so the paper's pipeline
/// (benchmark → model → trace → clean → prepare → simulate) can be driven
/// exactly as its authors did, from a shell.

#include <iostream>
#include <memory>
#include <string>

#include "core/baselines.hpp"
#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "datacenter/simulator.hpp"
#include "modeldb/campaign.hpp"
#include "modeldb/learned_model.hpp"
#include "profiling/profiler.hpp"
#include "trace/generator.hpp"
#include "trace/prepare.hpp"
#include "trace/prepared_swf.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"
#include "workload/registry.hpp"

namespace {

using namespace aeva;

int usage() {
  std::cerr
      << "usage: aeva_cli <campaign|profile|generate|clean|prepare|lookup|simulate> "
         "[options]\n"
         "  campaign --db FILE --aux FILE [--max-base N] [--no-noise]\n"
         "  profile  --app NAME\n"
         "  generate --out FILE [--jobs N] [--span SECONDS] [--seed N]\n"
         "  clean    --in FILE --out FILE\n"
         "  prepare  --in FILE --out FILE --db FILE --aux FILE [--vms N]\n"
         "           [--seed N] [--chain F]\n"
         "  lookup   --db FILE --aux FILE --key C,M,I\n"
         "  simulate --db FILE --aux FILE --trace FILE [--strategy NAME]\n"
         "           [--servers N] [--vms N] [--seed N] [--backfill N]\n"
         "           [--migrate]\n";
  return 2;
}

int cmd_campaign(const util::Args& args) {
  modeldb::CampaignConfig config;
  config.server = testbed::testbed_server();
  config.max_base_vms = static_cast<int>(args.get_int("max-base", 16));
  config.meter_noise = !args.has("no-noise");
  const modeldb::Campaign campaign(config);
  std::cout << "running base tests (1.." << config.max_base_vms
            << " VMs x 3 classes) and combinations...\n";
  const modeldb::ModelDatabase db = campaign.build();
  const std::string db_path = args.get_string("db", "model.csv");
  const std::string aux_path = args.get_string("aux", "model_aux.csv");
  db.save(db_path, aux_path);
  std::cout << "wrote " << db.size() << " records to " << db_path
            << " and Table-I parameters to " << aux_path << "\n";
  return 0;
}

int cmd_profile(const util::Args& args) {
  const std::string name = args.get_string("app", "fftw");
  const profiling::Profiler profiler;
  const profiling::ApplicationProfile profile =
      profiler.profile(workload::find_app(name));
  util::TablePrinter table({"subsystem", "mean", "peak", "intensive"});
  for (const auto& report : profile.subsystems) {
    table.add_row({std::string(workload::to_string(report.subsystem)),
                   util::format_fixed(report.mean_natural, 2),
                   util::format_fixed(report.peak_natural, 2),
                   report.intensive ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "class: " << workload::to_string(profile.mapped_class)
            << ", solo runtime "
            << util::format_fixed(profile.runtime_s, 0) << " s\n";
  return 0;
}

int cmd_generate(const util::Args& args) {
  trace::GeneratorConfig config;
  config.target_jobs = static_cast<int>(args.get_int("jobs", 4600));
  config.span_s = args.get_double("span", config.span_s);
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2026)));
  const trace::SwfTrace trace = trace::generate_egee_like(config, rng);
  const std::string out = args.get_string("out", "trace.swf");
  trace::write_swf_file(out, trace);
  std::cout << "wrote " << trace.jobs.size() << " jobs to " << out << "\n";
  return 0;
}

int cmd_clean(const util::Args& args) {
  const std::string in = args.get_string("in", "trace.swf");
  const std::string out = args.get_string("out", "clean.swf");
  trace::SwfTrace trace = trace::read_swf_file(in);
  const trace::CleanStats stats = trace::clean(trace);
  trace::write_swf_file(out, trace);
  std::cout << "removed " << stats.failed << " failed, " << stats.cancelled
            << " cancelled, " << stats.anomalies << " anomalies; kept "
            << trace.jobs.size() << " jobs in " << out << "\n";
  return 0;
}

std::unique_ptr<core::Allocator> make_strategy(
    const std::string& name, const modeldb::ModelDatabase& db) {
  if (name == "FF") return std::make_unique<core::FirstFitAllocator>(1);
  if (name == "FF-2") return std::make_unique<core::FirstFitAllocator>(2);
  if (name == "FF-3") return std::make_unique<core::FirstFitAllocator>(3);
  if (name == "BF-2")
    return std::make_unique<core::SlotFitAllocator>(
        core::SlotFitAllocator::Policy::kBestFit, 2);
  if (name == "WF-2")
    return std::make_unique<core::SlotFitAllocator>(
        core::SlotFitAllocator::Policy::kWorstFit, 2);
  if (name == "RAND-2")
    return std::make_unique<core::RandomFitAllocator>(2026, 2);
  if (name == "VEC")
    return std::make_unique<core::VectorFitAllocator>(
        core::VectorFitAllocator::from_registry(1.0));
  core::ProactiveConfig config;
  if (name == "PA-1") {
    config.alpha = 1.0;
  } else if (name == "PA-0") {
    config.alpha = 0.0;
  } else if (name == "PA-0.5") {
    config.alpha = 0.5;
  } else {
    throw std::invalid_argument("unknown strategy: " + name);
  }
  return std::make_unique<core::ProactiveAllocator>(db, config);
}

int cmd_prepare(const util::Args& args) {
  const modeldb::ModelDatabase db = modeldb::ModelDatabase::load(
      args.get_string("db", "model.csv"),
      args.get_string("aux", "model_aux.csv"));
  const trace::SwfTrace raw =
      trace::read_swf_file(args.get_string("in", "clean.swf"));
  trace::PreparationConfig config;
  config.target_total_vms = static_cast<int>(args.get_int("vms", 10000));
  config.workflow_chain_fraction = args.get_double("chain", 0.0);
  for (const workload::ProfileClass profile : workload::kAllProfileClasses) {
    config.solo_time_s[static_cast<std::size_t>(profile)] =
        db.base().of(profile).solo_time_s;
  }
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2026)));
  const trace::PreparedWorkload workload =
      trace::prepare_workload(raw, config, rng);
  const std::string out = args.get_string("out", "prepared.swf");
  trace::write_swf_file(out, trace::prepared_to_swf(workload));
  std::cout << "prepared " << workload.jobs.size() << " jobs ("
            << workload.total_vms << " VMs, CPU/MEM/IO "
            << workload.vm_mix.cpu << "/" << workload.vm_mix.mem << "/"
            << workload.vm_mix.io << ") into " << out << "\n";
  return 0;
}

int cmd_lookup(const util::Args& args) {
  const modeldb::ModelDatabase db = modeldb::ModelDatabase::load(
      args.get_string("db", "model.csv"),
      args.get_string("aux", "model_aux.csv"));
  const std::vector<std::string> parts =
      util::split(args.get_string("key", "1,1,1"), ',');
  if (parts.size() != 3) {
    throw std::invalid_argument("--key expects C,M,I");
  }
  workload::ClassCounts key;
  key.cpu = static_cast<int>(util::parse_int(parts[0]).value_or(-1));
  key.mem = static_cast<int>(util::parse_int(parts[1]).value_or(-1));
  key.io = static_cast<int>(util::parse_int(parts[2]).value_or(-1));

  const modeldb::LearnedModel learned(db);
  util::TablePrinter table({"estimator", "Time(s)", "avgTimeVM(s)",
                            "Energy(kJ)", "MaxPower(W)"});
  const auto put = [&](const char* name, const modeldb::Record& r) {
    table.add_row({name, util::format_fixed(r.time_s, 1),
                   util::format_fixed(r.avg_time_vm_s, 1),
                   util::format_fixed(r.energy_j / 1e3, 1),
                   util::format_fixed(r.max_power_w, 1)});
  };
  std::cout << "key (" << key.cpu << "," << key.mem << "," << key.io
            << ") is " << (db.measured(key) ? "measured" : "off-grid")
            << "\n";
  put("proportional (paper)", db.estimate(key));
  put("edge-slope extrapolated", db.estimate_extrapolated(key));
  put("IDW k-NN", learned.predict(key));
  table.print(std::cout);
  return 0;
}

int cmd_simulate(const util::Args& args) {
  const modeldb::ModelDatabase db = modeldb::ModelDatabase::load(
      args.get_string("db", "model.csv"),
      args.get_string("aux", "model_aux.csv"));
  trace::SwfTrace raw =
      trace::read_swf_file(args.get_string("trace", "clean.swf"));

  trace::PreparedWorkload workload;
  if (args.has("prepared")) {
    workload = trace::swf_to_prepared(raw);
  } else {
    trace::PreparationConfig prep;
    prep.target_total_vms = static_cast<int>(args.get_int("vms", 10000));
    for (const workload::ProfileClass profile :
         workload::kAllProfileClasses) {
      prep.solo_time_s[static_cast<std::size_t>(profile)] =
          db.base().of(profile).solo_time_s;
    }
    util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2026)));
    workload = trace::prepare_workload(raw, prep, rng);
  }

  datacenter::CloudConfig cloud;
  cloud.server_count = static_cast<int>(args.get_int("servers", 60));
  cloud.backfill_window = static_cast<int>(args.get_int("backfill", 0));
  cloud.migration.enabled = args.has("migrate");
  const datacenter::Simulator sim(db, cloud);

  const auto strategy =
      make_strategy(args.get_string("strategy", "PA-0.5"), db);
  const datacenter::SimMetrics m = sim.run(workload, *strategy);

  util::TablePrinter table({"metric", "value"});
  table.add_row({"strategy", strategy->name()});
  table.add_row({"jobs / VMs", std::to_string(m.jobs) + " / " +
                                   std::to_string(m.vms)});
  table.add_row({"makespan (s)", util::format_fixed(m.makespan_s, 0)});
  table.add_row({"energy (MJ)", util::format_fixed(m.energy_j / 1e6, 2)});
  table.add_row(
      {"SLA violations (%)", util::format_fixed(m.sla_violation_pct, 2)});
  table.add_row({"mean response (s)",
                 util::format_fixed(m.mean_response_s, 0)});
  table.add_row({"mean wait (s)", util::format_fixed(m.mean_wait_s, 1)});
  table.add_row({"mean busy servers",
                 util::format_fixed(m.mean_busy_servers, 1)});
  table.add_row({"migrations", std::to_string(m.migrations)});
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv, {"no-noise", "prepared", "migrate"});
    if (args.positional().empty()) {
      return usage();
    }
    const std::string command = args.positional().front();
    if (command == "campaign") return cmd_campaign(args);
    if (command == "profile") return cmd_profile(args);
    if (command == "generate") return cmd_generate(args);
    if (command == "clean") return cmd_clean(args);
    if (command == "prepare") return cmd_prepare(args);
    if (command == "lookup") return cmd_lookup(args);
    if (command == "simulate") return cmd_simulate(args);
    std::cerr << "unknown command: " << command << "\n";
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
