/// Example: trace-driven cloud simulation under a chosen strategy.
///
/// Builds the empirical model database from the (simulated) testbed
/// campaign, synthesizes an EGEE-like workload, and replays it on a cloud
/// of rack servers under one of the paper's allocation strategies.
///
/// Usage:
///   datacenter_sim [--strategy FF|FF-2|FF-3|PA-1|PA-0|PA-0.5]
///                  [--servers 60] [--vms 10000] [--seed 2026]
///                  [--obs] [--trace-out=run.jsonl] [--chrome-out=run.json]
///                  [--metrics-out=metrics.json]
///                  [--snapshot-every=3600] [--snapshot-out=run.snap]
///                  [--restore-from=run.snap]
///                  [--final-metrics-out=final.json]
///                  [--snapshot-sleep-ms=0]
///
/// `--obs`/`--trace-out`/`--chrome-out`/`--metrics-out` turn on the
/// observability layer (docs/OBSERVABILITY.md): `--obs` collects and
/// prints a metrics summary, the `*-out` options export the trace/metrics
/// to files (each implies `--obs`).
///
/// `--snapshot-every` periodically checkpoints the full simulator state to
/// `--snapshot-out` (crash-safe: temp + fsync + rename), and
/// `--restore-from` resumes a killed run from such a checkpoint with
/// bit-identical final metrics (docs/RESILIENCE.md, "Process-level
/// durability"). `--final-metrics-out` writes the run's SimMetrics as
/// round-trip-exact JSON, so a resumed run can be diffed byte-for-byte
/// against an uninterrupted reference (tools/kill_resume_smoke.sh).
/// `--snapshot-sleep-ms` holds the process for N real milliseconds at
/// every checkpoint — the simulation itself is untouched (checkpoints are
/// not events), it only stretches wall time so the smoke test can SIGKILL
/// the process reliably *between* two checkpoints.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "datacenter/simulator.hpp"
#include "modeldb/campaign.hpp"
#include "obs/export.hpp"
#include "obs/session.hpp"
#include "persist/snapshot.hpp"
#include "trace/generator.hpp"
#include "trace/prepare.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/strings.hpp"

namespace {

std::unique_ptr<aeva::core::Allocator> make_strategy(
    const std::string& name, const aeva::modeldb::ModelDatabase& db,
    std::shared_ptr<aeva::obs::Session> obs) {
  using namespace aeva::core;
  if (name == "FF") return std::make_unique<FirstFitAllocator>(1);
  if (name == "FF-2") return std::make_unique<FirstFitAllocator>(2);
  if (name == "FF-3") return std::make_unique<FirstFitAllocator>(3);
  ProactiveConfig config;
  config.obs = std::move(obs);
  if (name == "PA-1") {
    config.alpha = 1.0;
  } else if (name == "PA-0") {
    config.alpha = 0.0;
  } else if (name == "PA-0.5") {
    config.alpha = 0.5;
  } else {
    throw std::invalid_argument("unknown strategy: " + name);
  }
  return std::make_unique<ProactiveAllocator>(db, config);
}

/// Round-trip-exact (%.17g) JSON rendering of every scalar SimMetrics
/// field, in declaration order. Deliberately byte-stable so the
/// kill-and-resume smoke test can `cmp` a resumed run against an
/// uninterrupted reference.
std::string final_metrics_json(const aeva::datacenter::SimMetrics& m) {
  const auto num = [](double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return std::string(buffer);
  };
  std::ostringstream out;
  out << "{\n"
      << "  \"makespan_s\": " << num(m.makespan_s) << ",\n"
      << "  \"energy_j\": " << num(m.energy_j) << ",\n"
      << "  \"sla_violation_pct\": " << num(m.sla_violation_pct) << ",\n"
      << "  \"jobs\": " << m.jobs << ",\n"
      << "  \"vms\": " << m.vms << ",\n"
      << "  \"sla_violations\": " << m.sla_violations << ",\n"
      << "  \"mean_response_s\": " << num(m.mean_response_s) << ",\n"
      << "  \"mean_wait_s\": " << num(m.mean_wait_s) << ",\n"
      << "  \"mean_busy_servers\": " << num(m.mean_busy_servers) << ",\n"
      << "  \"peak_busy_servers\": " << num(m.peak_busy_servers) << ",\n"
      << "  \"servers_powered\": " << m.servers_powered << ",\n"
      << "  \"migrations\": " << m.migrations << ",\n"
      << "  \"migration_transfer_s\": " << num(m.migration_transfer_s)
      << ",\n"
      << "  \"failures\": " << m.failures << ",\n"
      << "  \"vm_restarts\": " << m.vm_restarts << ",\n"
      << "  \"vms_abandoned\": " << m.vms_abandoned << ",\n"
      << "  \"lost_work_s\": " << num(m.lost_work_s) << ",\n"
      << "  \"goodput_fraction\": " << num(m.goodput_fraction) << ",\n"
      << "  \"fallback_allocations\": " << m.fallback_allocations << ",\n"
      << "  \"rejects_by_reason\": {";
  for (std::size_t i = 0; i < aeva::core::kRejectReasonCount; ++i) {
    out << (i == 0 ? "" : ", ") << '"'
        << aeva::core::to_string(static_cast<aeva::core::RejectReason>(i))
        << "\": " << m.rejects_by_reason[i];
  }
  out << "}\n"
      << "}\n";
  return out.str();
}

/// Final-report table of allocator rejection events, one row per reason
/// that fired, with its retryable/terminal classification.
std::string reject_reason_table(const aeva::datacenter::SimMetrics& m) {
  std::ostringstream out;
  std::size_t total = 0;
  for (const std::size_t tally : m.rejects_by_reason) {
    total += tally;
  }
  out << "  rejections      : " << total << " event"
      << (total == 1 ? "" : "s") << "\n";
  for (std::size_t i = 0; i < aeva::core::kRejectReasonCount; ++i) {
    if (m.rejects_by_reason[i] == 0) {
      continue;
    }
    const auto reason = static_cast<aeva::core::RejectReason>(i);
    out << "    " << aeva::core::to_string(reason) << " ("
        << aeva::core::retry_class(reason)
        << "): " << m.rejects_by_reason[i] << "\n";
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aeva;
  const util::Args args(
      argc, argv,
      "trace-driven cloud simulation under one of the paper's strategies",
      {
          {"strategy", "NAME", "FF | FF-2 | FF-3 | PA-1 | PA-0 | PA-0.5"},
          {"servers", "N", "cloud size in rack servers"},
          {"vms", "N", "target workload size in VMs"},
          {"seed", "N", "workload synthesis seed"},
          {"obs", "", "collect and print an observability summary"},
          {"trace-out", "path", "export the event trace as JSONL"},
          {"chrome-out", "path", "export a chrome://tracing trace"},
          {"metrics-out", "path", "export the obs metrics as JSON"},
          {"snapshot-every", "seconds",
           "checkpoint the simulator state periodically"},
          {"snapshot-out", "path", "checkpoint target file"},
          {"restore-from", "path", "resume from a checkpoint file"},
          {"final-metrics-out", "path",
           "write the final SimMetrics as round-trip-exact JSON"},
          {"snapshot-sleep-ms", "N",
           "hold the process N real ms at every checkpoint (smoke tests)"},
      });
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  const std::string strategy_name = args.get_string("strategy", "PA-0.5");
  const int servers = static_cast<int>(args.get_int("servers", 60));
  const int target_vms = static_cast<int>(args.get_int("vms", 10000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
  const double snapshot_every = args.get_double("snapshot-every", 0.0);
  const std::string snapshot_out = args.get_string("snapshot-out", "");
  const std::string restore_from = args.get_string("restore-from", "");
  const std::string final_metrics_out =
      args.get_string("final-metrics-out", "");
  const long long snapshot_sleep_ms = args.get_int("snapshot-sleep-ms", 0);

  obs::ObsConfig obs_config;
  obs_config.trace_jsonl_path = args.get_string("trace-out", "");
  obs_config.chrome_trace_path = args.get_string("chrome-out", "");
  obs_config.metrics_json_path = args.get_string("metrics-out", "");
  obs_config.enabled = args.has("obs") ||
                       !obs_config.trace_jsonl_path.empty() ||
                       !obs_config.chrome_trace_path.empty() ||
                       !obs_config.metrics_json_path.empty();
  const std::shared_ptr<obs::Session> obs = obs::Session::create(obs_config);

  std::cout << "building model database from the testbed campaign...\n";
  modeldb::CampaignConfig campaign_config;
  campaign_config.server = testbed::testbed_server();
  const modeldb::ModelDatabase db =
      modeldb::Campaign(campaign_config).build();
  std::cout << "  " << db.size() << " records, grid extent ("
            << db.grid_extent().cpu << "," << db.grid_extent().mem << ","
            << db.grid_extent().io << ")\n";

  std::cout << "synthesizing and preparing the EGEE-like workload...\n";
  util::Rng rng(seed);
  trace::GeneratorConfig gen;
  trace::SwfTrace raw = trace::generate_egee_like(gen, rng);
  const trace::CleanStats cleaned = trace::clean(raw);
  std::cout << "  cleaned: " << cleaned.failed << " failed, "
            << cleaned.cancelled << " cancelled, " << cleaned.anomalies
            << " anomalies removed; " << raw.jobs.size() << " jobs kept\n";

  trace::PreparationConfig prep;
  prep.target_total_vms = target_vms;
  for (const workload::ProfileClass profile : workload::kAllProfileClasses) {
    prep.solo_time_s[static_cast<std::size_t>(profile)] =
        db.base().of(profile).solo_time_s;
  }
  const trace::PreparedWorkload workload =
      trace::prepare_workload(raw, prep, rng);
  std::cout << "  " << workload.jobs.size() << " job requests, "
            << workload.total_vms << " VMs (CPU/MEM/IO = "
            << workload.vm_mix.cpu << "/" << workload.vm_mix.mem << "/"
            << workload.vm_mix.io << ")\n";

  const auto strategy = make_strategy(strategy_name, db, obs);
  datacenter::CloudConfig cloud;
  cloud.server_count = servers;
  cloud.obs = obs;
  cloud.snapshot.every_s = snapshot_every;
  cloud.snapshot.path = snapshot_out;
  if (snapshot_sleep_ms > 0) {
    cloud.snapshot.hook = [snapshot_sleep_ms](const persist::SimSnapshot&) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(snapshot_sleep_ms));
    };
  }
  const datacenter::Simulator sim(db, cloud);

  datacenter::SimMetrics metrics;
  if (!restore_from.empty()) {
    std::cout << "restoring checkpoint " << restore_from << "...\n";
    const persist::SimSnapshot snapshot =
        persist::read_snapshot_file(restore_from);
    // Re-warm the allocator's estimate caches from the restored fleet so
    // the resumed process does not pay cold-cache latency on its first
    // admissions (the simulation itself is unaffected either way).
    if (const auto* pa =
            dynamic_cast<const core::ProactiveAllocator*>(strategy.get())) {
      const std::size_t warmed = pa->rewarm(
          datacenter::restored_server_states(snapshot, cloud));
      std::cout << "  re-warmed " << warmed << " estimate-cache entries\n";
    }
    std::cout << "resuming strategy " << strategy->name() << " on "
              << servers << " servers from t=" << snapshot.now << " s...\n";
    metrics = sim.resume(workload, *strategy, snapshot);
  } else {
    std::cout << "simulating strategy " << strategy->name() << " on "
              << servers << " servers...\n";
    metrics = sim.run(workload, *strategy);
  }

  std::cout << "\nresults (" << strategy->name() << ", " << servers
            << " servers):\n"
            << "  makespan        : " << util::format_fixed(metrics.makespan_s, 0)
            << " s\n"
            << "  energy          : " << util::format_fixed(metrics.energy_j / 1e6, 2)
            << " MJ\n"
            << "  SLA violations  : "
            << util::format_fixed(metrics.sla_violation_pct, 2) << " % ("
            << metrics.sla_violations << "/" << metrics.vms << " VMs)\n"
            << "  mean response   : "
            << util::format_fixed(metrics.mean_response_s, 0) << " s\n"
            << "  mean wait       : "
            << util::format_fixed(metrics.mean_wait_s, 0) << " s\n"
            << "  busy servers    : mean "
            << util::format_fixed(metrics.mean_busy_servers, 1) << ", peak "
            << util::format_fixed(metrics.peak_busy_servers, 0) << "\n"
            << reject_reason_table(metrics);

  if (obs != nullptr) {
    std::cout << "\nobservability snapshot ("
              << obs->trace().size() << " trace events):\n"
              << obs::metrics_summary_table(obs->metrics().snapshot());
    obs->export_files();
    if (!obs_config.trace_jsonl_path.empty()) {
      std::cout << "wrote " << obs_config.trace_jsonl_path << "\n";
    }
    if (!obs_config.chrome_trace_path.empty()) {
      std::cout << "wrote " << obs_config.chrome_trace_path
                << " (open in chrome://tracing)\n";
    }
    if (!obs_config.metrics_json_path.empty()) {
      std::cout << "wrote " << obs_config.metrics_json_path << "\n";
    }
  }
  if (!final_metrics_out.empty()) {
    util::write_file_atomic(final_metrics_out, final_metrics_json(metrics));
    std::cout << "wrote " << final_metrics_out << "\n";
  }
  return 0;
}
