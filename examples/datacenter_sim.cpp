/// Example: trace-driven cloud simulation under a chosen strategy.
///
/// Builds the empirical model database from the (simulated) testbed
/// campaign, synthesizes an EGEE-like workload, and replays it on a cloud
/// of rack servers under one of the paper's allocation strategies.
///
/// Usage:
///   datacenter_sim [--strategy FF|FF-2|FF-3|PA-1|PA-0|PA-0.5]
///                  [--servers 60] [--vms 10000] [--seed 2026]
///                  [--obs] [--trace-out=run.jsonl] [--chrome-out=run.json]
///                  [--metrics-out=metrics.json]
///
/// The last four turn on the observability layer (docs/OBSERVABILITY.md):
/// `--obs` collects and prints a metrics summary, the `*-out` options
/// export the trace/metrics to files (each implies `--obs`).

#include <iostream>
#include <memory>

#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "datacenter/simulator.hpp"
#include "modeldb/campaign.hpp"
#include "obs/export.hpp"
#include "obs/session.hpp"
#include "trace/generator.hpp"
#include "trace/prepare.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"

namespace {

std::unique_ptr<aeva::core::Allocator> make_strategy(
    const std::string& name, const aeva::modeldb::ModelDatabase& db,
    std::shared_ptr<aeva::obs::Session> obs) {
  using namespace aeva::core;
  if (name == "FF") return std::make_unique<FirstFitAllocator>(1);
  if (name == "FF-2") return std::make_unique<FirstFitAllocator>(2);
  if (name == "FF-3") return std::make_unique<FirstFitAllocator>(3);
  ProactiveConfig config;
  config.obs = std::move(obs);
  if (name == "PA-1") {
    config.alpha = 1.0;
  } else if (name == "PA-0") {
    config.alpha = 0.0;
  } else if (name == "PA-0.5") {
    config.alpha = 0.5;
  } else {
    throw std::invalid_argument("unknown strategy: " + name);
  }
  return std::make_unique<ProactiveAllocator>(db, config);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aeva;
  const util::Args args(argc, argv, {"obs"});
  const std::string strategy_name = args.get_string("strategy", "PA-0.5");
  const int servers = static_cast<int>(args.get_int("servers", 60));
  const int target_vms = static_cast<int>(args.get_int("vms", 10000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));

  obs::ObsConfig obs_config;
  obs_config.trace_jsonl_path = args.get_string("trace-out", "");
  obs_config.chrome_trace_path = args.get_string("chrome-out", "");
  obs_config.metrics_json_path = args.get_string("metrics-out", "");
  obs_config.enabled = args.has("obs") ||
                       !obs_config.trace_jsonl_path.empty() ||
                       !obs_config.chrome_trace_path.empty() ||
                       !obs_config.metrics_json_path.empty();
  const std::shared_ptr<obs::Session> obs = obs::Session::create(obs_config);

  std::cout << "building model database from the testbed campaign...\n";
  modeldb::CampaignConfig campaign_config;
  campaign_config.server = testbed::testbed_server();
  const modeldb::ModelDatabase db =
      modeldb::Campaign(campaign_config).build();
  std::cout << "  " << db.size() << " records, grid extent ("
            << db.grid_extent().cpu << "," << db.grid_extent().mem << ","
            << db.grid_extent().io << ")\n";

  std::cout << "synthesizing and preparing the EGEE-like workload...\n";
  util::Rng rng(seed);
  trace::GeneratorConfig gen;
  trace::SwfTrace raw = trace::generate_egee_like(gen, rng);
  const trace::CleanStats cleaned = trace::clean(raw);
  std::cout << "  cleaned: " << cleaned.failed << " failed, "
            << cleaned.cancelled << " cancelled, " << cleaned.anomalies
            << " anomalies removed; " << raw.jobs.size() << " jobs kept\n";

  trace::PreparationConfig prep;
  prep.target_total_vms = target_vms;
  for (const workload::ProfileClass profile : workload::kAllProfileClasses) {
    prep.solo_time_s[static_cast<std::size_t>(profile)] =
        db.base().of(profile).solo_time_s;
  }
  const trace::PreparedWorkload workload =
      trace::prepare_workload(raw, prep, rng);
  std::cout << "  " << workload.jobs.size() << " job requests, "
            << workload.total_vms << " VMs (CPU/MEM/IO = "
            << workload.vm_mix.cpu << "/" << workload.vm_mix.mem << "/"
            << workload.vm_mix.io << ")\n";

  const auto strategy = make_strategy(strategy_name, db, obs);
  datacenter::CloudConfig cloud;
  cloud.server_count = servers;
  cloud.obs = obs;
  const datacenter::Simulator sim(db, cloud);

  std::cout << "simulating strategy " << strategy->name() << " on "
            << servers << " servers...\n";
  const datacenter::SimMetrics metrics = sim.run(workload, *strategy);

  std::cout << "\nresults (" << strategy->name() << ", " << servers
            << " servers):\n"
            << "  makespan        : " << util::format_fixed(metrics.makespan_s, 0)
            << " s\n"
            << "  energy          : " << util::format_fixed(metrics.energy_j / 1e6, 2)
            << " MJ\n"
            << "  SLA violations  : "
            << util::format_fixed(metrics.sla_violation_pct, 2) << " % ("
            << metrics.sla_violations << "/" << metrics.vms << " VMs)\n"
            << "  mean response   : "
            << util::format_fixed(metrics.mean_response_s, 0) << " s\n"
            << "  mean wait       : "
            << util::format_fixed(metrics.mean_wait_s, 0) << " s\n"
            << "  busy servers    : mean "
            << util::format_fixed(metrics.mean_busy_servers, 1) << ", peak "
            << util::format_fixed(metrics.peak_busy_servers, 0) << "\n";

  if (obs != nullptr) {
    std::cout << "\nobservability snapshot ("
              << obs->trace().size() << " trace events):\n"
              << obs::metrics_summary_table(obs->metrics().snapshot());
    obs->export_files();
    if (!obs_config.trace_jsonl_path.empty()) {
      std::cout << "wrote " << obs_config.trace_jsonl_path << "\n";
    }
    if (!obs_config.chrome_trace_path.empty()) {
      std::cout << "wrote " << obs_config.chrome_trace_path
                << " (open in chrome://tracing)\n";
    }
    if (!obs_config.metrics_json_path.empty()) {
      std::cout << "wrote " << obs_config.metrics_json_path << "\n";
    }
  }
  return 0;
}
