/// The flagship example: regenerate the paper's full evaluation and leave
/// a self-contained report directory behind.
///
/// Runs the benchmarking campaign, the Fig. 2 FFTW calibration sweep, and
/// the Figs. 5–7 strategy comparison on both cloud sizes, then writes
/// `<out>/report.md` plus one CSV per table — everything a reader needs to
/// re-plot the paper.
///
/// Usage: paper_reproduction [--out reproduction] [--vms 10000] [--seed 2026]

#include <iostream>
#include <memory>

#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "datacenter/simulator.hpp"
#include "modeldb/campaign.hpp"
#include "report/report.hpp"
#include "trace/generator.hpp"
#include "trace/prepare.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "workload/registry.hpp"

int main(int argc, char** argv) {
  using namespace aeva;
  const util::Args args(argc, argv);
  const std::string out = args.get_string("out", "reproduction");
  const int target_vms = static_cast<int>(args.get_int("vms", 10000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));

  report::Report doc(
      "Energy-Aware Application-Centric VM Allocation — reproduction run");
  doc.paragraph(
      "Deterministic reproduction of Viswanathan et al. (IPDPS Workshops "
      "2011). Seed: " +
      std::to_string(seed) + ", " + std::to_string(target_vms) +
      " VMs requested.");

  // --- campaign: Table I + Fig. 2 ------------------------------------------
  std::cout << "[1/3] benchmarking campaign...\n";
  modeldb::CampaignConfig campaign_config;
  campaign_config.server = testbed::testbed_server();
  const modeldb::Campaign campaign(campaign_config);
  const modeldb::ModelDatabase db = campaign.build();

  doc.section("Table I — base-test parameters");
  {
    report::Table table("Table I", {"parameter", "CPU", "Memory", "I/O"});
    const auto& b = db.base();
    table.add_row({"OSP*", std::to_string(b.cpu.osp),
                   std::to_string(b.mem.osp), std::to_string(b.io.osp)});
    table.add_row({"OSE*", std::to_string(b.cpu.ose),
                   std::to_string(b.mem.ose), std::to_string(b.io.ose)});
    table.add_row({"T* (s)", util::format_fixed(b.cpu.solo_time_s, 0),
                   util::format_fixed(b.mem.solo_time_s, 0),
                   util::format_fixed(b.io.solo_time_s, 0)});
    table.caption(std::to_string(db.size()) +
                  " database records; combination experiments: " +
                  std::to_string(b.combination_experiment_count()));
    doc.table(std::move(table));
  }

  std::cout << "[2/3] FFTW scaling sweep (Fig. 2)...\n";
  doc.section("Figure 2 — FFTW average execution time");
  {
    report::Table table("Figure 2", {"vms", "avgTimeVM_s", "time_s"});
    int best_n = 1;
    double best = 0.0;
    for (const modeldb::Record& r :
         campaign.scaling_curve(workload::find_app("fftw"), 16)) {
      table.add_row({std::to_string(r.key.total()),
                     util::format_fixed(r.avg_time_vm_s, 1),
                     util::format_fixed(r.time_s, 1)});
      if (best == 0.0 || r.avg_time_vm_s < best) {
        best = r.avg_time_vm_s;
        best_n = r.key.total();
      }
    }
    table.caption("optimal scenario at " + std::to_string(best_n) +
                  " VMs (paper: 9)");
    doc.table(std::move(table));
  }

  // --- evaluation: Figs. 5–7 -------------------------------------------------
  std::cout << "[3/3] datacenter evaluation (Figs. 5-7)...\n";
  util::Rng rng(seed);
  trace::GeneratorConfig gen;
  gen.target_jobs = static_cast<int>(
      static_cast<long long>(gen.target_jobs) * target_vms / 10000);
  trace::SwfTrace raw = trace::generate_egee_like(gen, rng);
  trace::clean(raw);
  trace::PreparationConfig prep;
  prep.target_total_vms = target_vms;
  for (const workload::ProfileClass profile : workload::kAllProfileClasses) {
    prep.solo_time_s[static_cast<std::size_t>(profile)] =
        db.base().of(profile).solo_time_s;
  }
  const trace::PreparedWorkload workload =
      trace::prepare_workload(raw, prep, rng);

  std::vector<std::unique_ptr<core::Allocator>> strategies;
  strategies.push_back(std::make_unique<core::FirstFitAllocator>(1));
  strategies.push_back(std::make_unique<core::FirstFitAllocator>(2));
  strategies.push_back(std::make_unique<core::FirstFitAllocator>(3));
  for (const double alpha : {1.0, 0.0, 0.5}) {
    core::ProactiveConfig config;
    config.alpha = alpha;
    strategies.push_back(
        std::make_unique<core::ProactiveAllocator>(db, config));
  }

  report::Table fig5("Figure 5", {"strategy", "cloud", "makespan_s"});
  report::Table fig6("Figure 6", {"strategy", "cloud", "energy_mj"});
  report::Table fig7("Figure 7", {"strategy", "cloud", "sla_pct"});
  for (const auto& [cloud_name, servers] :
       std::vector<std::pair<std::string, int>>{{"SMALLER", 60},
                                                {"LARGER", 69}}) {
    datacenter::CloudConfig cloud;
    cloud.server_count = servers;
    const datacenter::Simulator sim(db, cloud);
    for (const auto& strategy : strategies) {
      const datacenter::SimMetrics m = sim.run(workload, *strategy);
      fig5.add_row({strategy->name(), cloud_name,
                    util::format_fixed(m.makespan_s, 0)});
      fig6.add_row({strategy->name(), cloud_name,
                    util::format_fixed(m.energy_j / 1e6, 1)});
      fig7.add_row({strategy->name(), cloud_name,
                    util::format_fixed(m.sla_violation_pct, 2)});
    }
  }
  doc.section("Figures 5-7 — makespan, energy, SLA violations");
  doc.table(std::move(fig5));
  doc.table(std::move(fig6));
  doc.table(std::move(fig7));
  doc.paragraph(
      "Headline checks: PROACTIVE up to ~18% shorter makespan vs FF "
      "(paper: 18%), ~12% energy savings vs the FF family (paper: 12%), "
      "fewest SLA violations for PROACTIVE.");

  doc.write(out);
  std::cout << "wrote " << out << "/report.md and " << doc.table_count()
            << " CSV tables\n";
  return 0;
}
