/// Example: capacity planning with the α tradeoff.
///
/// For a pending batch of VM requests, sweeps the optimization goal α from
/// pure performance (0) to pure energy (1) and prints the estimated
/// execution-time / energy frontier together with the consolidation
/// footprint (how many servers each plan powers on). This is the decision
/// support view a datacenter operator would use to pick α.
///
/// Usage: tradeoff_planner [--cpu 4] [--mem 4] [--io 4] [--servers 8]

#include <iostream>
#include <set>

#include "core/proactive.hpp"
#include "modeldb/campaign.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace aeva;
  const util::Args args(argc, argv);
  const int n_cpu = static_cast<int>(args.get_int("cpu", 4));
  const int n_mem = static_cast<int>(args.get_int("mem", 4));
  const int n_io = static_cast<int>(args.get_int("io", 4));
  const int n_servers = static_cast<int>(args.get_int("servers", 8));

  modeldb::CampaignConfig campaign_config;
  campaign_config.server = testbed::testbed_server();
  const modeldb::ModelDatabase db =
      modeldb::Campaign(campaign_config).build();

  std::vector<core::VmRequest> request;
  std::int64_t id = 1;
  for (int i = 0; i < n_cpu; ++i) {
    request.push_back(core::VmRequest{id++, workload::ProfileClass::kCpu,
                                      1e12});
  }
  for (int i = 0; i < n_mem; ++i) {
    request.push_back(core::VmRequest{id++, workload::ProfileClass::kMem,
                                      1e12});
  }
  for (int i = 0; i < n_io; ++i) {
    request.push_back(core::VmRequest{id++, workload::ProfileClass::kIo,
                                      1e12});
  }
  std::vector<core::ServerState> servers;
  for (int s = 0; s < n_servers; ++s) {
    servers.push_back(core::ServerState{s, workload::ClassCounts{}, false});
  }

  std::cout << "planning " << request.size() << " VMs (" << n_cpu << " CPU, "
            << n_mem << " MEM, " << n_io << " IO) on " << n_servers
            << " idle servers\n\n";
  util::TablePrinter table({"alpha", "goal", "est mean time(s)",
                            "est energy(kJ)", "servers used",
                            "partitions examined"});
  for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    core::ProactiveConfig config;
    config.alpha = alpha;
    const core::ProactiveAllocator allocator(db, config);
    const core::AllocationResult result =
        allocator.allocate(request, servers);
    if (!result.complete) {
      table.add_row({util::format_fixed(alpha, 2), "-", "infeasible", "-",
                     "-", std::to_string(result.partitions_examined)});
      continue;
    }
    std::set<int> used;
    for (const core::Placement& p : result.placements) {
      used.insert(p.server_id);
    }
    const char* goal = alpha == 0.0   ? "performance"
                       : alpha == 1.0 ? "energy"
                                      : "tradeoff";
    table.add_row({util::format_fixed(alpha, 2), goal,
                   util::format_fixed(result.score.est_time_s, 0),
                   util::format_fixed(result.score.est_energy_j / 1e3, 0),
                   std::to_string(used.size()),
                   std::to_string(result.partitions_examined)});
  }
  table.print(std::cout);
  std::cout << "\nhigher alpha -> fewer servers powered, longer estimated "
               "times; pick the row matching your SLA headroom.\n";
  return 0;
}
