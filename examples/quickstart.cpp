/// Quickstart: the 60-second tour of the AEVA public API.
///
/// 1. Describe the testbed server and run the benchmarking campaign to
///    build the empirical allocation model (Sect. III-B).
/// 2. Persist / reload the model as CSV, as the paper's toolchain does.
/// 3. Ask the proactive allocator to place a small VM request under an
///    energy, performance, and tradeoff goal, and compare the decisions.

#include <iostream>

#include "bench/harness_common.hpp"
#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "modeldb/campaign.hpp"
#include "util/strings.hpp"
#include "workload/profile.hpp"

int main() {
  using namespace aeva;

  // --- 1. build the empirical model ---------------------------------------
  modeldb::CampaignConfig campaign_config;
  campaign_config.server = testbed::testbed_server();  // Dell/X3220 testbed
  const modeldb::Campaign campaign(campaign_config);
  const modeldb::ModelDatabase db = campaign.build();
  std::cout << "model database: " << db.size() << " measured allocations, "
            << "OSC/OSM/OSI = " << db.base().cpu.os() << "/"
            << db.base().mem.os() << "/" << db.base().io.os() << "\n";

  // --- 2. persist and reload ----------------------------------------------
  // Canonical artifact paths live in bench/harness_common.hpp; setting
  // AEVA_MODEL_CSV_DIR redirects them (reference copies are checked in at
  // the repo root).
  db.save(bench::quickstart_model_csv(), bench::quickstart_model_aux_csv());
  const modeldb::ModelDatabase reloaded = modeldb::ModelDatabase::load(
      bench::quickstart_model_csv(), bench::quickstart_model_aux_csv());
  std::cout << "reloaded from CSV: " << reloaded.size() << " records\n\n";

  // --- 3. allocate a request under different goals -------------------------
  // Two CPU-bound VMs and two I/O-bound VMs; one server already runs a
  // CPU-heavy mix, the other is powered off.
  std::vector<core::VmRequest> request;
  for (int i = 0; i < 2; ++i) {
    request.push_back(
        core::VmRequest{i + 1, workload::ProfileClass::kCpu, 3000.0});
    request.push_back(
        core::VmRequest{i + 3, workload::ProfileClass::kIo, 3000.0});
  }
  std::vector<core::ServerState> servers = {
      core::ServerState{0, workload::ClassCounts{3, 0, 0}, true},
      core::ServerState{1, workload::ClassCounts{0, 0, 0}, false},
  };

  for (const double alpha : {1.0, 0.0, 0.5}) {
    core::ProactiveConfig config;
    config.alpha = alpha;
    const core::ProactiveAllocator allocator(reloaded, config);
    const core::AllocationResult result =
        allocator.allocate(request, servers);
    std::cout << allocator.name() << ": ";
    if (!result.complete) {
      std::cout << "request queued (no QoS-feasible placement)\n";
      continue;
    }
    for (const core::Placement& p : result.placements) {
      std::cout << "vm" << p.vm_id << "->s" << p.server_id << " ";
    }
    std::cout << " | est time "
              << util::format_fixed(result.score.est_time_s, 0)
              << " s, marginal energy "
              << util::format_fixed(result.score.est_energy_j / 1e3, 0)
              << " kJ\n";
  }

  // Baseline for contrast: first-fit is blind to the profiles.
  const core::FirstFitAllocator ff(2);
  const core::AllocationResult ff_result = ff.allocate(request, servers);
  std::cout << "FF-2: ";
  for (const core::Placement& p : ff_result.placements) {
    std::cout << "vm" << p.vm_id << "->s" << p.server_id << " ";
  }
  std::cout << " (packs by CPU slots only)\n";
  return 0;
}
