/// Microbench + regression gate: steady-state event-loop throughput of
/// the datacenter simulator (docs/PERFORMANCE.md "Event-loop throughput").
///
/// Both legs run the *same* refactored event loop — the difference is the
/// allocator call path:
///
///  * **current** — the allocator reads the simulator's incrementally
///    maintained `std::span<const ServerState>` fleet view directly
///    (zero materialization, zero heap traffic per call);
///  * **baseline** — a `MaterializingAllocator` decorator re-creates the
///    pre-refactor call path: every allocate call copies the server span
///    and the request span into freshly constructed vectors (push_back,
///    no reserve — exactly the seed loop's `server_states()` lambda) and
///    receives the result by value in a fresh `AllocationResult`.
///
/// Placement itself uses a deliberately minimal O(1) cursor strategy
/// (probe from `vm_id % n`): a real strategy's own per-call work —
/// FirstFit rebuilds an O(n) free-slots table either way — is identical
/// in both legs and would only mask the call-path delta this bench
/// exists to measure. Both legs place bit-identically (gated), so the
/// event counts agree and the wall-clock ratio is a pure call-path
/// comparison.
///
/// Measurements per leg:
///  * one observability-ON run reads the `sim.events` counter (event
///    counts must match across legs — same simulation);
///  * `--passes` observability-OFF runs are wall-clock timed; the
///    minimum is reported (noise on a shared host only adds latency);
///  * one run arms a global counting `operator new` over the middle
///    55–90 % of accrual intervals (past every capacity high-water
///    mark) and reports heap allocations inside that warm window.
///
/// Hard gates (non-zero exit):
///  1. **Leg parity** — energy/makespan/VM metrics bit-identical across
///     legs, event counts equal.
///  2. **Zero warm allocations (current leg)** — the armed window must
///     count 0 heap allocations (tests/datacenter/zero_alloc_test.cpp
///     pins the same property under FirstFit; this re-checks it at bench
///     scale).
///  3. **Speedup (full mode only)** — current events/sec ≥ 5× the
///     materializing baseline at 10k servers. --quick keeps gates 1–2 on
///     a smaller fleet but skips the speedup gate: smoke runs on loaded
///     CI workers must not flake on noise.
///
/// Usage: event_loop_throughput [--quick] [--servers N] [--bursts N]
///                              [--passes N]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "bench/harness_common.hpp"
#include "util/strings.hpp"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_allocations{0};

void note_allocation() noexcept {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_malloc(std::size_t size) {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* checked_aligned(std::size_t size, std::size_t align) {
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size != 0 ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

// Replaceable global allocation functions ([new.delete]): every heap
// allocation in the binary funnels through these; inert unless armed.
void* operator new(std::size_t size) {
  note_allocation();
  return checked_malloc(size);
}
void* operator new[](std::size_t size) {
  note_allocation();
  return checked_malloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  note_allocation();
  return checked_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  note_allocation();
  return checked_aligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace aeva::bench {
namespace {

/// Full-mode floor on current-vs-materializing events/sec.
constexpr double kSpeedupFloor = 5.0;

/// Minimal O(1) placement: probe forward from `vm_id % n` for a server
/// with a free slot (fixed per-server VM capacity, all-or-nothing per
/// request). Stateless and deterministic, so both legs place identically;
/// warm calls touch only `out.placements` (capacity retained).
class CursorAllocator final : public core::Allocator {
 public:
  explicit CursorAllocator(int capacity) : capacity_(capacity) {}

  [[nodiscard]] core::AllocationResult allocate(
      std::span<const core::VmRequest> vms,
      std::span<const core::ServerState> servers) const override {
    core::AllocationResult result;
    allocate_into(vms, servers, result);
    return result;
  }

  void allocate_into(std::span<const core::VmRequest> vms,
                     std::span<const core::ServerState> servers,
                     core::AllocationResult& out) const override {
    out.placements.clear();
    out.score = core::AllocationScore{};
    out.complete = false;
    out.satisfied_qos = true;
    out.partitions_examined = 0;
    out.outcome = core::AllocationOutcome{};
    if (vms.empty()) {
      out.complete = true;
      return;
    }
    if (servers.empty()) {
      out.outcome = core::AllocationOutcome{core::AllocationPath::kRejected,
                                            core::RejectReason::kNoServers};
      return;
    }
    const std::size_t n = servers.size();
    std::size_t probe = static_cast<std::size_t>(
                            static_cast<std::uint64_t>(vms.front().id)) %
                        n;
    for (const core::VmRequest& vm : vms) {
      bool placed = false;
      for (std::size_t step = 0; step < n; ++step) {
        const core::ServerState& server = servers[probe];
        // Slots already claimed by this call are not yet visible in the
        // span; requests are narrow, so the rescan is O(w).
        int claimed = 0;
        for (const core::Placement& p : out.placements) {
          if (p.server_id == server.id) {
            ++claimed;
          }
        }
        if (server.allocated.total() + claimed < capacity_) {
          out.placements.push_back(core::Placement{vm.id, server.id});
          placed = true;
          break;
        }
        probe = probe + 1 < n ? probe + 1 : 0;
      }
      if (!placed) {
        out.placements.clear();
        out.outcome =
            core::AllocationOutcome{core::AllocationPath::kRejected,
                                    core::RejectReason::kNoFeasibleServer};
        return;
      }
    }
    out.complete = true;
  }

  [[nodiscard]] std::string name() const override { return "cursor"; }

 private:
  int capacity_;
};

/// Pre-refactor call-path emulation: every call materializes the spans
/// into freshly constructed vectors — push_back growth, no reserve, the
/// seed loop's exact `server_states()` idiom — and takes the result by
/// value in a fresh AllocationResult.
class MaterializingAllocator final : public core::Allocator {
 public:
  explicit MaterializingAllocator(const core::Allocator& inner)
      : inner_(inner) {}

  [[nodiscard]] core::AllocationResult allocate(
      std::span<const core::VmRequest> vms,
      std::span<const core::ServerState> servers) const override {
    core::AllocationResult result;
    allocate_into(vms, servers, result);
    return result;
  }

  void allocate_into(std::span<const core::VmRequest> vms,
                     std::span<const core::ServerState> servers,
                     core::AllocationResult& out) const override {
    std::vector<core::ServerState> states;
    for (const core::ServerState& server : servers) {
      states.push_back(server);
    }
    std::vector<core::VmRequest> request(vms.begin(), vms.end());
    out = inner_.allocate(request, states);
  }

  [[nodiscard]] std::string name() const override {
    return inner_.name() + "-materializing";
  }

 private:
  const core::Allocator& inner_;
};

/// Admission-heavy steady workload: `bursts` bursts of `burst` 1-VM jobs,
/// each burst submitted at one instant with one shared runtime scale and
/// profile, so a burst costs one arrival event (with `burst` allocator
/// calls) and — on a lightly loaded fleet where every VM runs solo — one
/// clustered completion event. The inter-burst gap is derived from the
/// database's solo times so concurrency plateaus at ~`target_concurrency`
/// VMs long before the middle of the run.
trace::PreparedWorkload burst_workload(const modeldb::ModelDatabase& db,
                                       int bursts, int burst,
                                       double target_concurrency) {
  util::Rng rng(90210);
  double mean_solo = 0.0;
  for (const workload::ProfileClass profile : workload::kAllProfileClasses) {
    mean_solo += db.base().of(profile).solo_time_s;
  }
  mean_solo /= static_cast<double>(workload::kProfileClassCount);
  // concurrency ≈ burst · mean_runtime / gap, mean scale is 1.25.
  const double gap =
      static_cast<double>(burst) * mean_solo * 1.25 / target_concurrency;

  trace::PreparedWorkload workload;
  long long id = 1;
  double t = 0.0;
  for (int b = 0; b < bursts; ++b) {
    const auto profile = static_cast<workload::ProfileClass>(b % 3);
    const double scale = rng.uniform(0.5, 2.0);
    for (int j = 0; j < burst; ++j) {
      trace::JobRequest job;
      job.id = id++;
      job.submit_s = t;
      job.profile = profile;
      job.vm_count = 1;
      job.runtime_scale = scale;
      job.deadline_s = 1e9;  // throughput is the subject, not SLA misses
      job.max_exec_stretch = 3.0;
      workload.total_vms += 1;
      workload.vm_mix.of(profile) += 1;
      workload.jobs.push_back(job);
    }
    t += rng.exponential(1.0 / gap);
  }
  return workload;
}

struct LegResult {
  std::uint64_t events = 0;
  double energy_j = 0.0;
  double makespan_s = 0.0;
  std::size_t vms = 0;
  double best_seconds = 0.0;
  std::uint64_t warm_allocations = 0;
};

/// Runs one leg: event count (obs ON), `passes` timed runs (obs OFF), and
/// one allocation-counting run armed over intervals [55 %, 90 %).
LegResult run_leg(const modeldb::ModelDatabase& db,
                  const datacenter::CloudConfig& cloud,
                  const trace::PreparedWorkload& workload,
                  const core::Allocator& allocator, int passes,
                  std::size_t total_intervals) {
  LegResult leg;

  datacenter::CloudConfig counted = cloud;
  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  counted.obs = obs::Session::create(obs_config);
  {
    const datacenter::Simulator sim(db, counted);
    const datacenter::SimMetrics metrics = sim.run(workload, allocator);
    leg.events = counted.obs->metrics().counter("sim.events").value();
    leg.energy_j = metrics.energy_j;
    leg.makespan_s = metrics.makespan_s;
    leg.vms = metrics.vms;
  }

  const datacenter::Simulator sim(db, cloud);
  leg.best_seconds = 1e100;
  for (int pass = 0; pass < passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    const datacenter::SimMetrics metrics = sim.run(workload, allocator);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    leg.best_seconds = std::min(leg.best_seconds, elapsed.count());
    if (metrics.energy_j != leg.energy_j) {
      throw std::runtime_error("timed pass diverged from the counted run");
    }
  }

  // Allocation-counting run: arm over the middle of the steady state,
  // past every capacity high-water mark, before teardown.
  const std::size_t arm_at = (total_intervals * 55) / 100;
  const std::size_t disarm_at = (total_intervals * 90) / 100;
  std::size_t interval = 0;
  g_allocations.store(0);
  const datacenter::SimMetrics counted_metrics = sim.run(
      workload, allocator, [&](double, double, const std::vector<double>&) {
        ++interval;
        if (interval == arm_at) {
          g_armed.store(true, std::memory_order_relaxed);
        } else if (interval == disarm_at) {
          g_armed.store(false, std::memory_order_relaxed);
        }
      });
  g_armed.store(false);
  leg.warm_allocations = g_allocations.load();
  if (counted_metrics.energy_j != leg.energy_j) {
    throw std::runtime_error("counting pass diverged from the counted run");
  }
  return leg;
}

int run_main(int argc, char** argv) {
  const util::Args args(
      argc, argv,
      "steady-state event-loop throughput: span call path vs the "
      "pre-refactor materializing call path",
      {
          {"quick", "", "smaller fleet; skips the speedup gate"},
          {"servers", "N", "fleet size"},
          {"bursts", "N", "arrival bursts per run"},
          {"passes", "N", "timed passes per leg (minimum is reported)"},
      });
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  const bool quick = args.has("quick");
  const int servers =
      static_cast<int>(args.get_int("servers", quick ? 1000 : 10000));
  const int bursts = static_cast<int>(args.get_int("bursts", quick ? 200 : 1000));
  const int passes = static_cast<int>(args.get_int("passes", 3));
  const int burst = 16;

  const modeldb::ModelDatabase& db = shared_database();
  datacenter::CloudConfig cloud;
  cloud.server_count = servers;
  const trace::PreparedWorkload workload = burst_workload(
      db, bursts, burst,
      std::min(2000.0, static_cast<double>(servers) / 5.0));

  const CursorAllocator cursor(/*capacity=*/8);
  const MaterializingAllocator materializing(cursor);

  // Interval count for the alloc-counting arm window (leg-independent:
  // both legs run the identical simulation).
  std::size_t total_intervals = 0;
  {
    const datacenter::Simulator sim(db, cloud);
    (void)sim.run(workload, cursor,
                  [&](double, double, const std::vector<double>&) {
                    ++total_intervals;
                  });
  }

  std::cout << "event_loop_throughput: " << servers << " servers, "
            << workload.jobs.size() << " jobs in " << bursts
            << " bursts, " << passes << " timed passes per leg\n";

  const LegResult current =
      run_leg(db, cloud, workload, cursor, passes, total_intervals);
  const LegResult baseline =
      run_leg(db, cloud, workload, materializing, passes, total_intervals);

  bool ok = true;
  if (current.events != baseline.events ||
      current.energy_j != baseline.energy_j ||
      current.makespan_s != baseline.makespan_s ||
      current.vms != baseline.vms) {
    ok = false;
    std::cout << "FAIL: legs diverged (events " << current.events << " vs "
              << baseline.events << ", energy " << current.energy_j << " vs "
              << baseline.energy_j << ") — the materializing decorator must "
              << "be a pure cost wrapper\n";
  }
  if (current.warm_allocations != 0) {
    ok = false;
    std::cout << "FAIL: " << current.warm_allocations
              << " heap allocations inside the warm window — the span call "
              << "path must be allocation-free in steady state\n";
  }

  const double events_per_s_current =
      static_cast<double>(current.events) / current.best_seconds;
  const double events_per_s_baseline =
      static_cast<double>(baseline.events) / baseline.best_seconds;
  const double speedup = events_per_s_current / events_per_s_baseline;
  std::cout << "current:  " << util::format_fixed(events_per_s_current, 0)
            << " events/s, warm allocs " << current.warm_allocations << "\n";
  std::cout << "baseline: " << util::format_fixed(events_per_s_baseline, 0)
            << " events/s, warm allocs " << baseline.warm_allocations << "\n";
  std::cout << "speedup:  " << util::format_fixed(speedup, 2) << "x\n";
  if (!quick && speedup < kSpeedupFloor) {
    ok = false;
    std::cout << "FAIL: speedup " << util::format_fixed(speedup, 2)
              << "x below the " << util::format_fixed(kSpeedupFloor, 1)
              << "x floor\n";
  }
  if (ok) {
    std::cout << "parity + allocation + throughput gates: PASS\n";
  }

  std::string json = "BENCH_JSON {\"bench\":\"event_loop_throughput\"";
  json += ",\"mode\":\"";
  json += quick ? "quick" : "full";
  json += "\"";
  json += ",\"servers\":" + std::to_string(servers);
  json += ",\"jobs\":" + std::to_string(workload.jobs.size());
  json += ",\"events\":" + std::to_string(current.events);
  json += ",\"events_per_s\":" + util::format_fixed(events_per_s_current, 1);
  json += ",\"baseline_events_per_s\":" +
          util::format_fixed(events_per_s_baseline, 1);
  json += ",\"speedup\":" + util::format_fixed(speedup, 3);
  json += ",\"warm_allocs\":" + std::to_string(current.warm_allocations);
  json += ",\"baseline_warm_allocs\":" +
          std::to_string(baseline.warm_allocations);
  json += ",\"pass\":";
  json += ok ? "true" : "false";
  json += "}";
  std::cout << json << "\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace aeva::bench

int main(int argc, char** argv) {
  try {
    return aeva::bench::run_main(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "event_loop_throughput: " << error.what() << "\n";
    return 2;
  }
}
