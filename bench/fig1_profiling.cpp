/// Reproduces **Figure 1** — "Sub-system utilization over time for a
/// CPU-intensive workload (left) and a CPU- cum network-intensive workload
/// (right)": the profiler runs each application solo on the testbed server
/// and samples CPU / memory / disk / network utilization at 1 Hz, then
/// reports the intensity classification.

#include <iostream>

#include "profiling/profiler.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"
#include "workload/registry.hpp"

namespace {

void print_profile(const aeva::profiling::ApplicationProfile& profile) {
  using namespace aeva;
  std::cout << "-- " << profile.app_name << " (solo runtime "
            << util::format_fixed(profile.runtime_s, 0) << " s) --\n";

  // Utilization series, decimated to every 60 s so the table stays
  // readable; the full 1 Hz series backs the numbers.
  util::TablePrinter table(
      {"t(s)", "cpu(%)", "memory(%)", "disk(%)", "network(%)"});
  const auto& cpu = profile.subsystems[0].utilization;
  for (std::size_t i = 0; i < cpu.size(); i += 60) {
    std::vector<std::string> row;
    row.push_back(util::format_fixed(cpu[i].time_s, 0));
    for (const auto& report : profile.subsystems) {
      row.push_back(util::format_fixed(100.0 * report.utilization[i].value, 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "mean demand:";
  for (const auto& report : profile.subsystems) {
    std::cout << "  " << workload::to_string(report.subsystem) << "="
              << util::format_fixed(report.mean_natural, 2)
              << (report.intensive ? "*" : "");
  }
  std::cout << "  (* = intensive)\nintensity labels:";
  for (const workload::Subsystem s : profile.intensive_subsystems()) {
    std::cout << " " << workload::to_string(s) << "-intensive";
  }
  std::cout << "\nmapped model class: "
            << workload::to_string(profile.mapped_class) << "\n\n";
}

}  // namespace

int main() {
  using namespace aeva;
  const profiling::Profiler profiler;

  std::cout << "== Figure 1 (left): CPU-intensive workload ==\n";
  print_profile(profiler.profile(workload::find_app("linpack")));

  std::cout << "== Figure 1 (right): CPU- cum network-intensive workload ==\n";
  print_profile(profiler.profile(workload::find_app("mpicompute")));
  return 0;
}
