/// Extension: fault injection & resilience (docs/RESILIENCE.md).
///
/// The paper's evaluation assumes a fail-free cloud; this harness measures
/// what server failures cost an energy-aware allocator and what recovery
/// buys back. Sweep 1 varies the per-server MTBF on the SMALLER and LARGER
/// clouds and compares the three recovery policies (restart-from-zero,
/// periodic-checkpoint restart, abandon-after-retries) on energy,
/// makespan, SLA, and goodput. Sweep 2 varies the checkpoint period at a
/// fixed MTBF, exposing the classic tradeoff: frequent checkpoints bound
/// the work a crash destroys but tax every VM's progress rate.
///
/// Besides the tables, every data point is emitted as one machine-readable
/// `BENCH_JSON {...}` line for downstream tooling.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness_common.hpp"
#include "core/proactive.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace aeva;

core::ProactiveAllocator make_strategy(const modeldb::ModelDatabase& db) {
  core::ProactiveConfig config;
  config.alpha = 1.0;
  // Exercise the full degradation chain: when crashes mask enough of the
  // cloud the proactive search degrades to first-fit instead of stalling.
  config.degrade_to_first_fit = true;
  return core::ProactiveAllocator(db, config);
}

void print_json(const std::string& sweep, const std::string& cloud,
                datacenter::RecoveryPolicy policy, double mtbf_s,
                double checkpoint_period_s, const datacenter::SimMetrics& m) {
  std::cout << "BENCH_JSON {\"bench\":\"extension_failure_resilience\""
            << ",\"sweep\":\"" << sweep << "\",\"cloud\":\"" << cloud
            << "\",\"policy\":\"" << to_string(policy) << "\",\"mtbf_s\":"
            << util::format_fixed(mtbf_s, 0) << ",\"checkpoint_period_s\":"
            << util::format_fixed(checkpoint_period_s, 0)
            << ",\"makespan_s\":" << util::format_fixed(m.makespan_s, 1)
            << ",\"energy_mj\":" << util::format_fixed(m.energy_j / 1e6, 3)
            << ",\"sla_pct\":" << util::format_fixed(m.sla_violation_pct, 3)
            << ",\"goodput\":" << util::format_fixed(m.goodput_fraction, 5)
            << ",\"failures\":" << m.failures
            << ",\"vm_restarts\":" << m.vm_restarts
            << ",\"vms_abandoned\":" << m.vms_abandoned
            << ",\"lost_work_s\":" << util::format_fixed(m.lost_work_s, 1)
            << ",\"fallback_allocations\":" << m.fallback_allocations
            << "}\n";
}

datacenter::SimMetrics run_one(const modeldb::ModelDatabase& db,
                               const trace::PreparedWorkload& workload,
                               datacenter::CloudConfig cloud,
                               datacenter::RecoveryPolicy policy,
                               double mtbf_s, double checkpoint_period_s,
                               std::uint64_t seed) {
  cloud.failure.enabled = true;
  cloud.failure.mtbf_s = mtbf_s;
  cloud.failure.mttr_s = 1800.0;
  cloud.failure.seed = seed;
  cloud.failure.recovery.policy = policy;
  cloud.failure.recovery.checkpoint_period_s = checkpoint_period_s;
  const datacenter::Simulator sim(db, cloud);
  const core::ProactiveAllocator strategy = make_strategy(db);
  return sim.run(workload, strategy);
}

}  // namespace

/// `--seed=N` re-seeds both the workload and the failure stream (default
/// 2026); `--quick` shrinks the run for the seed-sweep smoke in
/// tools/failure_seed_sweep.sh.
int main(int argc, char** argv) {
  std::uint64_t seed = 2026;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else {
      std::cerr << "usage: " << argv[0] << " [--seed=N] [--quick]\n";
      return 2;
    }
  }

  const modeldb::ModelDatabase& db = bench::shared_database();
  // Moderate load: the cloud has headroom to re-place lost VMs, so policy
  // differences show up in goodput and tail latency, not pure starvation.
  const trace::PreparedWorkload workload =
      bench::standard_workload(db, seed, quick ? 1000 : 4000);

  std::cout << "== Extension: fault injection & resilience (PA-1+FF, "
            << (quick ? "1k" : "4k") << " VMs, seed " << seed << ") ==\n\n";

  const datacenter::RecoveryPolicy policies[] = {
      datacenter::RecoveryPolicy::kRestartFromZero,
      datacenter::RecoveryPolicy::kCheckpointRestart,
      datacenter::RecoveryPolicy::kAbandonAfterRetries,
  };
  std::vector<double> mtbf_sweep_s = {2.0e5, 5.0e5, 1.0e6};
  constexpr double kDefaultPeriodS = 900.0;

  struct CloudCase {
    const char* label;
    datacenter::CloudConfig config;
  };
  std::vector<CloudCase> clouds = {{"SMALLER", bench::smaller_cloud()}};
  if (quick) {
    mtbf_sweep_s = {2.0e5};
  } else {
    clouds.push_back({"LARGER", bench::larger_cloud()});
  }

  for (const CloudCase& cloud : clouds) {
    std::cout << "-- MTBF sweep, " << cloud.label << " cloud ("
              << cloud.config.server_count << " servers, MTTR 1800 s) --\n";
    util::TablePrinter table({"policy", "MTBF(s)", "failures", "restarts",
                              "makespan(s)", "energy(MJ)", "SLA(%)",
                              "goodput"});
    for (const double mtbf : mtbf_sweep_s) {
      for (const datacenter::RecoveryPolicy policy : policies) {
        const datacenter::SimMetrics m = run_one(
            db, workload, cloud.config, policy, mtbf, kDefaultPeriodS, seed);
        table.add_row({to_string(policy), util::format_fixed(mtbf, 0),
                       std::to_string(m.failures),
                       std::to_string(m.vm_restarts),
                       util::format_fixed(m.makespan_s, 0),
                       util::format_fixed(m.energy_j / 1e6, 1),
                       util::format_fixed(m.sla_violation_pct, 2),
                       util::format_fixed(m.goodput_fraction, 4)});
        print_json("mtbf", cloud.label, policy, mtbf, kDefaultPeriodS, m);
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  if (quick) {
    return 0;
  }

  std::cout << "-- checkpoint-period sweep, SMALLER cloud (MTBF 2e5 s, "
               "checkpoint-restart) --\n";
  util::TablePrinter ckpt_table({"period(s)", "failures", "restarts",
                                 "makespan(s)", "energy(MJ)", "SLA(%)",
                                 "goodput", "lost work(s)"});
  for (const double period : {300.0, 900.0, 3600.0, 7200.0}) {
    const datacenter::SimMetrics m = run_one(
        db, workload, bench::smaller_cloud(),
        datacenter::RecoveryPolicy::kCheckpointRestart, 2.0e5, period, seed);
    ckpt_table.add_row({util::format_fixed(period, 0),
                        std::to_string(m.failures),
                        std::to_string(m.vm_restarts),
                        util::format_fixed(m.makespan_s, 0),
                        util::format_fixed(m.energy_j / 1e6, 1),
                        util::format_fixed(m.sla_violation_pct, 2),
                        util::format_fixed(m.goodput_fraction, 4),
                        util::format_fixed(m.lost_work_s, 0)});
    print_json("checkpoint_period", "SMALLER",
               datacenter::RecoveryPolicy::kCheckpointRestart, 2.0e5, period,
               m);
  }
  ckpt_table.print(std::cout);

  std::cout << "\ncheckpoint-restart bounds the work a crash destroys to "
               "one period per VM, so its goodput dominates "
               "restart-from-zero at every MTBF; the period sweep shows "
               "the checkpoint-I/O tax pushing back as snapshots get "
               "frequent.\n";
  return 0;
}
