#pragma once

/// \file harness_common.hpp
/// Shared helpers for the figure/table reproduction binaries: a cached
/// model database (the campaign is deterministic, so all harnesses agree),
/// the standard strategy roster, and the standard workload pipeline.

#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "core/types.hpp"
#include "datacenter/simulator.hpp"
#include "modeldb/campaign.hpp"
#include "modeldb/database.hpp"
#include "obs/session.hpp"
#include "testbed/server_config.hpp"
#include "trace/generator.hpp"
#include "trace/prepare.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"

namespace aeva::bench {

/// Directory where the model-CSV artifacts are written and read back
/// (`model_db.csv`, `quickstart_model.csv` and their `_aux` siblings —
/// reference copies are checked in at the repo root). Defaults to the
/// working directory; override with the `AEVA_MODEL_CSV_DIR` environment
/// variable to redirect every harness at once (README quickstart).
inline std::string model_csv_dir() {
  const char* dir = std::getenv("AEVA_MODEL_CSV_DIR");
  return (dir != nullptr && *dir != '\0') ? std::string(dir)
                                          : std::string(".");
}

/// `model_csv_dir()`-qualified path of one CSV artifact.
inline std::string model_csv_path(std::string_view filename) {
  return model_csv_dir() + "/" + std::string(filename);
}

inline std::string model_db_csv() { return model_csv_path("model_db.csv"); }
inline std::string model_db_aux_csv() {
  return model_csv_path("model_db_aux.csv");
}
inline std::string quickstart_model_csv() {
  return model_csv_path("quickstart_model.csv");
}
inline std::string quickstart_model_aux_csv() {
  return model_csv_path("quickstart_model_aux.csv");
}

/// Builds (once) the model database from the default campaign.
inline const modeldb::ModelDatabase& shared_database() {
  static const modeldb::ModelDatabase db = [] {
    modeldb::CampaignConfig config;
    config.server = testbed::testbed_server();
    config.threads = 0;  // parallel sweep; results are thread-count-invariant
    return modeldb::Campaign(config).build();
  }();
  return db;
}

/// The paper's six strategies (Sect. IV-D) over the given database.
struct StrategyRoster {
  std::vector<std::unique_ptr<core::Allocator>> strategies;

  explicit StrategyRoster(const modeldb::ModelDatabase& db) {
    strategies.push_back(std::make_unique<core::FirstFitAllocator>(1));
    strategies.push_back(std::make_unique<core::FirstFitAllocator>(2));
    strategies.push_back(std::make_unique<core::FirstFitAllocator>(3));
    for (const double alpha : {1.0, 0.0, 0.5}) {
      core::ProactiveConfig config;
      config.alpha = alpha;
      strategies.push_back(
          std::make_unique<core::ProactiveAllocator>(db, config));
    }
  }
};

/// The standard evaluation workload: synthetic EGEE-like trace, cleaned
/// and prepared, requesting ~10,000 VMs (Sect. IV-B/E). `target_vms` lets
/// extension benches scale the load while keeping the trace shape.
inline trace::PreparedWorkload standard_workload(
    const modeldb::ModelDatabase& db, std::uint64_t seed = 2026,
    int target_vms = 10000) {
  util::Rng rng(seed);
  trace::GeneratorConfig gen;
  // Scaling the job count (not truncating the prepared stream) keeps the
  // arrival *density* proportional to the requested VM total.
  gen.target_jobs = static_cast<int>(
      static_cast<long long>(gen.target_jobs) * target_vms / 10000);
  trace::SwfTrace raw = trace::generate_egee_like(gen, rng);
  trace::clean(raw);

  trace::PreparationConfig prep;
  prep.target_total_vms = target_vms;
  for (const workload::ProfileClass profile : workload::kAllProfileClasses) {
    prep.solo_time_s[static_cast<std::size_t>(profile)] =
        db.base().of(profile).solo_time_s;
  }
  return trace::prepare_workload(raw, prep, rng);
}

/// Cloud sizes of Sect. IV-E: SMALLER is the loaded reference, LARGER is
/// over-dimensioned by ~15 %.
inline datacenter::CloudConfig smaller_cloud() {
  datacenter::CloudConfig cloud;
  cloud.server_count = 60;
  return cloud;
}

inline datacenter::CloudConfig larger_cloud() {
  datacenter::CloudConfig cloud;
  cloud.server_count = 69;
  return cloud;
}

/// Boolean flags consumed by `obs_session_from_args` — merge into the
/// flag list passed to util::Args so `--obs` never swallows a positional.
inline std::vector<std::string> obs_flags() { return {"obs"}; }

/// Observability plumbing shared by the harness CLIs
/// (docs/OBSERVABILITY.md): `--obs` enables in-process collection;
/// `--trace-out=<jsonl>`, `--chrome-out=<json>`, `--metrics-out=<json>`
/// set export paths and each implies `--obs`. Returns null (everything
/// disabled, zero overhead) when none of the four appear. Attach the
/// session to CloudConfig::obs and/or ProactiveConfig::obs, run, then call
/// `export_files()` on it.
inline std::shared_ptr<obs::Session> obs_session_from_args(
    const util::Args& args) {
  obs::ObsConfig config;
  config.trace_jsonl_path = args.get_string("trace-out", "");
  config.chrome_trace_path = args.get_string("chrome-out", "");
  config.metrics_json_path = args.get_string("metrics-out", "");
  config.enabled = args.has("obs") || !config.trace_jsonl_path.empty() ||
                   !config.chrome_trace_path.empty() ||
                   !config.metrics_json_path.empty();
  return obs::Session::create(config);
}

}  // namespace aeva::bench
