/// Ablation: parallel memoized allocation search (docs/PERFORMANCE.md).
///
/// Sweeps the ProactiveConfig search-execution knobs — worker threads
/// (1/2/4/8), the sharded estimate memo cache (on/off), and
/// branch-and-bound pruning — over two workloads:
///
///   * `burst`: the paper's request shape, 5 jobs x 4 mixed-profile VMs
///     allocated back-to-back on a rolling 12-server cluster, repeated
///     for a number of rounds (the memo cache persists across calls, as
///     it does inside the simulator);
///   * `large`: one 12-VM mixed request (~6k typed partitions), where
///     pruning carries the win.
///
/// Every variant is checked bit-identically against the `force_serial`
/// reference (placements, exact score doubles, partitions examined); any
/// divergence fails the binary. One `BENCH_JSON {...}` line per variant
/// reports wall time, speedup over the reference, and memo-cache stats.
///
/// Note: speedups reported on single-core machines come from the memo
/// cache and pruning alone; thread fan-out needs real cores.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness_common.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace aeva;

struct Variant {
  std::string name;
  bool force_serial = false;
  int threads = 1;
  bool cache = true;
  bool prune = true;
};

struct Workload {
  std::string name;
  std::vector<std::vector<core::VmRequest>> jobs;
  std::vector<core::ServerState> servers;
  int rounds = 1;
};

// One allocation decision per job on a rolling cluster: committed
// placements load the chosen servers for the jobs that follow, exactly as
// the simulator's admission loop does.
struct RunOutput {
  std::vector<core::AllocationResult> results;
  double wall_ms = 0.0;
  modeldb::EstimateCache::Stats memo;
};

workload::ProfileClass profile_of(const std::vector<core::VmRequest>& job,
                                  std::int64_t vm_id) {
  for (const core::VmRequest& vm : job) {
    if (vm.id == vm_id) {
      return vm.profile;
    }
  }
  std::cerr << "FAIL: placement names unknown vm " << vm_id << "\n";
  std::exit(1);
}

RunOutput run_variant(const modeldb::ModelDatabase& db, const Variant& v,
                      const Workload& w) {
  core::ProactiveConfig config;
  config.alpha = 0.5;
  config.force_serial = v.force_serial;
  config.search_threads = v.threads;
  config.memoize_estimates = v.cache;
  config.prune_search = v.prune;
  const core::ProactiveAllocator allocator(db, config);

  RunOutput out;
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < w.rounds; ++round) {
    std::vector<core::ServerState> servers = w.servers;
    for (const std::vector<core::VmRequest>& job : w.jobs) {
      core::AllocationResult result = allocator.allocate(job, servers);
      for (const core::Placement& p : result.placements) {
        core::ServerState& server =
            servers[static_cast<std::size_t>(p.server_id)];
        ++server.allocated.of(profile_of(job, p.vm_id));
        server.powered = true;
      }
      if (round == 0) {
        out.results.push_back(std::move(result));
      }
    }
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  out.memo = allocator.memo_stats();
  return out;
}

bool identical(const core::AllocationResult& a,
               const core::AllocationResult& b) {
  if (a.complete != b.complete ||
      a.partitions_examined != b.partitions_examined ||
      a.placements.size() != b.placements.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    if (a.placements[i].vm_id != b.placements[i].vm_id ||
        a.placements[i].server_id != b.placements[i].server_id) {
      return false;
    }
  }
  // Bit-exact score doubles: the determinism contract, not a tolerance.
  return a.score.combined == b.score.combined &&
         a.score.est_time_s == b.score.est_time_s &&
         a.score.est_energy_j == b.score.est_energy_j;
}

Workload burst_workload(int rounds) {
  Workload w;
  w.name = "burst";
  w.rounds = rounds;
  std::int64_t id = 1;
  constexpr workload::ProfileClass kShape[4] = {
      workload::ProfileClass::kCpu, workload::ProfileClass::kMem,
      workload::ProfileClass::kIo, workload::ProfileClass::kCpu};
  for (int job = 0; job < 5; ++job) {
    std::vector<core::VmRequest> vms;
    for (const workload::ProfileClass profile : kShape) {
      vms.push_back(core::VmRequest{id++, profile, 1e12});
    }
    w.jobs.push_back(std::move(vms));
  }
  for (int s = 0; s < 12; ++s) {
    core::ServerState server;
    server.id = s;
    if (s % 3 == 0) {
      server.allocated = workload::ClassCounts{1, 1, 0};
      server.powered = true;
    }
    w.servers.push_back(server);
  }
  return w;
}

Workload large_workload(int rounds) {
  Workload w;
  w.name = "large";
  w.rounds = rounds;
  std::vector<core::VmRequest> vms;
  std::int64_t id = 100;
  for (int i = 0; i < 4; ++i) {
    vms.push_back(core::VmRequest{id++, workload::ProfileClass::kCpu, 1e12});
    vms.push_back(core::VmRequest{id++, workload::ProfileClass::kMem, 1e12});
    vms.push_back(core::VmRequest{id++, workload::ProfileClass::kIo, 1e12});
  }
  w.jobs.push_back(std::move(vms));
  for (int s = 0; s < 12; ++s) {
    core::ServerState server;
    server.id = s;
    if (s % 4 == 0) {
      server.allocated = workload::ClassCounts{1, 2, 1};
      server.powered = true;
    }
    w.servers.push_back(server);
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv, {"quick"});
  const bool quick = args.has("quick");
  const int burst_rounds =
      static_cast<int>(args.get_int("rounds", quick ? 5 : 60));
  const int large_rounds = quick ? 1 : 3;

  const modeldb::ModelDatabase& db = bench::shared_database();

  const std::vector<Variant> variants = {
      {"serial_ref", true, 1, false, false},
      {"t1_nocache", false, 1, false, true},
      {"t1_cache", false, 1, true, true},
      {"t2_cache", false, 2, true, true},
      {"t4_cache", false, 4, true, true},
      {"t8_cache", false, 8, true, true},
      {"t4_nocache", false, 4, false, true},
      {"t4_noprune", false, 4, true, false},
  };

  std::cout << "== Ablation: parallel memoized allocation search ==\n\n";

  bool all_identical = true;
  for (const Workload& w :
       {burst_workload(burst_rounds), large_workload(large_rounds)}) {
    std::cout << "-- workload " << w.name << " (" << w.jobs.size()
              << " jobs, " << w.rounds << " rounds) --\n";
    const RunOutput reference = run_variant(db, variants.front(), w);

    util::TablePrinter table({"variant", "threads", "cache", "prune",
                              "wall(ms)", "speedup", "identical"});
    for (const Variant& v : variants) {
      const RunOutput run = run_variant(db, v, w);
      bool same = run.results.size() == reference.results.size();
      for (std::size_t i = 0; same && i < run.results.size(); ++i) {
        same = identical(run.results[i], reference.results[i]);
      }
      all_identical = all_identical && same;

      const double speedup =
          run.wall_ms > 0.0 ? reference.wall_ms / run.wall_ms : 0.0;
      table.add_row({v.name, std::to_string(v.threads),
                     v.cache ? "on" : "off", v.prune ? "on" : "off",
                     util::format_fixed(run.wall_ms, 2),
                     util::format_fixed(speedup, 2), same ? "yes" : "NO"});
      std::cout << "BENCH_JSON {\"bench\":\"ablation_parallel_search\""
                << ",\"workload\":\"" << w.name << "\",\"variant\":\""
                << v.name << "\",\"threads\":" << v.threads
                << ",\"cache\":" << (v.cache ? 1 : 0)
                << ",\"prune\":" << (v.prune ? 1 : 0)
                << ",\"rounds\":" << w.rounds << ",\"wall_ms\":"
                << util::format_fixed(run.wall_ms, 3) << ",\"speedup\":"
                << util::format_fixed(speedup, 3) << ",\"identical\":"
                << (same ? 1 : 0) << ",\"memo_hits\":" << run.memo.hits
                << ",\"memo_misses\":" << run.memo.misses
                << ",\"memo_evictions\":" << run.memo.evictions << "}\n";
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  if (!all_identical) {
    std::cerr << "FAIL: an optimized variant diverged from the serial "
                 "reference\n";
    return 1;
  }
  std::cout << "all variants bit-identical to the serial reference\n";
  return 0;
}
