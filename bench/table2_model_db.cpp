/// Reproduces **Table II** — "Summary of the information stored in the
/// database": runs the full benchmarking campaign (base + combination
/// tests), prints the database schema with sample rows, verifies the
/// O(log num_tests) binary-search access, and writes the CSV + auxiliary
/// files the paper's toolchain stores.

#include <chrono>
#include <iostream>

#include "bench/harness_common.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();

  std::cout << "== Table II: the allocation-model database ==\n\n";
  std::cout << "records: " << db.size() << " (base tests + "
            << db.base().combination_experiment_count()
            << " combination experiments)\n";
  std::cout << "sorted by search key (Ncpu, Nmem, Nio); binary search "
               "O(log num_tests)\n\n";

  const util::CsvTable csv = db.to_csv();
  util::TablePrinter table(csv.header);
  // Print a representative slice: first rows, a mixed block, last rows.
  const std::size_t n = csv.rows.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i < 6 || (i >= n / 2 && i < n / 2 + 6) || i >= n - 3) {
      table.add_row(csv.rows[i]);
    } else if (i == 6 || i == n / 2 + 6) {
      table.add_row(std::vector<std::string>(csv.header.size(), "..."));
    }
  }
  table.print(std::cout);

  // Auxiliary file (Table I parameters).
  std::cout << "\nauxiliary file:\n";
  util::TablePrinter aux({"param", "value"});
  for (const auto& row : db.aux_to_csv().rows) {
    aux.add_row(row);
  }
  aux.print(std::cout);

  // Round-trip through the CSV persistence layer (paths honour
  // AEVA_MODEL_CSV_DIR — see bench/harness_common.hpp).
  db.save(bench::model_db_csv(), bench::model_db_aux_csv());
  const modeldb::ModelDatabase loaded =
      modeldb::ModelDatabase::load(bench::model_db_csv(),
                                   bench::model_db_aux_csv());
  std::cout << "\nCSV round-trip: wrote " << bench::model_db_csv() << " / "
            << bench::model_db_aux_csv() << ", reloaded " << loaded.size()
            << " records\n";

  // Lookup micro-measurement.
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t hits = 0;
  constexpr int kReps = 2000;
  for (int rep = 0; rep < kReps; ++rep) {
    for (const modeldb::Record& r : db.records()) {
      hits += db.find(r.key) != nullptr ? 1 : 0;
    }
  }
  const auto dt = std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::cout << "binary-search lookups: "
            << util::format_fixed(dt / (kReps * db.size()), 1)
            << " ns/lookup over " << hits << " hits\n";
  return 0;
}
