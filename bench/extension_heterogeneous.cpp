/// Extension: heterogeneous server hardware (the paper's future work i —
/// "extending the solution to be aware of and support heterogeneous server
/// hardware").
///
/// Two hardware classes — the Dell/X3220 testbed and an 8-core "bigbox" —
/// each get their own benchmarking campaign and model database. The
/// standard 10,000-VM workload then runs on (a) the homogeneous SMALLER
/// cloud and (b) a mixed fleet with the same nominal core count
/// (40 small + 10 big = 240 cores), under hardware-aware PROACTIVE and a
/// hardware-aware first-fit.

#include <iostream>

#include "bench/harness_common.hpp"
#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& small = bench::shared_database();
  std::cout << "running the bigbox benchmarking campaign...\n";
  modeldb::CampaignConfig big_config;
  big_config.server = testbed::bigbox_server();
  const modeldb::ModelDatabase big = modeldb::Campaign(big_config).build();
  std::cout << "  bigbox OS box: (" << big.base().cpu.os() << ","
            << big.base().mem.os() << "," << big.base().io.os() << ") vs ("
            << small.base().cpu.os() << "," << small.base().mem.os() << ","
            << small.base().io.os() << ") on the testbed class\n\n";

  const trace::PreparedWorkload workload = bench::standard_workload(small);
  const std::vector<const modeldb::ModelDatabase*> dbs = {&small, &big};

  std::cout << "== Extension: heterogeneous fleet (same 240 nominal "
               "cores) ==\n\n";
  util::TablePrinter table({"fleet", "strategy", "makespan(s)",
                            "energy(MJ)", "SLA(%)"});

  // (a) Homogeneous reference: 60 small servers.
  {
    const datacenter::Simulator sim(small, bench::smaller_cloud());
    core::ProactiveConfig config;
    config.alpha = 0.5;
    const core::ProactiveAllocator pa(small, config);
    const datacenter::SimMetrics m = sim.run(workload, pa);
    table.add_row({"60 small", "PA-0.5",
                   util::format_fixed(m.makespan_s, 0),
                   util::format_fixed(m.energy_j / 1e6, 1),
                   util::format_fixed(m.sla_violation_pct, 2)});
  }

  // (b) Mixed fleet: 40 small + 10 big.
  datacenter::CloudConfig mixed;
  mixed.server_count = 50;
  mixed.hardware.assign(50, 0);
  for (int s = 40; s < 50; ++s) {
    mixed.hardware[static_cast<std::size_t>(s)] = 1;
  }
  const datacenter::Simulator sim(dbs, mixed);
  {
    core::ProactiveConfig config;
    config.alpha = 0.5;
    const core::ProactiveAllocator pa(dbs, config);
    const datacenter::SimMetrics m = sim.run(workload, pa);
    table.add_row({"40 small + 10 big", "PA-0.5",
                   util::format_fixed(m.makespan_s, 0),
                   util::format_fixed(m.energy_j / 1e6, 1),
                   util::format_fixed(m.sla_violation_pct, 2)});
  }
  {
    const core::FirstFitAllocator ff(2, std::vector<int>{4, 8});
    const datacenter::SimMetrics m = sim.run(workload, ff);
    table.add_row({"40 small + 10 big", "FF-2 (hw-aware slots)",
                   util::format_fixed(m.makespan_s, 0),
                   util::format_fixed(m.energy_j / 1e6, 1),
                   util::format_fixed(m.sla_violation_pct, 2)});
  }
  table.print(std::cout);

  std::cout << "\nthe model-driven allocator exploits the big boxes' "
               "deeper consolidation headroom (their OS box admits more "
               "VMs per server), keeping makespan at the homogeneous level "
               "with 10 fewer chassis.\n";
  return 0;
}
