/// Extension: cluster power budgeting.
///
/// Sweeps a branch-circuit power cap over the standard workload (SMALLER
/// cloud, PA-0.5 inside the cap guard) and reports the cap → performance
/// frontier: peak draw, makespan, energy, and SLA cost of each budget.
/// The uncapped cloud peaks around 13 kW; tight budgets queue work instead
/// of drawing it.

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench/harness_common.hpp"
#include "core/power_cap.hpp"
#include "core/proactive.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();
  const trace::PreparedWorkload workload = bench::standard_workload(db);
  const datacenter::Simulator sim(db, bench::smaller_cloud());

  std::cout << "== Extension: cluster power cap sweep (SMALLER cloud, "
               "PA-0.5) ==\n\n";
  util::TablePrinter table({"cap(kW)", "peak draw(kW)", "makespan(s)",
                            "energy(MJ)", "SLA(%)"});
  for (const double cap_kw : {8.0, 10.0, 12.0, 1000.0}) {
    core::ProactiveConfig config;
    config.alpha = 0.5;
    const core::PowerCapAllocator guard(
        std::make_unique<core::ProactiveAllocator>(db, config), db,
        cap_kw * 1000.0);
    double peak = 0.0;
    const datacenter::SimMetrics m = sim.run(
        workload, guard, [&](double, double, const std::vector<double>& p) {
          double total = 0.0;
          for (const double w : p) {
            total += w;
          }
          peak = std::max(peak, total);
        });
    table.add_row({cap_kw > 100.0 ? "uncapped"
                                  : util::format_fixed(cap_kw, 1),
                   util::format_fixed(peak / 1000.0, 2),
                   util::format_fixed(m.makespan_s, 0),
                   util::format_fixed(m.energy_j / 1e6, 1),
                   util::format_fixed(m.sla_violation_pct, 2)});
  }
  table.print(std::cout);
  std::cout << "\ntighter budgets hold the peak under the cap by queueing "
               "work: fewer concurrently-busy servers even shave total "
               "energy (less idle-baseline burn) while makespan and SLA "
               "absorb the constraint.\n";
  return 0;
}
