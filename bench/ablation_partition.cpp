/// Ablation microbenchmarks (google-benchmark): cost of the partition
/// search machinery — Orlov set-partition generation, the typed
/// (multiset) quotient enumeration the allocator actually uses, and
/// end-to-end allocator latency per job request.

#include <benchmark/benchmark.h>

#include "bench/harness_common.hpp"
#include "core/proactive.hpp"
#include "partition/set_partition.hpp"
#include "partition/typed_partition.hpp"

namespace {

using namespace aeva;

void BM_OrlovSetPartitions(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t total = 0;
  for (auto _ : state) {
    partition::SetPartitionGenerator gen(n);
    std::uint64_t count = 1;
    while (gen.next()) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
    total += count;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  state.counters["bell"] = static_cast<double>(partition::bell_number(n));
}
BENCHMARK(BM_OrlovSetPartitions)->Arg(6)->Arg(9)->Arg(12);

void BM_TypedPartitions(benchmark::State& state) {
  const int per_class = static_cast<int>(state.range(0));
  const workload::ClassCounts total{per_class, per_class, per_class};
  std::uint64_t visited_total = 0;
  for (auto _ : state) {
    const std::size_t visited = partition::count_typed_partitions(
        total, [](const workload::ClassCounts&) { return true; });
    benchmark::DoNotOptimize(visited);
    visited_total += visited;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(visited_total));
}
BENCHMARK(BM_TypedPartitions)->Arg(2)->Arg(3)->Arg(4);

void BM_AllocatorLatency(benchmark::State& state) {
  const modeldb::ModelDatabase& db = bench::shared_database();
  core::ProactiveConfig config;
  config.alpha = 0.5;
  const core::ProactiveAllocator allocator(db, config);

  const int job_vms = static_cast<int>(state.range(0));
  std::vector<core::VmRequest> vms;
  for (int i = 0; i < job_vms; ++i) {
    core::VmRequest vm;
    vm.id = i + 1;
    vm.profile = workload::kAllProfileClasses[static_cast<std::size_t>(i) % 3];
    vms.push_back(vm);
  }
  std::vector<core::ServerState> servers;
  for (int s = 0; s < 60; ++s) {
    core::ServerState server;
    server.id = s;
    if (s % 3 == 0) {
      server.allocated = workload::ClassCounts{1, 1, 0};
      server.powered = true;
    }
    servers.push_back(server);
  }
  for (auto _ : state) {
    const core::AllocationResult result = allocator.allocate(vms, servers);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AllocatorLatency)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
