/// Extension: correlated failure domains (docs/RESILIENCE.md).
///
/// Sweeps the correlated (PDU feed) MTBF on the synthetic rack/PDU/ToR
/// topology and compares rack-spread placement against unconstrained
/// packing. Two hard gates fail the binary (exit 1):
///
///   1. Blast-radius defense must be close to free: at every swept MTBF,
///      spread-on retains >= 0.85 of spread-off goodput while spending
///      <= 5% extra energy.
///   2. The subsystem must be inert when unused: attaching a topology
///      with every domain process disabled leaves a fault-injected run
///      bit-identical to the no-topology run — metrics AND snapshot
///      bytes (fingerprints normalized; topology identity is mixed into
///      the config fingerprint on purpose) — across a 30-seed suite.
///
/// Every data point is also emitted as one machine-readable
/// `BENCH_JSON {...}` line for downstream tooling.
///
/// Usage: failure_domains [--seed=N] [--quick]
///   --quick shrinks the workload and the bit-identity suite for the CI
///   smoke; both gates stay armed.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness_common.hpp"
#include "core/proactive.hpp"
#include "datacenter/topology.hpp"
#include "persist/snapshot.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace aeva;

constexpr double kGoodputRetentionFloor = 0.85;
constexpr double kEnergyOverheadCeiling = 1.05;

core::ProactiveAllocator make_strategy(const modeldb::ModelDatabase& db,
                                       const core::SpreadConfig* spread) {
  core::ProactiveConfig config;
  config.alpha = 1.0;
  config.degrade_to_first_fit = true;  // the fallback leg inherits spread
  if (spread != nullptr) {
    config.spread = *spread;
  }
  return core::ProactiveAllocator(db, config);
}

datacenter::SimMetrics run_faulted(const modeldb::ModelDatabase& db,
                                   const trace::PreparedWorkload& workload,
                                   const datacenter::Topology& topo,
                                   double pdu_mtbf_s, bool spread_on,
                                   const core::SpreadConfig& spread,
                                   std::uint64_t seed) {
  datacenter::CloudConfig cloud = bench::smaller_cloud();
  cloud.failure.enabled = true;
  cloud.failure.seed = seed;
  cloud.failure.topology = &topo;
  cloud.failure.domains.pdu_mtbf_s = pdu_mtbf_s;
  cloud.failure.domains.pdu_mttr_s = 1800.0;
  cloud.failure.recovery.policy =
      datacenter::RecoveryPolicy::kCheckpointRestart;
  cloud.failure.recovery.checkpoint_period_s = 900.0;
  const datacenter::Simulator sim(db, cloud);
  const core::ProactiveAllocator strategy =
      make_strategy(db, spread_on ? &spread : nullptr);
  return sim.run(workload, strategy);
}

void print_json(double pdu_mtbf_s, bool spread_on,
                const datacenter::SimMetrics& m) {
  std::cout << "BENCH_JSON {\"bench\":\"failure_domains\""
            << ",\"sweep\":\"pdu_mtbf\",\"pdu_mtbf_s\":"
            << util::format_fixed(pdu_mtbf_s, 0) << ",\"spread\":"
            << (spread_on ? "true" : "false")
            << ",\"makespan_s\":" << util::format_fixed(m.makespan_s, 1)
            << ",\"energy_mj\":" << util::format_fixed(m.energy_j / 1e6, 3)
            << ",\"sla_pct\":" << util::format_fixed(m.sla_violation_pct, 3)
            << ",\"goodput\":" << util::format_fixed(m.goodput_fraction, 5)
            << ",\"correlated_failures\":" << m.correlated_failures
            << ",\"blast_radius_vms_max\":" << m.blast_radius_vms_max
            << ",\"blast_radius_vms_mean\":"
            << util::format_fixed(m.blast_radius_vms_mean, 3)
            << ",\"lost_work_correlated_s\":"
            << util::format_fixed(m.lost_work_correlated_s, 1)
            << ",\"lost_work_s\":" << util::format_fixed(m.lost_work_s, 1)
            << "}\n";
}

/// Bitwise equality over every SimMetrics field the golden 30-seed suite
/// tracks (==, never near: the gate is identity, not accuracy).
bool metrics_identical(const datacenter::SimMetrics& a,
                       const datacenter::SimMetrics& b) {
  return a.energy_j == b.energy_j && a.makespan_s == b.makespan_s &&
         a.mean_response_s == b.mean_response_s &&
         a.mean_wait_s == b.mean_wait_s && a.jobs == b.jobs &&
         a.vms == b.vms && a.sla_violations == b.sla_violations &&
         a.servers_powered == b.servers_powered &&
         a.failures == b.failures && a.vm_restarts == b.vm_restarts &&
         a.lost_work_s == b.lost_work_s &&
         a.goodput_fraction == b.goodput_fraction &&
         a.correlated_failures == b.correlated_failures &&
         a.lost_work_correlated_s == b.lost_work_correlated_s;
}

/// Encodes with both fingerprints zeroed: topology identity is
/// deliberately part of the config fingerprint, and this gate compares
/// the *state*, not the identity.
std::string normalized_bytes(persist::SimSnapshot snapshot) {
  snapshot.workload_fingerprint = 0;
  snapshot.config_fingerprint = 0;
  return persist::encode_snapshot(snapshot);
}

/// Gate 2: per-server fault sampling plus snapshotting, with and without
/// an (inert) topology attached. Returns the number of divergent seeds.
int bit_identity_failures(const modeldb::ModelDatabase& db,
                          const datacenter::Topology& topo, int seeds) {
  int divergent = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    const trace::PreparedWorkload workload = bench::standard_workload(
        db, static_cast<std::uint64_t>(seed), 300);
    datacenter::CloudConfig plain = bench::smaller_cloud();
    plain.failure.enabled = true;
    plain.failure.mtbf_s = 2.0e5;
    plain.failure.mttr_s = 1800.0;
    plain.failure.seed = static_cast<std::uint64_t>(seed);

    datacenter::CloudConfig with_topo = plain;
    with_topo.failure.topology = &topo;  // every domain process disabled

    std::vector<std::string> plain_snaps;
    std::vector<std::string> topo_snaps;
    plain.snapshot.every_s = 20000.0;
    plain.snapshot.hook = [&](const persist::SimSnapshot& s) {
      plain_snaps.push_back(normalized_bytes(s));
    };
    with_topo.snapshot.every_s = 20000.0;
    with_topo.snapshot.hook = [&](const persist::SimSnapshot& s) {
      topo_snaps.push_back(normalized_bytes(s));
    };

    const core::ProactiveAllocator strategy = make_strategy(db, nullptr);
    const datacenter::SimMetrics a =
        datacenter::Simulator(db, plain).run(workload, strategy);
    const datacenter::SimMetrics b =
        datacenter::Simulator(db, with_topo).run(workload, strategy);
    const bool same =
        metrics_identical(a, b) && plain_snaps == topo_snaps &&
        !plain_snaps.empty();
    if (!same) {
      ++divergent;
      std::cout << "  seed " << seed << ": DIVERGED (snapshots "
                << plain_snaps.size() << "/" << topo_snaps.size() << ")\n";
    }
  }
  return divergent;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 2026;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else {
      std::cerr << "usage: " << argv[0] << " [--seed=N] [--quick]\n";
      return 2;
    }
  }

  const modeldb::ModelDatabase& db = bench::shared_database();
  const trace::PreparedWorkload workload =
      bench::standard_workload(db, seed, quick ? 800 : 3000);

  // SMALLER-cloud layout: 6 racks of 10 servers, 2 racks per PDU feed
  // (3 feeds), one ToR per rack.
  datacenter::SyntheticTopologyConfig layout;
  layout.server_count = 60;
  layout.servers_per_rack = 10;
  layout.racks_per_pdu = 2;
  layout.racks_per_tor = 1;
  const datacenter::Topology topo =
      datacenter::make_synthetic_topology(layout);
  // Per-job cap of 3 VMs per rack plus a mild blast-radius penalty: wide
  // jobs span racks, so one feed fault cannot take a whole group.
  const core::SpreadConfig spread = datacenter::spread_by_rack(topo, 3, 0.1);

  std::cout << "== Extension: correlated failure domains (PA-1+FF, "
            << (quick ? "800" : "3000") << " VMs, seed " << seed << ") ==\n\n"
            << "-- PDU-MTBF sweep, SMALLER cloud (6 racks / 3 feeds, "
               "MTTR 1800 s, checkpoint-restart) --\n";

  std::vector<double> mtbf_sweep_s = {3.0e4, 1.0e5};
  if (quick) {
    mtbf_sweep_s = {3.0e4};
  }

  util::TablePrinter table({"MTBF(s)", "spread", "corr. faults",
                            "blast max", "blast mean", "lost corr.(s)",
                            "makespan(s)", "energy(MJ)", "goodput"});
  bool defense_gate_ok = true;
  std::vector<std::string> gate_lines;
  for (const double mtbf : mtbf_sweep_s) {
    datacenter::SimMetrics off;
    datacenter::SimMetrics on;
    for (const bool spread_on : {false, true}) {
      const datacenter::SimMetrics m = run_faulted(
          db, workload, topo, mtbf, spread_on, spread, seed);
      (spread_on ? on : off) = m;
      table.add_row({util::format_fixed(mtbf, 0), spread_on ? "on" : "off",
                     std::to_string(m.correlated_failures),
                     std::to_string(m.blast_radius_vms_max),
                     util::format_fixed(m.blast_radius_vms_mean, 2),
                     util::format_fixed(m.lost_work_correlated_s, 0),
                     util::format_fixed(m.makespan_s, 0),
                     util::format_fixed(m.energy_j / 1e6, 1),
                     util::format_fixed(m.goodput_fraction, 4)});
      print_json(mtbf, spread_on, m);
    }
    const double retention = on.goodput_fraction / off.goodput_fraction;
    const double overhead = on.energy_j / off.energy_j;
    const bool ok = retention >= kGoodputRetentionFloor &&
                    overhead <= kEnergyOverheadCeiling;
    defense_gate_ok = defense_gate_ok && ok;
    gate_lines.push_back(
        "MTBF " + util::format_fixed(mtbf, 0) + ": goodput retention " +
        util::format_fixed(retention, 4) + " (floor 0.85), energy ratio " +
        util::format_fixed(overhead, 4) + " (ceiling 1.05) -> " +
        (ok ? "PASS" : "FAIL"));
  }
  table.print(std::cout);
  std::cout << '\n';
  for (const std::string& line : gate_lines) {
    std::cout << "gate[defense] " << line << '\n';
  }

  const int identity_seeds = quick ? 6 : 30;
  std::cout << "\n-- bit-identity gate: inert topology, " << identity_seeds
            << " seeds (metrics + normalized snapshots) --\n";
  const int divergent = bit_identity_failures(db, topo, identity_seeds);
  const bool identity_gate_ok = divergent == 0;
  std::cout << "gate[bit-identity] " << (identity_seeds - divergent) << "/"
            << identity_seeds << " seeds identical -> "
            << (identity_gate_ok ? "PASS" : "FAIL") << '\n';
  std::cout << "BENCH_JSON {\"bench\":\"failure_domains\""
            << ",\"sweep\":\"gates\",\"defense_gate\":"
            << (defense_gate_ok ? "true" : "false")
            << ",\"bit_identity_gate\":"
            << (identity_gate_ok ? "true" : "false")
            << ",\"identity_seeds\":" << identity_seeds << "}\n";

  if (!defense_gate_ok || !identity_gate_ok) {
    std::cerr << "failure_domains: gate failure\n";
    return 1;
  }
  std::cout << "\nspreading a job across racks bounds what one feed fault "
               "can destroy; the gates hold that defense to <= 5% energy "
               "and >= 85% goodput retention, and pin the whole subsystem "
               "to exact bit-identity when disabled.\n";
  return 0;
}
