/// Extension: workflow-structured submissions.
///
/// The paper frames its bursts as "scientific HPC workflows, composed of
/// sets of jobs with the same resource requirements" but schedules them
/// independently. This harness chains burst members with stage
/// dependencies (SWF field 17) and re-runs the strategy comparison:
/// chaining serializes work, lowers achievable parallelism, and shifts the
/// bottleneck from placement quality toward critical-path latency — the
/// strategies' makespans converge while per-VM response quality still
/// separates them.

#include <iostream>

#include "bench/harness_common.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();

  std::cout << "== Extension: workflow-chained submissions (SMALLER "
               "cloud) ==\n\n";
  util::TablePrinter table({"chain fraction", "strategy", "makespan(s)",
                            "energy(MJ)", "mean response(s)", "SLA(%)"});
  for (const double chain : {0.0, 0.5, 1.0}) {
    util::Rng rng(2026);
    trace::GeneratorConfig gen;
    trace::SwfTrace raw = trace::generate_egee_like(gen, rng);
    trace::clean(raw);
    trace::PreparationConfig prep;
    prep.workflow_chain_fraction = chain;
    for (const workload::ProfileClass profile :
         workload::kAllProfileClasses) {
      prep.solo_time_s[static_cast<std::size_t>(profile)] =
          db.base().of(profile).solo_time_s;
    }
    const trace::PreparedWorkload workload =
        trace::prepare_workload(raw, prep, rng);
    const datacenter::Simulator sim(db, bench::smaller_cloud());

    for (const char* name : {"FF-2", "PA-0.5"}) {
      std::unique_ptr<core::Allocator> strategy;
      if (std::string(name) == "FF-2") {
        strategy = std::make_unique<core::FirstFitAllocator>(2);
      } else {
        core::ProactiveConfig config;
        config.alpha = 0.5;
        strategy = std::make_unique<core::ProactiveAllocator>(db, config);
      }
      const datacenter::SimMetrics m = sim.run(workload, *strategy);
      table.add_row({util::format_fixed(chain, 1), name,
                     util::format_fixed(m.makespan_s, 0),
                     util::format_fixed(m.energy_j / 1e6, 1),
                     util::format_fixed(m.mean_response_s, 0),
                     util::format_fixed(m.sla_violation_pct, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nstage chaining stretches workflow critical paths "
               "(responses grow with the chain fraction); placement "
               "quality still shows in energy and per-VM response.\n";
  return 0;
}
