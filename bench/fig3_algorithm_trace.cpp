/// Reproduces **Figure 3** — "VM allocation algorithm": traces the control
/// flow of the proactive allocator on a sample request, showing every
/// component of the figure in action — the model database input, the base
/// parameters, the partition enumeration (Orlov [21]), the per-partition
/// cost estimation, the α-weighted ranking, and the QoS filter.

#include <iostream>

#include "bench/harness_common.hpp"
#include "core/proactive.hpp"
#include "partition/set_partition.hpp"
#include "partition/typed_partition.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();

  std::cout << "== Figure 3: VM allocation algorithm, step by step ==\n\n";
  std::cout << "[input 1] model database: " << db.size() << " records\n";
  std::cout << "[input 2] base parameters: OSC=" << db.base().cpu.os()
            << " OSM=" << db.base().mem.os() << " OSI=" << db.base().io.os()
            << "\n";

  // [input 3] a set of VMs with profiles and QoS bounds.
  std::vector<core::VmRequest> vms;
  const auto add = [&](workload::ProfileClass profile, double qos_s) {
    core::VmRequest vm;
    vm.id = static_cast<std::int64_t>(vms.size()) + 1;
    vm.profile = profile;
    vm.max_exec_time_s = qos_s;
    vms.push_back(vm);
  };
  add(workload::ProfileClass::kCpu, 2400.0);
  add(workload::ProfileClass::kCpu, 2400.0);
  add(workload::ProfileClass::kMem, 2000.0);
  add(workload::ProfileClass::kMem, 2000.0);
  add(workload::ProfileClass::kIo, 2200.0);
  add(workload::ProfileClass::kIo, 2200.0);
  std::cout << "[input 3] VM set: 2×CPU (QoS 2400 s), 2×MEM (2000 s), "
               "2×IO (2200 s)\n";

  // [input 4] servers with current allocations.
  std::vector<core::ServerState> servers;
  servers.push_back(core::ServerState{0, workload::ClassCounts{2, 0, 0}, true});
  servers.push_back(core::ServerState{1, workload::ClassCounts{0, 0, 0}, false});
  servers.push_back(core::ServerState{2, workload::ClassCounts{0, 2, 1}, true});
  std::cout << "[input 4] servers: #0 holds (2,0,0), #1 empty, #2 holds "
               "(0,2,1)\n\n";

  const workload::ClassCounts request{2, 2, 2};
  std::cout << "[search] set partitions of 6 VMs (Orlov): B(6) = "
            << partition::bell_number(6) << "; typed quotient: "
            << partition::count_typed_partitions(
                   request, [](const workload::ClassCounts&) { return true; })
            << " partitions of the (2,2,2) multiset\n";

  for (const double alpha : {1.0, 0.0, 0.5}) {
    core::ProactiveConfig config;
    config.alpha = alpha;
    const core::ProactiveAllocator allocator(db, config);
    const core::AllocationResult result = allocator.allocate(vms, servers);
    std::cout << "\n[goal] " << allocator.name() << " (alpha=" << alpha
              << "): examined " << result.partitions_examined
              << " partitions\n";
    if (!result.complete) {
      std::cout << "  no feasible QoS-satisfying allocation\n";
      continue;
    }
    util::TablePrinter table({"VM", "class", "server"});
    for (const core::Placement& p : result.placements) {
      table.add_row({std::to_string(p.vm_id),
                     std::string(workload::to_string(
                         vms[static_cast<std::size_t>(p.vm_id - 1)].profile)),
                     std::to_string(p.server_id)});
    }
    table.print(std::cout);
    std::cout << "  estimated mean exec time: "
              << util::format_fixed(result.score.est_time_s, 1)
              << " s, marginal energy: "
              << util::format_fixed(result.score.est_energy_j / 1e3, 1)
              << " kJ, QoS satisfied: "
              << (result.satisfied_qos ? "yes" : "no") << "\n";
  }
  return 0;
}
