#pragma once

/// \file evaluation_common.hpp
/// Shared runner for the evaluation figures (Figs. 5–7): executes the
/// standard 10,000-VM workload under all six strategies on both cloud
/// sizes and returns the metric matrix the paper's bar charts plot.

#include <string>
#include <vector>

#include "bench/harness_common.hpp"
#include "datacenter/simulator.hpp"

namespace aeva::bench {

/// One (strategy, cloud) cell of the evaluation matrix.
struct EvalCell {
  std::string strategy;
  std::string cloud;  ///< "SMALLER" or "LARGER"
  datacenter::SimMetrics metrics;
};

/// Runs the full evaluation once (12 simulations). Deterministic.
inline std::vector<EvalCell> run_evaluation(std::uint64_t seed = 2026) {
  const modeldb::ModelDatabase& db = shared_database();
  const trace::PreparedWorkload workload = standard_workload(db, seed);
  const StrategyRoster roster(db);

  std::vector<EvalCell> cells;
  const std::vector<std::pair<std::string, datacenter::CloudConfig>> clouds = {
      {"SMALLER", smaller_cloud()},
      {"LARGER", larger_cloud()},
  };
  for (const auto& [cloud_name, cloud] : clouds) {
    const datacenter::Simulator sim(db, cloud);
    for (const auto& strategy : roster.strategies) {
      EvalCell cell;
      cell.strategy = strategy->name();
      cell.cloud = cloud_name;
      cell.metrics = sim.run(workload, *strategy);
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

}  // namespace aeva::bench
