/// Extension: thermal awareness (the paper's future work ii).
///
/// Runs the standard 10,000-VM workload on the SMALLER cloud with PA-0.5
/// and with the thermal guard wrapped around it, while a thermal observer
/// tracks inlet temperatures from the per-interval power draws through the
/// heat-recirculation model. Reports peak inlet temperature, redline
/// server-seconds, IT energy, and CRAC cooling energy.

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench/harness_common.hpp"
#include "core/proactive.hpp"
#include "thermal/thermal_guard.hpp"
#include "thermal/thermal_model.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

namespace {

struct ThermalAccount {
  double peak_inlet_c = 0.0;
  double overheat_server_seconds = 0.0;
  double it_energy_j = 0.0;

  aeva::datacenter::Simulator::IntervalObserver observer(
      const aeva::thermal::ThermalMap& map) {
    return [this, &map](double t0, double t1,
                        const std::vector<double>& power) {
      const double dt = t1 - t0;
      const std::vector<double> inlets = map.inlet_temps(power);
      for (std::size_t s = 0; s < inlets.size(); ++s) {
        peak_inlet_c = std::max(peak_inlet_c, inlets[s]);
        if (inlets[s] > map.config().inlet_limit_c) {
          overheat_server_seconds += dt;
        }
        it_energy_j += power[s] * dt;
      }
    };
  }
};

}  // namespace

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();
  // Moderate load (~20 % of the reference trace): thermal spreading needs
  // spare machines to spread onto; at full saturation there is no cool
  // corner left and proactive thermal management degenerates to the
  // reactive case.
  const trace::PreparedWorkload workload =
      bench::standard_workload(db, 2026, 2000);
  const datacenter::CloudConfig cloud = bench::smaller_cloud();
  const datacenter::Simulator sim(db, cloud);
  const thermal::ThermalMap map(cloud.server_count,
                                thermal::ThermalConfig{});

  std::cout << "== Extension: thermal management, proactive vs reactive "
               "(SMALLER cloud) ==\n\n";
  util::TablePrinter table({"strategy", "migrations", "makespan(s)",
                            "IT energy(MJ)", "cooling(MJ)", "peak inlet(C)",
                            "overheat(srv-h)"});
  const auto emit = [&](const core::Allocator& strategy,
                        const datacenter::Simulator& simulator,
                        const char* label) {
    ThermalAccount account;
    const datacenter::SimMetrics metrics =
        simulator.run(workload, strategy, account.observer(map));
    const double cooling_j = map.cooling_power_w(account.it_energy_j);
    table.add_row({label, std::to_string(metrics.migrations),
                   util::format_fixed(metrics.makespan_s, 0),
                   util::format_fixed(metrics.energy_j / 1e6, 1),
                   util::format_fixed(cooling_j / 1e6, 1),
                   util::format_fixed(account.peak_inlet_c, 2),
                   util::format_fixed(
                       account.overheat_server_seconds / 3600.0, 2)});
  };

  core::ProactiveConfig config;
  config.alpha = 1.0;

  // (a) no thermal management at all.
  emit(core::ProactiveAllocator(db, config), sim, "PA-1 (blind)");

  // (b) proactive: the thermal guard steers placements cold from the
  // start. Act early — masking at the redline would let dense packs form.
  {
    thermal::GuardConfig guard_config;
    guard_config.soft_limit_c = 26.0;
    const thermal::ThermalGuardAllocator guarded(
        std::make_unique<core::ProactiveAllocator>(db, config), db, map,
        guard_config);
    emit(guarded, sim, "TG(PA-1) proactive");
  }

  // (c) reactive ([3]): thermally blind placement patched up by migration
  // sweeps once inlets cross the redline.
  {
    datacenter::CloudConfig reactive_cloud = cloud;
    reactive_cloud.migration.enabled = true;
    reactive_cloud.migration.trigger =
        datacenter::MigrationConfig::Trigger::kThermal;
    reactive_cloud.migration.thermal_map = &map;
    reactive_cloud.migration.check_interval_s = 300.0;
    const datacenter::Simulator reactive_sim(db, reactive_cloud);
    emit(core::ProactiveAllocator(db, config), reactive_sim,
         "PA-1 + reactive mig. [3]");
  }
  table.print(std::cout);
  std::cout << "\nproactive placement keeps inlets under the redline ("
            << util::format_fixed(thermal::ThermalConfig{}.inlet_limit_c, 1)
            << " C) with zero migrations; the reactive scheme of the "
               "authors' prior work [3] pays migrations to claw back what "
               "placement gave away — the paper's motivating comparison.\n";
  return 0;
}
