/// Microbench: the observability layer's two contracts
/// (docs/OBSERVABILITY.md).
///
///  1. **Zero interference.** The same seeded simulation runs once with
///     observability disabled (null session) and once fully instrumented
///     (metrics + tracing through the allocator and the simulator). Every
///     SimMetrics field must match bit for bit; any divergence fails the
///     binary — instrumentation that changes the experiment is a bug, not
///     an overhead.
///  2. **Cheap when disabled.** The disabled path is timed against a
///     pre-instrumentation-equivalent baseline (the same disabled run,
///     repeated), and the enabled run's overhead is reported. Timing is
///     informational (CI machines are noisy); the bit-identity check is
///     the hard gate.
///
/// With `--trace-out=<jsonl>` / `--chrome-out=<json>` /
/// `--metrics-out=<json>` the instrumented session is exported — CI's
/// obs-smoke step runs this binary and validates the JSONL against
/// tools/obs/trace_schema.json. The run enables deterministic fault
/// injection so the failure/restart instrumentation is exercised too.
///
/// Usage: obs_overhead [--quick] [--vms 1200] [--servers 24]
///                     [--trace-out=...] [--chrome-out=...]
///                     [--metrics-out=...]

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness_common.hpp"
#include "obs/export.hpp"
#include "obs/session.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"

namespace {

using namespace aeva;

datacenter::CloudConfig make_cloud(int servers,
                                   std::shared_ptr<obs::Session> obs) {
  datacenter::CloudConfig cloud;
  cloud.server_count = servers;
  // Deterministic fault injection so the failure/restart counters and
  // trace events are exercised (identical in both runs by construction).
  cloud.failure.enabled = true;
  cloud.failure.mtbf_s = 400000.0;
  cloud.failure.mttr_s = 1800.0;
  cloud.failure.seed = 2026;
  cloud.obs = std::move(obs);
  return cloud;
}

core::ProactiveConfig make_strategy_config(
    std::shared_ptr<obs::Session> obs) {
  core::ProactiveConfig config;
  config.alpha = 0.5;
  config.degrade_to_first_fit = true;
  config.obs = std::move(obs);
  return config;
}

struct TimedRun {
  datacenter::SimMetrics metrics;
  double wall_ms = 0.0;
};

TimedRun run_once(const modeldb::ModelDatabase& db,
                  const trace::PreparedWorkload& workload, int servers,
                  const std::shared_ptr<obs::Session>& obs) {
  const datacenter::Simulator sim(db, make_cloud(servers, obs));
  const core::ProactiveAllocator allocator(db, make_strategy_config(obs));
  const auto begin = std::chrono::steady_clock::now();
  TimedRun out;
  out.metrics = sim.run(workload, allocator);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - begin)
                    .count();
  return out;
}

bool same(const char* field, double a, double b) {
  if (a == b) {
    return true;
  }
  std::cerr << "FAIL: SimMetrics." << field << " diverged with obs on: "
            << util::format_fixed(a, 9) << " vs " << util::format_fixed(b, 9)
            << "\n";
  return false;
}

bool same_u(const char* field, std::size_t a, std::size_t b) {
  if (a == b) {
    return true;
  }
  std::cerr << "FAIL: SimMetrics." << field << " diverged with obs on: " << a
            << " vs " << b << "\n";
  return false;
}

std::uint64_t counter_value(
    const obs::MetricsRegistry::Snapshot& snapshot, const std::string& name) {
  for (const auto& [key, value] : snapshot.counters) {
    if (key == name) {
      return value;
    }
  }
  std::cerr << "FAIL: metrics snapshot is missing counter " << name << "\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> flags = bench::obs_flags();
  flags.emplace_back("quick");
  const util::Args args(argc, argv, std::move(flags));
  const bool quick = args.has("quick");
  const int target_vms =
      static_cast<int>(args.get_int("vms", quick ? 600 : 1200));
  const int servers = static_cast<int>(args.get_int("servers", 24));

  const modeldb::ModelDatabase& db = bench::shared_database();
  const trace::PreparedWorkload workload =
      bench::standard_workload(db, 2026, target_vms);
  std::cout << "obs_overhead: " << workload.jobs.size() << " jobs, "
            << workload.total_vms << " VMs on " << servers << " servers\n";

  // Disabled twice: the first run warms caches/allocators, the second is
  // the timing baseline.
  (void)run_once(db, workload, servers, nullptr);
  const TimedRun off = run_once(db, workload, servers, nullptr);

  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  obs_config.trace_jsonl_path = args.get_string("trace-out", "");
  obs_config.chrome_trace_path = args.get_string("chrome-out", "");
  obs_config.metrics_json_path = args.get_string("metrics-out", "");
  const std::shared_ptr<obs::Session> session =
      obs::Session::create(obs_config);
  const TimedRun on = run_once(db, workload, servers, session);

  // --- contract 1: bit-identical outcomes ---------------------------------
  bool ok = true;
  ok &= same("makespan_s", off.metrics.makespan_s, on.metrics.makespan_s);
  ok &= same("energy_j", off.metrics.energy_j, on.metrics.energy_j);
  ok &= same("sla_violation_pct", off.metrics.sla_violation_pct,
             on.metrics.sla_violation_pct);
  ok &= same("mean_response_s", off.metrics.mean_response_s,
             on.metrics.mean_response_s);
  ok &= same("mean_wait_s", off.metrics.mean_wait_s, on.metrics.mean_wait_s);
  ok &= same("mean_busy_servers", off.metrics.mean_busy_servers,
             on.metrics.mean_busy_servers);
  ok &= same("lost_work_s", off.metrics.lost_work_s, on.metrics.lost_work_s);
  ok &= same("goodput_fraction", off.metrics.goodput_fraction,
             on.metrics.goodput_fraction);
  ok &= same_u("jobs", off.metrics.jobs, on.metrics.jobs);
  ok &= same_u("vms", off.metrics.vms, on.metrics.vms);
  ok &= same_u("sla_violations", off.metrics.sla_violations,
               on.metrics.sla_violations);
  ok &= same_u("servers_powered", off.metrics.servers_powered,
               on.metrics.servers_powered);
  ok &= same_u("failures", off.metrics.failures, on.metrics.failures);
  ok &= same_u("vm_restarts", off.metrics.vm_restarts,
               on.metrics.vm_restarts);
  ok &= same_u("vms_abandoned", off.metrics.vms_abandoned,
               on.metrics.vms_abandoned);
  ok &= same_u("fallback_allocations", off.metrics.fallback_allocations,
               on.metrics.fallback_allocations);
  if (!ok) {
    return 1;
  }
  std::cout << "bit-identity: PASS (instrumented run matches the disabled "
               "run exactly)\n";

  // --- sanity: the instrumented run actually measured things --------------
  const obs::MetricsRegistry::Snapshot snapshot =
      session->metrics().snapshot();
  const std::uint64_t candidates =
      counter_value(snapshot, "pa.search.candidates");
  const std::uint64_t sim_events = counter_value(snapshot, "sim.events");
  const std::uint64_t lookups = counter_value(snapshot, "sim.modeldb.lookups");
  (void)counter_value(snapshot, "pa.search.pruned_bound");
  (void)counter_value(snapshot, "pa.search.pruned_infeasible");
  (void)counter_value(snapshot, "sim.failures.crash");
  (void)counter_value(snapshot, "sim.vm_restarts");
  if (candidates == 0 || sim_events == 0 || lookups == 0 ||
      session->trace().size() == 0) {
    std::cerr << "FAIL: instrumented run recorded nothing (candidates="
              << candidates << ", sim.events=" << sim_events
              << ", lookups=" << lookups
              << ", trace events=" << session->trace().size() << ")\n";
    return 1;
  }
  std::cout << "coverage: " << candidates << " search candidates, "
            << sim_events << " simulator events, " << lookups
            << " model lookups, " << session->trace().size()
            << " trace events\n";

  // --- contract 2: overhead (informational) -------------------------------
  const double overhead_pct =
      off.wall_ms > 0.0 ? 100.0 * (on.wall_ms - off.wall_ms) / off.wall_ms
                        : 0.0;
  std::cout << "BENCH_JSON {\"bench\":\"obs_overhead\",\"disabled_ms\":"
            << util::format_fixed(off.wall_ms, 2)
            << ",\"enabled_ms\":" << util::format_fixed(on.wall_ms, 2)
            << ",\"overhead_pct\":" << util::format_fixed(overhead_pct, 2)
            << ",\"trace_events\":" << session->trace().size() << "}\n";

  session->export_files();
  for (const std::string& path :
       {obs_config.trace_jsonl_path, obs_config.chrome_trace_path,
        obs_config.metrics_json_path}) {
    if (!path.empty()) {
      std::cout << "wrote " << path << "\n";
    }
  }
  return 0;
}
