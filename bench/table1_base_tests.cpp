/// Reproduces **Table I** — "Summary of parameters obtained in base tests":
/// the optimal VM counts per class for performance (OSP*) and energy
/// (OSE*), and the solo runtimes (T*), derived from the base campaign
/// (1..16 same-type VMs per server). Also prints the underlying curves so
/// the optima can be eyeballed.

#include <iostream>

#include "bench/harness_common.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"
#include "workload/registry.hpp"

int main() {
  using namespace aeva;

  modeldb::CampaignConfig config;
  config.server = testbed::testbed_server();
  const modeldb::Campaign campaign(config);

  std::cout << "== Table I: parameters obtained in base tests ==\n\n";

  const std::vector<modeldb::BaseCurve> curves = campaign.run_base_tests();
  for (const modeldb::BaseCurve& curve : curves) {
    std::cout << "-- base curve: "
              << workload::to_string(curve.profile) << " ("
              << workload::canonical_app(curve.profile).name << ") --\n";
    util::TablePrinter table(
        {"#VMs", "Time(s)", "avgTimeVM(s)", "Energy(J)", "E/VM(J)",
         "MaxPower(W)"});
    for (const modeldb::Record& r : curve.by_count) {
      table.add_row({std::to_string(r.key.total()),
                     util::format_fixed(r.time_s, 1),
                     util::format_fixed(r.avg_time_vm_s, 1),
                     util::format_fixed(r.energy_j, 0),
                     util::format_fixed(r.energy_per_vm_j(), 0),
                     util::format_fixed(r.max_power_w, 1)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  const modeldb::BaseParameters base =
      modeldb::Campaign::derive_parameters(curves);
  util::TablePrinter summary({"parameter", "CPU", "Memory", "I/O"});
  summary.add_row({"#VMs that optimize performance (OSP*)",
                   std::to_string(base.cpu.osp), std::to_string(base.mem.osp),
                   std::to_string(base.io.osp)});
  summary.add_row({"#VMs that optimize energy (OSE*)",
                   std::to_string(base.cpu.ose), std::to_string(base.mem.ose),
                   std::to_string(base.io.ose)});
  summary.add_row({"Run time of single test on 1 VM (T*)",
                   util::format_fixed(base.cpu.solo_time_s, 1),
                   util::format_fixed(base.mem.solo_time_s, 1),
                   util::format_fixed(base.io.solo_time_s, 1)});
  summary.add_row({"OS* = max(OSP*, OSE*)", std::to_string(base.cpu.os()),
                   std::to_string(base.mem.os()),
                   std::to_string(base.io.os())});
  summary.print(std::cout);

  std::cout << "\ncombination experiments required: "
            << base.combination_experiment_count()
            << "  [(OSC+1)(OSM+1)(OSI+1) - (1+OSC+OSM+OSI)]\n";
  return 0;
}
