/// Ablation: queue discipline and QoS strictness.
///
/// Two knobs the paper fixes implicitly — strict FCFS admission and the
/// per-type execution-stretch QoS — are swept here:
///  * backfill window 0 (the paper's FCFS) vs 4 / 16 queued jobs,
///  * execution-stretch cap 1.25× … unbounded.
/// Both trade queueing delay against co-location contention; the sweep
/// shows where the paper's operating point sits.

#include <iostream>

#include "bench/harness_common.hpp"
#include "core/proactive.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();
  const trace::PreparedWorkload base_workload = bench::standard_workload(db);

  std::cout << "== Ablation: backfill window (PA-0.5, SMALLER cloud) ==\n\n";
  {
    util::TablePrinter table({"backfill window", "makespan(s)",
                              "mean wait(s)", "energy(MJ)", "SLA(%)"});
    for (const int window : {0, 4, 16}) {
      datacenter::CloudConfig cloud = bench::smaller_cloud();
      cloud.backfill_window = window;
      const datacenter::Simulator sim(db, cloud);
      core::ProactiveConfig config;
      config.alpha = 0.5;
      const core::ProactiveAllocator pa(db, config);
      const datacenter::SimMetrics m = sim.run(base_workload, pa);
      table.add_row({std::to_string(window),
                     util::format_fixed(m.makespan_s, 0),
                     util::format_fixed(m.mean_wait_s, 1),
                     util::format_fixed(m.energy_j / 1e6, 1),
                     util::format_fixed(m.sla_violation_pct, 2)});
    }
    table.print(std::cout);
  }

  std::cout << "\n== Ablation: QoS execution-stretch cap (PA-0.5, SMALLER "
               "cloud) ==\n\n";
  {
    util::TablePrinter table({"stretch cap", "makespan(s)", "mean wait(s)",
                              "mean response(s)", "energy(MJ)", "SLA(%)"});
    for (const double stretch : {1.25, 1.5, 2.0, 3.0, 100.0}) {
      // Rebuild the workload with the altered per-type QoS.
      util::Rng rng(2026);
      trace::GeneratorConfig gen;
      trace::SwfTrace raw = trace::generate_egee_like(gen, rng);
      trace::clean(raw);
      trace::PreparationConfig prep;
      prep.qos_exec_stretch = {stretch, stretch, stretch};
      for (const workload::ProfileClass profile :
           workload::kAllProfileClasses) {
        prep.solo_time_s[static_cast<std::size_t>(profile)] =
            db.base().of(profile).solo_time_s;
      }
      const trace::PreparedWorkload workload =
          trace::prepare_workload(raw, prep, rng);

      const datacenter::Simulator sim(db, bench::smaller_cloud());
      core::ProactiveConfig config;
      config.alpha = 0.5;
      const core::ProactiveAllocator pa(db, config);
      const datacenter::SimMetrics m = sim.run(workload, pa);
      table.add_row({stretch > 10.0 ? "unbounded"
                                    : util::format_fixed(stretch, 2),
                     util::format_fixed(m.makespan_s, 0),
                     util::format_fixed(m.mean_wait_s, 1),
                     util::format_fixed(m.mean_response_s, 0),
                     util::format_fixed(m.energy_j / 1e6, 1),
                     util::format_fixed(m.sla_violation_pct, 2)});
    }
    table.print(std::cout);
  }
  std::cout << "\nstrict stretch caps push cost into queueing; loose caps "
               "push it into contention — the 2x default balances both at "
               "this load.\n";
  return 0;
}
