/// Ablation: response-time distributions.
///
/// The paper reports aggregate makespan and %SLA; this harness looks under
/// the hood at the per-VM response-time distribution (P50/P90/P99/max) of
/// every strategy — the quantity SLAs are really written against. It shows
/// *where* first-fit's violations come from (a long queueing tail) and why
/// PROACTIVE's contention-capped co-location keeps the tail short.

#include <iostream>
#include <memory>

#include "bench/harness_common.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();
  const trace::PreparedWorkload workload = bench::standard_workload(db);
  datacenter::CloudConfig cloud = bench::smaller_cloud();
  cloud.record_completions = true;
  const datacenter::Simulator sim(db, cloud);
  const bench::StrategyRoster roster(db);

  std::cout << "== Ablation: per-VM response-time distribution (SMALLER "
               "cloud) ==\n\n";
  util::TablePrinter table({"strategy", "P50(s)", "P90(s)", "P99(s)",
                            "max(s)", "mean wait(s)"});
  for (const auto& strategy : roster.strategies) {
    const datacenter::SimMetrics metrics = sim.run(workload, *strategy);
    std::vector<double> responses;
    responses.reserve(metrics.completions.size());
    util::RunningStats waits;
    for (const datacenter::VmCompletion& c : metrics.completions) {
      responses.push_back(c.response_s());
      waits.add(c.wait_s());
    }
    table.add_row({strategy->name(),
                   util::format_fixed(util::percentile(responses, 0.50), 0),
                   util::format_fixed(util::percentile(responses, 0.90), 0),
                   util::format_fixed(util::percentile(responses, 0.99), 0),
                   util::format_fixed(util::percentile(responses, 1.0), 0),
                   util::format_fixed(waits.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nfirst-fit's P99 blows up with queueing (FF) or "
               "contention (FF-3); PROACTIVE's execution-stretch QoS caps "
               "the tail by construction.\n";
  return 0;
}
