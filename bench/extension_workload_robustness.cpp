/// Extension: workload-model robustness.
///
/// The paper's conclusions rest on one trace family (EGEE-like bursty
/// arrivals). This harness re-runs the core comparison on a structurally
/// different workload — a Lublin–Feitelson-style daily cycle with gamma
/// runtimes — to check the conclusions are properties of the *strategies*,
/// not of one trace shape.

#include <iostream>

#include "bench/harness_common.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();

  // Daily-cycle trace scaled to the same 10,000 VMs.
  util::Rng rng(2026);
  trace::DailyCycleConfig gen;
  gen.days = 48000.0 / 86400.0;  // match the reference span for equal load
  trace::SwfTrace raw = trace::generate_daily_cycle(gen, rng);
  trace::clean(raw);
  trace::PreparationConfig prep;
  for (const workload::ProfileClass profile : workload::kAllProfileClasses) {
    prep.solo_time_s[static_cast<std::size_t>(profile)] =
        db.base().of(profile).solo_time_s;
  }
  const trace::PreparedWorkload workload =
      trace::prepare_workload(raw, prep, rng);

  const datacenter::Simulator sim(db, bench::smaller_cloud());
  const bench::StrategyRoster roster(db);

  std::cout << "== Extension: daily-cycle workload (gamma runtimes, "
            << workload.total_vms << " VMs, SMALLER cloud) ==\n\n";
  util::TablePrinter table(
      {"strategy", "makespan(s)", "energy(MJ)", "SLA(%)"});
  double ff = 0.0;
  double best_pa = 0.0;
  double pa_energy = 0.0;
  double ff_family_energy = 0.0;
  int ff_count = 0;
  for (const auto& strategy : roster.strategies) {
    const datacenter::SimMetrics m = sim.run(workload, *strategy);
    table.add_row({strategy->name(), util::format_fixed(m.makespan_s, 0),
                   util::format_fixed(m.energy_j / 1e6, 1),
                   util::format_fixed(m.sla_violation_pct, 2)});
    if (strategy->name() == "FF") {
      ff = m.makespan_s;
    }
    if (strategy->name().rfind("FF", 0) == 0) {
      ff_family_energy += m.energy_j;
      ++ff_count;
    }
    if (strategy->name().rfind("PA", 0) == 0) {
      if (best_pa == 0.0 || m.makespan_s < best_pa) {
        best_pa = m.makespan_s;
      }
      if (strategy->name() == "PA-1") {
        pa_energy = m.energy_j;
      }
    }
  }
  table.print(std::cout);
  ff_family_energy /= ff_count;
  std::cout << "\nPROACTIVE vs FF makespan: "
            << util::format_fixed(100.0 * (ff - best_pa) / ff, 1)
            << "% shorter; PA-1 vs FF-family energy: "
            << util::format_fixed(
                   100.0 * (ff_family_energy - pa_energy) / ff_family_energy,
                   1)
            << "% lower — the reference-trace conclusions survive a "
               "structurally different workload model.\n";
  return 0;
}
