/// Ablation: database-interval accounting vs ground truth.
///
/// The evaluation simulator accounts time and energy by model-database
/// lookup (as the paper does); the testbed microsimulator is the ground
/// truth the database was built from. This harness re-runs a spectrum of
/// mixed allocations on the microsim and compares against the database
/// estimate — exact hits must agree to measurement noise, off-grid keys
/// quantify the cost of the proportional-scaling approximation.

#include <cmath>
#include <iostream>

#include "bench/harness_common.hpp"
#include "modeldb/campaign.hpp"
#include "modeldb/learned_model.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();

  modeldb::CampaignConfig config;
  config.server = testbed::testbed_server();
  config.meter_noise = false;  // ground truth without meter noise
  const modeldb::Campaign truth(config);

  const std::vector<workload::ClassCounts> mixes = {
      {1, 0, 0}, {0, 1, 0},  {0, 0, 1}, {2, 2, 0}, {4, 0, 4}, {2, 3, 3},
      {4, 6, 5}, {6, 0, 0},  {0, 8, 0}, {5, 5, 5}, {8, 2, 2}, {0, 2, 9},
  };

  const modeldb::LearnedModel learned(db);

  std::cout << "== Ablation: off-grid estimators vs microsim ground truth "
               "==\n\n";
  util::TablePrinter table({"mix(N c/m/i)", "grid", "T true(s)",
                            "prop err(%)", "extrap err(%)", "knn err(%)"});
  util::RunningStats on_grid_err;
  util::RunningStats prop_err;
  util::RunningStats extrap_err;
  util::RunningStats knn_err;
  for (const workload::ClassCounts mix : mixes) {
    const modeldb::Record measured = truth.measure(mix);
    const bool on_grid = db.measured(mix);
    const auto pct = [&](double estimate) {
      return 100.0 * (estimate - measured.time_s) / measured.time_s;
    };
    const double e_prop = pct(db.estimate(mix).time_s);
    const double e_extrap = pct(db.estimate_extrapolated(mix).time_s);
    const double e_knn = pct(learned.predict(mix).time_s);
    if (on_grid) {
      on_grid_err.add(std::abs(e_prop));
    } else {
      prop_err.add(std::abs(e_prop));
      extrap_err.add(std::abs(e_extrap));
      knn_err.add(std::abs(e_knn));
    }
    table.add_row({
        std::to_string(mix.cpu) + "/" + std::to_string(mix.mem) + "/" +
            std::to_string(mix.io),
        on_grid ? "hit" : "off-grid",
        util::format_fixed(measured.time_s, 0),
        util::format_fixed(e_prop, 1),
        util::format_fixed(e_extrap, 1),
        util::format_fixed(e_knn, 1),
    });
  }
  table.print(std::cout);

  std::cout << "\non-grid |time error|: "
            << util::format_fixed(on_grid_err.mean(), 2)
            << "% (meter noise only)\noff-grid mean |time error|: "
            << "proportional (the paper's rule) "
            << util::format_fixed(prop_err.mean(), 1)
            << "%, edge-slope extrapolation "
            << util::format_fixed(extrap_err.mean(), 1) << "%, IDW k-NN "
            << util::format_fixed(knn_err.mean(), 1) << "%\n";
  return 0;
}
