/// Microbench: the durability layer's two contracts (docs/RESILIENCE.md,
/// "Process-level durability").
///
///  1. **Zero interference.** The same seeded simulation runs once with
///     snapshotting disabled and once checkpointing to a file every
///     `--every` simulated seconds. Every SimMetrics field must match bit
///     for bit; any divergence fails the binary — a checkpoint that
///     perturbs the experiment is a bug, not an overhead.
///  2. **Bit-identical resume.** A mid-run checkpoint (collected through
///     SnapshotConfig::hook) is resumed to completion and the final
///     metrics must again match the uninterrupted run exactly.
///
/// Timing and write amplification (total snapshot bytes / final snapshot
/// bytes) are reported as BENCH_JSON; they are informational — the two
/// bit-identity checks are the hard gates. Deterministic fault injection
/// is enabled so the checkpoint covers RNG streams, pending repairs and
/// restart state, not just the happy path.
///
/// Usage: snapshot_overhead [--quick] [--vms 1200] [--servers 24]
///                          [--every 2000]

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness_common.hpp"
#include "persist/snapshot.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"

namespace {

using namespace aeva;

datacenter::CloudConfig make_cloud(int servers) {
  datacenter::CloudConfig cloud;
  cloud.server_count = servers;
  // Deterministic fault injection so the snapshot carries RNG streams,
  // repair timers and restart state (identical in all runs by
  // construction).
  cloud.failure.enabled = true;
  cloud.failure.mtbf_s = 400000.0;
  cloud.failure.mttr_s = 1800.0;
  cloud.failure.seed = 2026;
  return cloud;
}

core::ProactiveConfig make_strategy_config() {
  core::ProactiveConfig config;
  config.alpha = 0.5;
  config.degrade_to_first_fit = true;
  return config;
}

struct TimedRun {
  datacenter::SimMetrics metrics;
  double wall_ms = 0.0;
};

TimedRun run_once(const modeldb::ModelDatabase& db,
                  const trace::PreparedWorkload& workload,
                  const datacenter::CloudConfig& cloud) {
  const datacenter::Simulator sim(db, cloud);
  const core::ProactiveAllocator allocator(db, make_strategy_config());
  const auto begin = std::chrono::steady_clock::now();
  TimedRun out;
  out.metrics = sim.run(workload, allocator);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - begin)
                    .count();
  return out;
}

bool same(const char* what, const char* field, double a, double b) {
  if (a == b) {
    return true;
  }
  std::cerr << "FAIL: SimMetrics." << field << " diverged (" << what
            << "): " << util::format_fixed(a, 9) << " vs "
            << util::format_fixed(b, 9) << "\n";
  return false;
}

bool same_u(const char* what, const char* field, std::size_t a,
            std::size_t b) {
  if (a == b) {
    return true;
  }
  std::cerr << "FAIL: SimMetrics." << field << " diverged (" << what
            << "): " << a << " vs " << b << "\n";
  return false;
}

/// Field-for-field bitwise comparison of every scalar SimMetrics field.
bool identical(const char* what, const datacenter::SimMetrics& a,
               const datacenter::SimMetrics& b) {
  bool ok = true;
  ok &= same(what, "makespan_s", a.makespan_s, b.makespan_s);
  ok &= same(what, "energy_j", a.energy_j, b.energy_j);
  ok &= same(what, "sla_violation_pct", a.sla_violation_pct,
             b.sla_violation_pct);
  ok &= same(what, "mean_response_s", a.mean_response_s, b.mean_response_s);
  ok &= same(what, "mean_wait_s", a.mean_wait_s, b.mean_wait_s);
  ok &= same(what, "mean_busy_servers", a.mean_busy_servers,
             b.mean_busy_servers);
  ok &= same(what, "peak_busy_servers", a.peak_busy_servers,
             b.peak_busy_servers);
  ok &= same(what, "migration_transfer_s", a.migration_transfer_s,
             b.migration_transfer_s);
  ok &= same(what, "lost_work_s", a.lost_work_s, b.lost_work_s);
  ok &= same(what, "goodput_fraction", a.goodput_fraction,
             b.goodput_fraction);
  ok &= same_u(what, "jobs", a.jobs, b.jobs);
  ok &= same_u(what, "vms", a.vms, b.vms);
  ok &= same_u(what, "sla_violations", a.sla_violations, b.sla_violations);
  ok &= same_u(what, "servers_powered", a.servers_powered,
               b.servers_powered);
  ok &= same_u(what, "migrations", a.migrations, b.migrations);
  ok &= same_u(what, "failures", a.failures, b.failures);
  ok &= same_u(what, "vm_restarts", a.vm_restarts, b.vm_restarts);
  ok &= same_u(what, "vms_abandoned", a.vms_abandoned, b.vms_abandoned);
  ok &= same_u(what, "fallback_allocations", a.fallback_allocations,
               b.fallback_allocations);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv, {"quick"});
  const bool quick = args.has("quick");
  const int target_vms =
      static_cast<int>(args.get_int("vms", quick ? 600 : 1200));
  const int servers = static_cast<int>(args.get_int("servers", 24));
  const double every_s = args.get_double("every", 2000.0);

  const modeldb::ModelDatabase& db = bench::shared_database();
  const trace::PreparedWorkload workload =
      bench::standard_workload(db, 2026, target_vms);
  std::cout << "snapshot_overhead: " << workload.jobs.size() << " jobs, "
            << workload.total_vms << " VMs on " << servers
            << " servers, checkpoint every "
            << util::format_fixed(every_s, 0) << " sim-seconds\n";

  // Disabled twice: the first run warms caches, the second is the baseline.
  (void)run_once(db, workload, make_cloud(servers));
  const TimedRun off = run_once(db, workload, make_cloud(servers));

  // Enabled: checkpoint to a real file (exercising the atomic-write path)
  // and also collect every snapshot in process through the hook.
  const std::string snapshot_path = "snapshot_overhead.snap";
  std::vector<persist::SimSnapshot> checkpoints;
  std::size_t total_bytes = 0;
  std::size_t last_bytes = 0;
  datacenter::CloudConfig cloud_on = make_cloud(servers);
  cloud_on.snapshot.every_s = every_s;
  cloud_on.snapshot.path = snapshot_path;
  cloud_on.snapshot.hook = [&](const persist::SimSnapshot& snapshot) {
    last_bytes = persist::encode_snapshot(snapshot).size();
    total_bytes += last_bytes;
    checkpoints.push_back(snapshot);
  };
  const TimedRun on = run_once(db, workload, cloud_on);

  // --- contract 1: snapshotting never changes the simulation --------------
  if (!identical("snapshots on vs off", off.metrics, on.metrics)) {
    return 1;
  }
  std::cout << "bit-identity: PASS (checkpointed run matches the plain run "
               "exactly, " << checkpoints.size() << " checkpoints)\n";
  if (checkpoints.empty()) {
    std::cerr << "FAIL: no checkpoint was captured — lower --every or raise "
                 "--vms\n";
    return 1;
  }

  // --- contract 2: resume from a mid-run checkpoint is bit-identical ------
  const persist::SimSnapshot& mid = checkpoints[checkpoints.size() / 2];
  const datacenter::Simulator sim(db, make_cloud(servers));
  const core::ProactiveAllocator allocator(db, make_strategy_config());
  const datacenter::SimMetrics resumed =
      sim.resume(workload, allocator, mid);
  if (!identical("resumed vs uninterrupted", off.metrics, resumed)) {
    return 1;
  }
  std::cout << "resume: PASS (restore at t="
            << util::format_fixed(mid.now, 0)
            << " s reproduces the uninterrupted metrics exactly)\n";

  // --- overhead & write amplification (informational) ---------------------
  const double overhead_pct =
      off.wall_ms > 0.0 ? 100.0 * (on.wall_ms - off.wall_ms) / off.wall_ms
                        : 0.0;
  const double amplification =
      last_bytes > 0 ? static_cast<double>(total_bytes) /
                           static_cast<double>(last_bytes)
                     : 0.0;
  std::cout << "BENCH_JSON {\"bench\":\"snapshot_overhead\",\"disabled_ms\":"
            << util::format_fixed(off.wall_ms, 2)
            << ",\"enabled_ms\":" << util::format_fixed(on.wall_ms, 2)
            << ",\"overhead_pct\":" << util::format_fixed(overhead_pct, 2)
            << ",\"snapshots\":" << checkpoints.size()
            << ",\"total_bytes\":" << total_bytes
            << ",\"last_bytes\":" << last_bytes
            << ",\"write_amplification\":"
            << util::format_fixed(amplification, 2) << "}\n";
  std::remove(snapshot_path.c_str());
  std::remove((snapshot_path + ".tmp").c_str());
  return 0;
}
