/// Ablation microbenchmarks (google-benchmark): the model-database hot
/// paths — exact binary-search lookup, proportional off-grid estimation —
/// and the testbed microsimulator itself (the campaign's unit of work).

#include <benchmark/benchmark.h>

#include "bench/harness_common.hpp"
#include "core/proactive.hpp"
#include "datacenter/simulator.hpp"
#include "metering/power_meter.hpp"
#include "testbed/microsim.hpp"
#include "workload/registry.hpp"

namespace {

using namespace aeva;

void BM_DbExactLookup(benchmark::State& state) {
  const modeldb::ModelDatabase& db = bench::shared_database();
  std::size_t i = 0;
  for (auto _ : state) {
    const modeldb::Record& probe = db.records()[i % db.size()];
    benchmark::DoNotOptimize(db.find(probe.key));
    ++i;
  }
}
BENCHMARK(BM_DbExactLookup);

void BM_DbProportionalEstimate(benchmark::State& state) {
  const modeldb::ModelDatabase& db = bench::shared_database();
  // Off-grid keys force the clamp-and-scale path.
  const workload::ClassCounts keys[] = {
      {9, 0, 0}, {0, 11, 0}, {7, 7, 7}, {6, 2, 9}, {20, 0, 1}};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.estimate(keys[i % 5]));
    ++i;
  }
}
BENCHMARK(BM_DbProportionalEstimate);

void BM_MicroSimRun(benchmark::State& state) {
  const testbed::MicroSim sim(testbed::testbed_server());
  const int n = static_cast<int>(state.range(0));
  std::vector<testbed::VmRun> vms;
  for (int i = 0; i < n; ++i) {
    const auto& app = workload::canonical_app(
        workload::kAllProfileClasses[static_cast<std::size_t>(i) % 3]);
    vms.push_back(testbed::VmRun{app, 0.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(vms));
  }
}
BENCHMARK(BM_MicroSimRun)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

void BM_DatacenterSimulation(benchmark::State& state) {
  // End-to-end cost of one evaluation run, per VM.
  const modeldb::ModelDatabase& db = bench::shared_database();
  const int vms = static_cast<int>(state.range(0));
  const trace::PreparedWorkload workload =
      bench::standard_workload(db, 7, vms);
  datacenter::CloudConfig cloud;
  cloud.server_count = std::max(4, vms / 160);
  const datacenter::Simulator sim(db, cloud);
  core::ProactiveConfig config;
  config.alpha = 0.5;
  const core::ProactiveAllocator pa(db, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(workload, pa));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(workload.total_vms));
}
BENCHMARK(BM_DatacenterSimulation)->Arg(500)->Arg(2000)->Unit(
    benchmark::kMillisecond);

void BM_PowerMetering(benchmark::State& state) {
  const testbed::MicroSim sim(testbed::testbed_server());
  const testbed::SimResult run = sim.run(
      {testbed::VmRun{workload::find_app("linpack"), 0.0},
       testbed::VmRun{workload::find_app("beffio"), 0.0}});
  metering::PowerMeter meter(metering::MeterSpec{}, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(meter.measure(run.power_w));
  }
}
BENCHMARK(BM_PowerMetering);

}  // namespace

BENCHMARK_MAIN();
