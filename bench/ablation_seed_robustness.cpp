/// Ablation: seed robustness of the headline numbers.
///
/// Every figure in EXPERIMENTS.md comes from one deterministic trace
/// (seed 2026). This harness regenerates the workload under several seeds
/// and reports the distribution of the two headline gaps —
/// PROACTIVE-vs-FF makespan and PA-1-vs-FF-family energy — to show the
/// conclusions are properties of the strategies, not of one lucky trace.

#include <iostream>

#include "bench/harness_common.hpp"
#include "core/proactive.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();
  const datacenter::Simulator sim(db, bench::smaller_cloud());

  std::cout << "== Ablation: headline gaps across trace seeds (SMALLER "
               "cloud) ==\n\n";
  util::TablePrinter table({"seed", "FF(s)", "best PA(s)",
                            "makespan gap(%)", "FF-family(MJ)", "PA-1(MJ)",
                            "energy gap(%)"});
  util::RunningStats makespan_gap;
  util::RunningStats energy_gap;
  for (const std::uint64_t seed : {2026ULL, 7ULL, 42ULL, 1337ULL, 9001ULL}) {
    const trace::PreparedWorkload workload =
        bench::standard_workload(db, seed);

    double ff_makespan = 0.0;
    double ff_family_energy = 0.0;
    for (const int multiplex : {1, 2, 3}) {
      const core::FirstFitAllocator ff(multiplex);
      const datacenter::SimMetrics m = sim.run(workload, ff);
      if (multiplex == 1) {
        ff_makespan = m.makespan_s;
      }
      ff_family_energy += m.energy_j;
    }
    ff_family_energy /= 3.0;

    double best_pa_makespan = 0.0;
    double pa1_energy = 0.0;
    for (const double alpha : {1.0, 0.0, 0.5}) {
      core::ProactiveConfig config;
      config.alpha = alpha;
      const core::ProactiveAllocator pa(db, config);
      const datacenter::SimMetrics m = sim.run(workload, pa);
      if (best_pa_makespan == 0.0 || m.makespan_s < best_pa_makespan) {
        best_pa_makespan = m.makespan_s;
      }
      if (alpha == 1.0) {
        pa1_energy = m.energy_j;
      }
    }

    const double mg = 100.0 * (ff_makespan - best_pa_makespan) / ff_makespan;
    const double eg =
        100.0 * (ff_family_energy - pa1_energy) / ff_family_energy;
    makespan_gap.add(mg);
    energy_gap.add(eg);
    table.add_row({std::to_string(seed),
                   util::format_fixed(ff_makespan, 0),
                   util::format_fixed(best_pa_makespan, 0),
                   util::format_fixed(mg, 1),
                   util::format_fixed(ff_family_energy / 1e6, 1),
                   util::format_fixed(pa1_energy / 1e6, 1),
                   util::format_fixed(eg, 1)});
  }
  table.print(std::cout);
  std::cout << "\nmakespan gap: "
            << util::format_fixed(makespan_gap.mean(), 1) << "% +- "
            << util::format_fixed(makespan_gap.stddev(), 1)
            << " (paper: up to 18%); energy gap: "
            << util::format_fixed(energy_gap.mean(), 1) << "% +- "
            << util::format_fixed(energy_gap.stddev(), 1)
            << " (paper: ~12%) across " << makespan_gap.count()
            << " seeds\n(on the heaviest trace the cluster saturates: the "
               "energy edge compresses while the makespan edge grows — the "
               "two gaps trade against load, as Sect. IV-E's two cloud "
               "sizes illustrate)\n";
  return 0;
}
