/// Reproduces **Figure 5** — "Makespan (s)": workload execution time for
/// FF, FF-2, FF-3, PA-1, PA-0, PA-0.5 on the SMALLER (reference) and
/// LARGER (~15 % over-dimensioned) clouds, driven by the 10,000-VM
/// EGEE-like trace. Expected shape: PROACTIVE up to ~18 % shorter than the
/// first-fit family, contention penalizing the multiplexed variants, and
/// the SMALLER system slower than the LARGER one under its higher load
/// pressure.

#include <iostream>

#include "bench/evaluation_common.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const std::vector<bench::EvalCell> cells = bench::run_evaluation();

  std::cout << "== Figure 5: Makespan (s) ==\n\n";
  util::TablePrinter table({"strategy", "cloud", "makespan(s)",
                            "vs FF same cloud"});
  double ff_small = 0.0;
  double ff_large = 0.0;
  for (const auto& cell : cells) {
    if (cell.strategy == "FF") {
      (cell.cloud == "SMALLER" ? ff_small : ff_large) =
          cell.metrics.makespan_s;
    }
  }
  for (const auto& cell : cells) {
    const double ff = cell.cloud == "SMALLER" ? ff_small : ff_large;
    const double delta = 100.0 * (cell.metrics.makespan_s - ff) / ff;
    table.add_row({cell.strategy, cell.cloud,
                   util::format_fixed(cell.metrics.makespan_s, 0),
                   util::format_fixed(delta, 1) + "%"});
  }
  table.print(std::cout);

  double best_pa_small = 0.0;
  for (const auto& cell : cells) {
    if (cell.cloud == "SMALLER" && cell.strategy.rfind("PA", 0) == 0) {
      if (best_pa_small == 0.0 || cell.metrics.makespan_s < best_pa_small) {
        best_pa_small = cell.metrics.makespan_s;
      }
    }
  }
  std::cout << "\nPROACTIVE vs FF (SMALLER): "
            << util::format_fixed(100.0 * (ff_small - best_pa_small) / ff_small,
                                  1)
            << "% shorter makespan (paper: up to 18%)\n";
  return 0;
}
