/// Ablation: brute-force budget vs solution quality.
///
/// The paper deliberately uses a brute-force partition search "to
/// demonstrate and study the potential" of application-centric
/// allocation. This harness quantifies what the brute force buys: for
/// large requests (12 mixed VMs — 6k+ typed partitions), sweep the
/// partition budget and report the α-rank gap to the exhaustive optimum
/// and the allocator latency. Because the enumeration emits coarse
/// partitions first, tiny budgets already land close.

#include <chrono>
#include <iostream>

#include "bench/harness_common.hpp"
#include "core/proactive.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();

  // A demanding request on a partially loaded cluster.
  std::vector<core::VmRequest> request;
  std::int64_t id = 1;
  for (int i = 0; i < 4; ++i) {
    request.push_back(core::VmRequest{id++, workload::ProfileClass::kCpu,
                                      1e12});
    request.push_back(core::VmRequest{id++, workload::ProfileClass::kMem,
                                      1e12});
    request.push_back(core::VmRequest{id++, workload::ProfileClass::kIo,
                                      1e12});
  }
  std::vector<core::ServerState> servers;
  for (int s = 0; s < 12; ++s) {
    core::ServerState server;
    server.id = s;
    if (s % 4 == 0) {
      server.allocated = workload::ClassCounts{1, 2, 1};
      server.powered = true;
    }
    servers.push_back(server);
  }

  std::cout << "== Ablation: partition budget vs solution quality (12-VM "
               "request, 12 servers) ==\n\n";

  // Exhaustive reference.
  core::ProactiveConfig full_config;
  full_config.alpha = 0.5;
  full_config.max_partitions = 10'000'000;
  const core::ProactiveAllocator full(db, full_config);
  const core::AllocationResult best = full.allocate(request, servers);

  util::TablePrinter table({"budget", "partitions examined", "rank gap(%)",
                            "latency(ms)"});
  for (const std::size_t budget :
       {std::size_t{1}, std::size_t{10}, std::size_t{100}, std::size_t{1000},
        std::size_t{10'000'000}}) {
    core::ProactiveConfig config;
    config.alpha = 0.5;
    config.max_partitions = budget;
    const core::ProactiveAllocator allocator(db, config);
    const auto t0 = std::chrono::steady_clock::now();
    const core::AllocationResult result = allocator.allocate(request, servers);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const double gap = 100.0 *
                       (result.score.combined - best.score.combined) /
                       best.score.combined;
    table.add_row({budget > 1'000'000 ? "exhaustive" : std::to_string(budget),
                   std::to_string(result.partitions_examined),
                   util::format_fixed(gap, 2), util::format_fixed(ms, 2)});
  }
  table.print(std::cout);
  std::cout << "\nthe paper's request sizes (1-4 VMs) need at most 5 "
               "partitions, where the search is exact by construction; "
               "even at 12 VMs a few hundred partitions close the gap.\n";
  return 0;
}
