/// Microbench: decision latency of the incremental serve planner
/// (docs/PERFORMANCE.md "Decision latency", docs/SERVING.md).
///
/// A large fleet is driven through a deterministic churn replay (seeded
/// request stream, random releases) three times:
///
///  1. **Parity pass (untimed).** Every request is planned in lockstep by
///     core::FleetState (the incremental planner) and by
///     core::ProactiveAllocator over the same up-server vector (the
///     per-request exhaustive baseline); every decision's placements,
///     scores (bitwise), outcome, and search effort must match.
///  2. **Incremental timing passes.** The identical replay, planned by
///     the incremental planner alone; each plan() call is wall-clock
///     timed.
///  3. **Exhaustive timing passes.** The identical replay again, planned
///     by the batch allocator alone over the equivalent server vector.
///
/// Each timing pass runs three times and the reported percentiles are
/// the per-pass minima: scheduler and cache noise from a shared host only
/// ever adds latency, so the minimum is the robust estimate of what each
/// planner actually costs.
///
/// Timing each planner in its own pass is the point: a lockstep loop
/// times each side while the *other* planner's pass over the fleet is
/// evicting its working set, so neither side's steady-state latency is
/// what gets measured (docs/PERFORMANCE.md "Decision latency"). The
/// replay is deterministic — same seed, same plans — so the three passes
/// place identical decisions; the accumulated planned energy of each
/// timing pass is gated against the parity pass to prove it.
///
/// The first `--warmup` decisions of each timing pass are excluded from
/// the latency percentiles (never from the parity gates): serve mode's
/// steady-state decision rate is the quantity under test, and the
/// incremental planner's caches — like any cache — fill over the first
/// minutes of a fresh serve loop (docs/PERFORMANCE.md explains the
/// cold-start transient and how to measure it instead).
///
/// Hard gates (non-zero exit):
///  1. **Exact parity, every decision** (pass 1, warmup included).
///  2. **Energy / makespan ablation.** Accumulated planned energy and
///     estimated makespan must agree within 1e-9 relative across the
///     planners (parity makes the delta identically zero; the threshold
///     catches any future drift-tolerant shortcut) and across the three
///     passes (replay determinism).
///  3. **Speedup (full mode only).** Incremental steady-state p50 must be
///     at least 10x faster than the exhaustive baseline on the large
///     workload. --quick keeps gates 1-2 on a smaller fleet but skips the
///     speedup gate: smoke runs on loaded CI workers must not flake on
///     noise.
///
/// Usage: serve_latency [--quick] [--decisions N] [--servers N]
///                      [--warmup N]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench/harness_common.hpp"
#include "core/incremental.hpp"
#include "util/strings.hpp"

namespace {

using namespace aeva;

/// Full-mode floor on exhaustive-p50 / incremental-p50.
constexpr double kSpeedupFloor = 10.0;
/// Relative tolerance of the energy / makespan ablation gate.
constexpr double kParityTolerance = 1e-9;

[[nodiscard]] bool results_equal(const core::AllocationResult& a,
                                 const core::AllocationResult& b) {
  const auto norm = [](core::AllocationPath path) {
    return path == core::AllocationPath::kIncremental
               ? core::AllocationPath::kPrimary
               : path;
  };
  if (a.complete != b.complete || a.satisfied_qos != b.satisfied_qos ||
      a.partitions_examined != b.partitions_examined ||
      norm(a.outcome.path) != norm(b.outcome.path) ||
      a.outcome.reason != b.outcome.reason ||
      a.outcome.search_truncated != b.outcome.search_truncated ||
      a.score.est_time_s != b.score.est_time_s ||
      a.score.est_energy_j != b.score.est_energy_j ||
      a.score.combined != b.score.combined ||
      a.placements.size() != b.placements.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    if (a.placements[i].vm_id != b.placements[i].vm_id ||
        a.placements[i].server_id != b.placements[i].server_id) {
      return false;
    }
  }
  return true;
}

[[nodiscard]] double percentile_us(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1));
  return samples[index];
}

enum class Pass { kParity, kIncremental, kExhaustive };

/// One full churn replay. The request and release streams are pure
/// functions of the seed and the (deterministic) plans, so every pass
/// places the same decisions; `Pass` selects which planner runs and is
/// timed.
struct ReplayResult {
  bool ok = true;
  std::uint64_t placed = 0;
  double energy = 0.0;    ///< accumulated planned energy (timed planner)
  double makespan = 0.0;  ///< accumulated estimated makespan
  double batch_energy = 0.0;    ///< parity pass only: exhaustive side
  double batch_makespan = 0.0;  ///< parity pass only
  std::vector<double> us;       ///< post-warmup latencies (timing passes)
  core::FleetStats stats;       ///< incremental planner counters
};

ReplayResult run_replay(Pass pass, std::size_t decisions, int servers,
                        std::size_t warmup, const modeldb::ModelDatabase& db,
                        const core::ProactiveConfig& config) {
  ReplayResult out;
  std::vector<core::ServerState> ground(static_cast<std::size_t>(servers));
  for (int i = 0; i < servers; ++i) {
    ground[static_cast<std::size_t>(i)].id = i;
  }

  std::optional<core::FleetState> fleet;
  if (pass != Pass::kExhaustive) {
    fleet.emplace(db, config);
    fleet->reset(ground);
  }
  std::optional<core::ProactiveAllocator> batch;
  if (pass != Pass::kIncremental) {
    batch.emplace(db, config);
  }

  util::Rng rng(2026);
  struct Resident {
    int server_id = 0;
    workload::ProfileClass profile{};
  };
  std::vector<Resident> residents;
  out.us.reserve(decisions);

  using clock = std::chrono::steady_clock;
  for (std::size_t d = 0; d < decisions; ++d) {
    const int vm_count = static_cast<int>(rng.uniform_int(1, 4));
    std::vector<core::VmRequest> vms;
    for (int i = 0; i < vm_count; ++i) {
      core::VmRequest vm;
      vm.id = i + 1;
      vm.profile = workload::kAllProfileClasses[static_cast<std::size_t>(
          rng.uniform_int(0, 2))];
      vm.max_exec_time_s =
          rng.bernoulli(0.25) ? rng.uniform(1500.0, 5000.0) : 1e12;
      vms.push_back(vm);
    }

    core::AllocationResult chosen;
    switch (pass) {
      case Pass::kParity: {
        chosen = fleet->plan(vms);
        const core::AllocationResult bat =
            batch->allocate(vms, fleet->up_servers());
        if (!results_equal(chosen, bat)) {
          std::cerr << "FAIL: decision " << d
                    << " diverges from the exhaustive baseline (incremental "
                    << (chosen.complete ? "placed" : "rejected")
                    << ", exhaustive "
                    << (bat.complete ? "placed" : "rejected") << ")\n";
          out.ok = false;
          return out;
        }
        if (chosen.complete) {
          out.batch_energy += bat.score.est_energy_j;
          out.batch_makespan += bat.score.est_time_s;
        }
        break;
      }
      case Pass::kIncremental: {
        const auto t0 = clock::now();
        chosen = fleet->plan(vms);
        const auto t1 = clock::now();
        if (d >= warmup) {
          out.us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
        break;
      }
      case Pass::kExhaustive: {
        const auto t0 = clock::now();
        chosen = batch->allocate(vms, ground);
        const auto t1 = clock::now();
        if (d >= warmup) {
          out.us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
        break;
      }
    }

    if (chosen.complete) {
      ++out.placed;
      out.energy += chosen.score.est_energy_j;
      out.makespan += chosen.score.est_time_s;
      for (const core::Placement& p : chosen.placements) {
        const workload::ProfileClass profile =
            vms[static_cast<std::size_t>(p.vm_id - 1)].profile;
        if (fleet) {
          fleet->allocate(p.server_id, profile);
        } else {
          // Mirror FleetState::allocate on the plain vector: ids are the
          // vector positions, and `powered` latches true on first use.
          core::ServerState& server =
              ground[static_cast<std::size_t>(p.server_id)];
          server.allocated.of(profile) += 1;
          server.powered = true;
        }
        residents.push_back(Resident{p.server_id, profile});
      }
    }
    // Random releases keep the fleet churning below saturation.
    while (!residents.empty() && rng.bernoulli(0.45)) {
      const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(residents.size()) - 1));
      if (fleet) {
        fleet->deallocate(residents[pick].server_id, residents[pick].profile);
      } else {
        ground[static_cast<std::size_t>(residents[pick].server_id)]
            .allocated.of(residents[pick].profile) -= 1;
      }
      residents[pick] = residents.back();
      residents.pop_back();
    }
  }

  if (fleet) {
    out.stats = fleet->stats();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(
      argc, argv,
      "incremental-vs-exhaustive decision latency and parity gates",
      {
          {"quick", "", "smaller fleet; skips the speedup gate"},
          {"decisions", "N", "churn decisions per replay pass"},
          {"servers", "N", "fleet size"},
          {"warmup", "N", "decisions excluded from latency percentiles"},
      });
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  const bool quick = args.has("quick");
  const auto decisions = static_cast<std::size_t>(
      args.get_int("decisions", quick ? 60 : 4000));
  const int servers = static_cast<int>(
      args.get_int("servers", quick ? 96 : 480));
  const auto warmup = std::min(
      static_cast<std::size_t>(args.get_int("warmup", quick ? 20 : 1500)),
      decisions);

  const modeldb::ModelDatabase& db = bench::shared_database();
  core::ProactiveConfig config;
  config.alpha = 0.5;

  std::cout << "serve_latency: 3 replay passes (parity, incremental, "
            << "exhaustive) of " << decisions << " decisions on " << servers
            << " servers, first " << warmup
            << " of each timing pass excluded as warmup"
            << (quick ? " (quick: speedup gate off)" : "") << "\n";

  constexpr int kTimingRepeats = 3;
  bool ok = true;
  const ReplayResult parity =
      run_replay(Pass::kParity, decisions, servers, warmup, db, config);
  ok = parity.ok;

  const auto relative_delta = [](double a, double b) {
    return std::abs(a - b) / std::max(1.0, std::abs(b));
  };
  if (ok && parity.placed == 0) {
    std::cerr << "FAIL: the replay never placed a request — the parity and "
                 "latency gates measured nothing\n";
    ok = false;
  }
  if (ok &&
      relative_delta(parity.energy, parity.batch_energy) > kParityTolerance) {
    std::cerr << "FAIL: accumulated planned energy diverged ("
              << parity.energy << " J incremental vs " << parity.batch_energy
              << " J exhaustive)\n";
    ok = false;
  }
  if (ok && relative_delta(parity.makespan, parity.batch_makespan) >
                kParityTolerance) {
    std::cerr << "FAIL: accumulated estimated makespan diverged ("
              << parity.makespan << " s incremental vs "
              << parity.batch_makespan << " s exhaustive)\n";
    ok = false;
  }

  double inc_p50 = 0.0;
  double inc_p99 = 0.0;
  double batch_p50 = 0.0;
  double batch_p99 = 0.0;
  core::FleetStats inc_stats;
  if (ok) {
    for (int rep = 0; rep < kTimingRepeats && ok; ++rep) {
      const ReplayResult inc = run_replay(Pass::kIncremental, decisions,
                                          servers, warmup, db, config);
      const ReplayResult bat = run_replay(Pass::kExhaustive, decisions,
                                          servers, warmup, db, config);
      // Replay determinism: every timing pass must place the exact
      // decisions the parity pass gated, or its latencies measured a
      // different workload.
      for (const ReplayResult* pass : {&inc, &bat}) {
        if (pass->placed != parity.placed ||
            relative_delta(pass->energy, parity.energy) > kParityTolerance) {
          std::cerr << "FAIL: a timing pass diverged from the parity replay ("
                    << pass->placed << "/" << parity.placed << " placed, "
                    << pass->energy << " J vs " << parity.energy << " J)\n";
          ok = false;
        }
      }
      const auto fold_min = [rep](double& into, double sample) {
        into = rep == 0 ? sample : std::min(into, sample);
      };
      fold_min(inc_p50, percentile_us(inc.us, 0.50));
      fold_min(inc_p99, percentile_us(inc.us, 0.99));
      fold_min(batch_p50, percentile_us(bat.us, 0.50));
      fold_min(batch_p99, percentile_us(bat.us, 0.99));
      inc_stats = inc.stats;
    }
  }
  const double speedup_p50 = inc_p50 > 0.0 ? batch_p50 / inc_p50 : 0.0;
  const double speedup_p99 = inc_p99 > 0.0 ? batch_p99 / inc_p99 : 0.0;

  std::cout << "  incremental : p50 " << util::format_fixed(inc_p50, 1)
            << " us, p99 " << util::format_fixed(inc_p99, 1) << " us ("
            << inc_stats.groups << " groups, " << inc_stats.memo_entries
            << " memo entries)\n"
            << "  exhaustive  : p50 " << util::format_fixed(batch_p50, 1)
            << " us, p99 " << util::format_fixed(batch_p99, 1) << " us\n"
            << "  speedup     : p50 " << util::format_fixed(speedup_p50, 1)
            << "x, p99 " << util::format_fixed(speedup_p99, 1) << "x ("
            << parity.placed << "/" << decisions << " placed)\n";

  if (ok && !quick && speedup_p50 < kSpeedupFloor) {
    std::cerr << "FAIL: incremental p50 speedup "
              << util::format_fixed(speedup_p50, 1) << "x is below the "
              << util::format_fixed(kSpeedupFloor, 0) << "x floor on "
              << servers << " servers\n";
    ok = false;
  }
  if (ok) {
    std::cout << "parity + latency gates: PASS\n";
  }

  std::string json = "BENCH_JSON {\"bench\":\"serve_latency\"";
  json += ",\"servers\":" + std::to_string(servers);
  json += ",\"decisions\":" + std::to_string(decisions);
  json += ",\"warmup\":" + std::to_string(warmup);
  json += ",\"placed\":" + std::to_string(parity.placed);
  json += ",\"incremental_p50_us\":" + util::format_fixed(inc_p50, 3);
  json += ",\"incremental_p99_us\":" + util::format_fixed(inc_p99, 3);
  json += ",\"exhaustive_p50_us\":" + util::format_fixed(batch_p50, 3);
  json += ",\"exhaustive_p99_us\":" + util::format_fixed(batch_p99, 3);
  json += ",\"speedup_p50\":" + util::format_fixed(speedup_p50, 3);
  json += ",\"speedup_p99\":" + util::format_fixed(speedup_p99, 3);
  json += ",\"groups\":" + std::to_string(inc_stats.groups);
  json += ",\"memo_entries\":" + std::to_string(inc_stats.memo_entries);
  json += ",\"energy_delta_rel\":" +
          util::format_fixed(relative_delta(parity.energy, parity.batch_energy),
                             12);
  json += ",\"makespan_delta_rel\":" +
          util::format_fixed(
              relative_delta(parity.makespan, parity.batch_makespan), 12);
  json += ",\"pass\":";
  json += ok ? "true" : "false";
  json += "}";
  std::cout << json << "\n";
  return ok ? 0 : 1;
}
