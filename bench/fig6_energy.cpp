/// Reproduces **Figure 6** — "Energy consumption (J)": total cloud energy
/// per strategy and cloud size. Expected shape: PROACTIVE saves around
/// 12 % on average versus the first-fit family; the energy goal (PA-1)
/// edges out the performance goal (PA-0) by a few percent with PA-0.5 in
/// between (spread < ~3 %); and the SMALLER system consumes less energy
/// than the over-dimensioned LARGER one.

#include <iostream>

#include "bench/evaluation_common.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const std::vector<bench::EvalCell> cells = bench::run_evaluation();

  std::cout << "== Figure 6: Energy consumption (J) ==\n\n";
  util::TablePrinter table({"strategy", "cloud", "energy(MJ)",
                            "vs FF family avg"});
  for (const std::string cloud : {"SMALLER", "LARGER"}) {
    double ff_family = 0.0;
    int ff_count = 0;
    for (const auto& cell : cells) {
      if (cell.cloud == cloud && cell.strategy.rfind("FF", 0) == 0) {
        ff_family += cell.metrics.energy_j;
        ++ff_count;
      }
    }
    ff_family /= ff_count;
    for (const auto& cell : cells) {
      if (cell.cloud != cloud) {
        continue;
      }
      const double delta =
          100.0 * (cell.metrics.energy_j - ff_family) / ff_family;
      table.add_row({cell.strategy, cell.cloud,
                     util::format_fixed(cell.metrics.energy_j / 1e6, 1),
                     util::format_fixed(delta, 1) + "%"});
    }
  }
  table.print(std::cout);

  // Headline numbers.
  const auto find = [&](const std::string& strategy, const std::string& cloud) {
    for (const auto& cell : cells) {
      if (cell.strategy == strategy && cell.cloud == cloud) {
        return cell.metrics.energy_j;
      }
    }
    return 0.0;
  };
  double ff_avg = 0.0;
  for (const std::string s : {"FF", "FF-2", "FF-3"}) {
    ff_avg += find(s, "SMALLER");
  }
  ff_avg /= 3.0;
  const double pa1 = find("PA-1", "SMALLER");
  const double pa0 = find("PA-0", "SMALLER");
  std::cout << "\nPROACTIVE (PA-1) vs FF family avg (SMALLER): "
            << util::format_fixed(100.0 * (ff_avg - pa1) / ff_avg, 1)
            << "% less energy (paper: ~12% on average)\n";
  std::cout << "PA-1 vs PA-0 (LARGER): "
            << util::format_fixed(100.0 *
                                      (find("PA-0", "LARGER") -
                                       find("PA-1", "LARGER")) /
                                      find("PA-0", "LARGER"),
                                  1)
            << "% less energy with the energy goal (paper: ~3%)\n";
  std::cout << "PA-1 vs PA-0 (SMALLER): "
            << util::format_fixed(100.0 * (pa0 - pa1) / pa0, 1) << "%\n";
  return 0;
}
