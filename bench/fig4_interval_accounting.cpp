/// Reproduces **Figure 4** — "Possible VM allocation outcome over time":
/// the interval-weighted accounting example. The paper computes
///   ExecTime_VM1 = 0.7·1200 s + 0.3·1800 s = 1380 s
///   Energy       = 0.35·15 kJ + 0.15·20 kJ + 0.5·12 kJ = 14.25 kJ
/// and this harness reproduces both numbers exactly through the
/// accounting helpers the simulator is built on.

#include <iostream>

#include "datacenter/accounting.hpp"
#include "util/strings.hpp"

int main() {
  using namespace aeva::datacenter;

  std::cout << "== Figure 4: interval-weighted accounting ==\n\n";
  std::cout << "VM1 spends 70% of its execution under allocation A "
               "(estimate 1200 s)\nand 30% under allocation B (estimate "
               "1800 s):\n";
  const double exec_vm1 = interval_weighted_time_s({
      {0.7, 1200.0},
      {0.3, 1800.0},
  });
  std::cout << "  ExecTime_VM1 = 0.7*1200 + 0.3*1800 = "
            << aeva::util::format_fixed(exec_vm1, 0) << " s (paper: 1380 s)\n\n";

  std::cout << "the outcome spends 35% in interval A (15 kJ), 15% in B "
               "(20 kJ), 50% in C (12 kJ):\n";
  const double energy = interval_weighted_energy_j({
      {0.35, 15000.0},
      {0.15, 20000.0},
      {0.50, 12000.0},
  });
  std::cout << "  Energy = 0.35*15 + 0.15*20 + 0.5*12 = "
            << aeva::util::format_fixed(energy / 1000.0, 2)
            << " kJ (paper: 14.25 kJ)\n\n";

  const bool ok = exec_vm1 == 1380.0 && energy == 14250.0;
  std::cout << (ok ? "exact match with the paper's example"
                   : "MISMATCH with the paper's example")
            << "\n";
  return ok ? 0 : 1;
}
