/// Extension: state-of-the-art baseline comparison.
///
/// The paper's Sect. V lists "compare our proposed solution against some
/// of the state of the art … by implementing them" as ongoing work. This
/// harness runs the classic packing heuristics — best-fit (BF-2),
/// worst-fit (WF-2), random placement (RAND-2), and dot-product vector
/// bin packing (VEC, the strongest model-free application-aware
/// competitor) — against the paper's FF family and the PROACTIVE
/// strategies on the standard 10,000-VM workload (SMALLER cloud).

#include <iostream>
#include <memory>

#include "bench/harness_common.hpp"
#include "core/baselines.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();
  const trace::PreparedWorkload workload = bench::standard_workload(db);
  const datacenter::Simulator sim(db, bench::smaller_cloud());

  std::vector<std::unique_ptr<core::Allocator>> strategies;
  strategies.push_back(std::make_unique<core::FirstFitAllocator>(1));
  strategies.push_back(std::make_unique<core::FirstFitAllocator>(2));
  strategies.push_back(std::make_unique<core::SlotFitAllocator>(
      core::SlotFitAllocator::Policy::kBestFit, 2));
  strategies.push_back(std::make_unique<core::SlotFitAllocator>(
      core::SlotFitAllocator::Policy::kWorstFit, 2));
  strategies.push_back(std::make_unique<core::RandomFitAllocator>(2026, 2));
  strategies.push_back(std::make_unique<core::VectorFitAllocator>(
      core::VectorFitAllocator::from_registry(1.0)));
  {
    core::ProactiveConfig config;
    config.alpha = 0.5;
    strategies.push_back(
        std::make_unique<core::ProactiveAllocator>(db, config));
  }
  {
    core::ProactiveConfig config;
    config.goal = core::ProactiveGoal::kEnergyDelayProduct;
    strategies.push_back(
        std::make_unique<core::ProactiveAllocator>(db, config));
  }

  std::cout << "== Extension: state-of-the-art baselines (SMALLER cloud, "
               "10k VMs) ==\n\n";
  util::TablePrinter table({"strategy", "makespan(s)", "energy(MJ)",
                            "SLA(%)", "mean busy servers"});
  double pa_energy = 0.0;
  double vec_energy = 0.0;
  for (const auto& strategy : strategies) {
    const datacenter::SimMetrics metrics = sim.run(workload, *strategy);
    table.add_row({strategy->name(),
                   util::format_fixed(metrics.makespan_s, 0),
                   util::format_fixed(metrics.energy_j / 1e6, 1),
                   util::format_fixed(metrics.sla_violation_pct, 2),
                   util::format_fixed(metrics.mean_busy_servers, 1)});
    if (strategy->name() == "PA-0.5") {
      pa_energy = metrics.energy_j;
    }
    if (strategy->name() == "VEC") {
      vec_energy = metrics.energy_j;
    }
  }
  table.print(std::cout);

  std::cout << "\ndot-product vector packing is the strongest model-free "
               "competitor (it matches PROACTIVE's makespan at this load); "
               "the empirical model still runs "
            << util::format_fixed(100.0 * (vec_energy - pa_energy) / vec_energy,
                                  1)
            << "% greener because it prices contention and consolidation, "
               "not just nominal capacity.\n";
  return 0;
}
