/// Extension: proactive placement vs reactive migration-based
/// consolidation.
///
/// The paper's premise (from the authors' reactive predecessor [3]) is
/// that an application-centric *proactive* allocation model "can help …
/// minimize the energy costs by improving resource utilization and by
/// avoiding costly VM migrations". This harness quantifies that: first-fit
/// placement patched up by a periodic live-migration consolidation sweep
/// versus PROACTIVE placement that gets the packing right the first time —
/// same workload, same cloud, migration costs (transfer occupancy,
/// degradation, stop-and-copy downtime) modeled explicitly.

#include <iostream>
#include <memory>

#include "bench/harness_common.hpp"
#include "core/proactive.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();
  // Moderate load: consolidation opportunities exist when the cloud is not
  // saturated (stragglers leave servers lightly loaded).
  const trace::PreparedWorkload workload =
      bench::standard_workload(db, 2026, 6000);

  std::cout << "== Extension: proactive placement vs reactive migration "
               "(SMALLER cloud, 6k VMs) ==\n\n";
  util::TablePrinter table({"strategy", "migrations", "makespan(s)",
                            "energy(MJ)", "mean busy servers", "SLA(%)"});

  struct Scenario {
    const char* label;
    bool proactive;
    bool migration;
  };
  const Scenario scenarios[] = {
      {"FF-2", false, false},
      {"FF-2 + reactive consolidation", false, true},
      {"PA-1 (proactive)", true, false},
      {"PA-1 + reactive consolidation", true, true},
  };

  for (const Scenario& scenario : scenarios) {
    datacenter::CloudConfig cloud = bench::smaller_cloud();
    cloud.migration.enabled = scenario.migration;
    const datacenter::Simulator sim(db, cloud);
    std::unique_ptr<core::Allocator> strategy;
    if (scenario.proactive) {
      core::ProactiveConfig config;
      config.alpha = 1.0;
      strategy = std::make_unique<core::ProactiveAllocator>(db, config);
    } else {
      strategy = std::make_unique<core::FirstFitAllocator>(2);
    }
    const datacenter::SimMetrics m = sim.run(workload, *strategy);
    table.add_row({scenario.label, std::to_string(m.migrations),
                   util::format_fixed(m.makespan_s, 0),
                   util::format_fixed(m.energy_j / 1e6, 1),
                   util::format_fixed(m.mean_busy_servers, 1),
                   util::format_fixed(m.sla_violation_pct, 2)});
  }
  table.print(std::cout);
  std::cout << "\nproactive application-centric placement reaches the "
               "consolidated operating point without paying the migration "
               "machinery — the motivation the paper carries over from its "
               "reactive predecessor.\n";
  return 0;
}
