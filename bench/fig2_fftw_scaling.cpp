/// Reproduces **Figure 2** — "Execution times of the FFTW benchmark":
/// average execution time per VM as the number of FFTW VMs on one physical
/// server grows from 1 to 16. The paper's testbed shows the shortest
/// average execution time at 9 VMs and a significant increase past 11,
/// where co-location degrades to the cost of running the benchmarks
/// sequentially.

#include <algorithm>
#include <iostream>

#include "bench/harness_common.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"
#include "workload/registry.hpp"

int main() {
  using namespace aeva;

  modeldb::CampaignConfig config;
  config.server = testbed::testbed_server();
  const modeldb::Campaign campaign(config);

  const workload::AppSpec& fftw = workload::find_app("fftw");
  const std::vector<modeldb::Record> curve = campaign.scaling_curve(fftw, 16);

  std::cout << "== Figure 2: FFTW average execution time vs #VMs on one "
               "server ==\n\n";
  util::TablePrinter table({"#VMs", "avgTimeVM(s)", "Time(s)", "Energy(J)"});
  int best_n = 1;
  double best_avg = curve.front().avg_time_vm_s;
  for (const modeldb::Record& r : curve) {
    table.add_row({std::to_string(r.key.total()),
                   util::format_fixed(r.avg_time_vm_s, 1),
                   util::format_fixed(r.time_s, 1),
                   util::format_fixed(r.energy_j, 0)});
    if (r.avg_time_vm_s < best_avg) {
      best_avg = r.avg_time_vm_s;
      best_n = r.key.total();
    }
  }
  table.print(std::cout);

  const double solo = curve.front().time_s;
  const double at13 = curve[12].avg_time_vm_s;
  std::cout << "\noptimal scenario: " << best_n
            << " VMs (paper: 9)  |  avgTimeVM(13)/optimum = "
            << util::format_fixed(at13 / best_avg, 2)
            << "x  |  solo runtime = " << util::format_fixed(solo, 1)
            << " s\n";
  return 0;
}
