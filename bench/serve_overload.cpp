/// Microbench: the serve layer's two hard contracts (docs/RESILIENCE.md,
/// "Overload protection").
///
///  1. **Graceful degradation, no cliff.** The same arrival stream is
///     offered at rates sweeping from well under capacity to far past it.
///     A resilient service sheds the excess and keeps serving: the number
///     of placed requests at every higher offered rate must stay above
///     `kCliffFloor` × the best placed count seen at any lower rate, and
///     the overloaded end of the sweep must actually shed (otherwise the
///     sweep never left the comfortable regime and gates nothing).
///  2. **Unloaded bit-identity to the batch path.** With overload
///     protection idle (no deadlines, infinite holds, breaker and retries
///     off), the service must make exactly the decisions of the batch
///     allocator chain run sequentially over the same requests: same
///     placement targets in the same order, same rejections, same final
///     fleet. The serve loop is a scheduling shell, not a different
///     allocator.
///
/// Sweep goodputs are reported as BENCH_JSON; the two contracts are hard
/// gates (non-zero exit).
///
/// Usage: serve_overload [--quick] [--requests 500] [--servers 16]

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness_common.hpp"
#include "serve/service.hpp"
#include "util/strings.hpp"

namespace {

using namespace aeva;

/// A higher offered rate may keep at most this fraction less goodput than
/// the best lower-rate run: past the shed point the placed count flattens
/// (capacity-bound), it must never collapse.
constexpr double kCliffFloor = 0.7;

serve::ServeConfig sweep_config(int servers) {
  serve::ServeConfig config;
  config.server_count = servers;
  config.queue.capacity = 32;
  // Watermarks sized to the queue so the ladder engages inside the sweep.
  config.health.queue_high = 24.0;
  config.health.queue_low = 4.0;
  // A deep retry budget lets backoff bridge the capacity-recycle window
  // (holds average 40 s): transient overload is absorbed, not fatal.
  config.retry.max_attempts = 8;
  return config;
}

serve::ServeResult run_at_rate(const modeldb::ModelDatabase& db,
                               double rate_rps, std::size_t requests,
                               int servers) {
  serve::ArrivalStreamConfig stream_config;
  stream_config.count = requests;
  stream_config.rate_rps = rate_rps;
  stream_config.hold_mean_s = 40.0;
  // No client deadlines in the sweep: goodput then measures what the
  // *service* can sustain, not how patient the synthetic clients are.
  const std::vector<serve::ServeRequest> stream =
      serve::generate_stream(stream_config, 2026);
  const serve::AllocationService service(db, sweep_config(servers));
  return service.run(stream);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(
      argc, argv, "serve-layer overload sweep and batch bit-identity gates",
      {
          {"quick", "", "smaller sweep for smoke runs"},
          {"requests", "N", "arrival stream length per sweep point"},
          {"servers", "N", "service fleet size"},
      });
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  const bool quick = args.has("quick");
  const auto requests = static_cast<std::size_t>(
      args.get_int("requests", quick ? 250 : 500));
  const int servers = static_cast<int>(args.get_int("servers", 16));

  const modeldb::ModelDatabase& db = bench::shared_database();

  // --- contract 1: sweep offered load past capacity -----------------------
  const std::vector<double> rates = quick
                                        ? std::vector<double>{4, 16, 64}
                                        : std::vector<double>{4, 8, 16, 32,
                                                              64, 128};
  std::cout << "serve_overload: " << requests << " requests on " << servers
            << " servers, offered rates";
  for (const double rate : rates) {
    std::cout << " " << util::format_fixed(rate, 0);
  }
  std::cout << " req/s\n";

  bool ok = true;
  std::uint64_t best_placed = 0;
  std::uint64_t total_sheds = 0;
  std::string sweep_json;
  for (const double rate : rates) {
    const serve::ServeResult result = run_at_rate(db, rate, requests,
                                                  servers);
    const serve::ServeMetrics& m = result.metrics;
    total_sheds += m.sheds;
    std::cout << "  rate " << util::format_fixed(rate, 0) << " req/s: placed "
              << m.placed << "/" << m.offered << " (goodput "
              << util::format_fixed(m.goodput_fraction, 3) << "), sheds "
              << m.sheds << ", breaker trips " << m.breaker_trips
              << ", peak depth "
              << util::format_fixed(m.peak_queue_depth, 0) << "\n";
    if (!sweep_json.empty()) {
      sweep_json += ",";
    }
    sweep_json += "{\"rate_rps\":" + util::format_fixed(rate, 0) +
                  ",\"placed\":" + std::to_string(m.placed) +
                  ",\"sheds\":" + std::to_string(m.sheds) + "}";
    const auto floor =
        static_cast<std::uint64_t>(kCliffFloor *
                                   static_cast<double>(best_placed));
    if (m.placed < floor) {
      std::cerr << "FAIL: goodput cliff at " << util::format_fixed(rate, 0)
                << " req/s — placed " << m.placed
                << " fell below " << floor << " (" << kCliffFloor
                << " x best lower-rate " << best_placed << ")\n";
      ok = false;
    }
    best_placed = std::max(best_placed, m.placed);
  }
  if (total_sheds == 0) {
    std::cerr << "FAIL: the sweep never shed a request — raise the rates "
                 "or shrink the fleet; the degradation gate tested "
                 "nothing\n";
    ok = false;
  }
  if (ok) {
    std::cout << "graceful degradation: PASS (no goodput cliff across "
              << rates.size() << " offered rates, " << total_sheds
              << " sheds)\n";
  }

  // --- contract 2: unloaded serve == batch allocator chain ----------------
  serve::ArrivalStreamConfig unloaded;
  unloaded.count = quick ? 120 : 200;
  unloaded.rate_rps = 2.0;
  unloaded.hold_mean_s = 0.0;  // hold forever: the batch-equivalence mode
  const std::vector<serve::ServeRequest> stream =
      serve::generate_stream(unloaded, 2026);

  serve::ServeConfig idle_config;
  idle_config.server_count = servers;
  idle_config.health.enabled = false;
  idle_config.retry.enabled = false;
  idle_config.deadline.enforce = false;
  const serve::AllocationService service(db, idle_config);
  const serve::ServeResult served = service.run(stream);

  // The batch reference: the same allocator chain driven directly, one
  // request at a time, applying placements immediately. VM ids advance
  // even on a failed attempt, exactly as the service consumes them.
  core::ProactiveConfig pa_config = idle_config.proactive;
  const core::ProactiveAllocator batch(db, pa_config);
  std::vector<core::ServerState> fleet(static_cast<std::size_t>(servers));
  for (int i = 0; i < servers; ++i) {
    fleet[static_cast<std::size_t>(i)].id = i;
  }
  std::int64_t next_vm_id = 1;
  std::vector<std::vector<std::int32_t>> expected;
  expected.reserve(stream.size());
  for (const serve::ServeRequest& request : stream) {
    std::vector<core::VmRequest> vms;
    vms.reserve(static_cast<std::size_t>(request.vm_count));
    for (int i = 0; i < request.vm_count; ++i) {
      vms.push_back(core::VmRequest{next_vm_id++, request.profile,
                                    request.qos_time_s});
    }
    const core::AllocationResult result = batch.allocate(vms, fleet);
    std::vector<std::int32_t> targets;
    if (result.complete) {
      for (const core::Placement& p : result.placements) {
        targets.push_back(p.server_id);
        core::ServerState& server =
            fleet[static_cast<std::size_t>(p.server_id)];
        ++server.allocated.of(request.profile);
        server.powered = true;
      }
    }
    expected.push_back(std::move(targets));
  }

  if (served.log.size() != stream.size()) {
    std::cerr << "FAIL: unloaded serve journaled " << served.log.size()
              << " decisions for " << stream.size() << " requests\n";
    ok = false;
  }
  for (std::size_t i = 0; ok && i < served.log.size(); ++i) {
    const serve::DecisionRecord& rec = served.log[i];
    if (rec.request_id != stream[i].id) {
      std::cerr << "FAIL: decision " << i << " is for request "
                << rec.request_id << ", batch order expects "
                << stream[i].id << "\n";
      ok = false;
      break;
    }
    const bool placed = rec.event == serve::DecisionEvent::kPlaced;
    const bool batch_placed = !expected[i].empty();
    if (placed != batch_placed || rec.servers != expected[i]) {
      std::cerr << "FAIL: request " << rec.request_id
                << " diverges from the batch path (serve "
                << (placed ? "placed" : "rejected") << ", batch "
                << (batch_placed ? "placed" : "rejected") << ")\n";
      ok = false;
      break;
    }
  }
  for (std::size_t i = 0; ok && i < fleet.size(); ++i) {
    const core::ServerState& a = served.final_servers[i];
    const core::ServerState& b = fleet[i];
    if (a.allocated != b.allocated || a.powered != b.powered) {
      std::cerr << "FAIL: final fleet diverges at server " << i << "\n";
      ok = false;
    }
  }
  if (ok) {
    std::cout << "batch bit-identity: PASS (" << stream.size()
              << " unloaded decisions match the batch allocator chain "
                 "exactly)\n";
  }

  std::cout << "BENCH_JSON {\"bench\":\"serve_overload\",\"sweep\":["
            << sweep_json << "],\"unloaded_requests\":" << stream.size()
            << ",\"pass\":" << (ok ? "true" : "false") << "}\n";
  return ok ? 0 : 1;
}
