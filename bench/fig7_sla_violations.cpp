/// Reproduces **Figure 7** — "Percentage of SLA violations": the share of
/// VMs whose response time exceeded the per-type maximum (missed
/// deadlines summed over all applications). Expected shape: the PROACTIVE
/// strategies violate least, violations correlate with makespan, and the
/// loaded SMALLER cloud violates more than the LARGER one.

#include <iostream>

#include "bench/evaluation_common.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const std::vector<bench::EvalCell> cells = bench::run_evaluation();

  std::cout << "== Figure 7: Percentage of SLA violations ==\n\n";
  util::TablePrinter table(
      {"strategy", "cloud", "violations(%)", "missed", "makespan(s)"});
  for (const auto& cell : cells) {
    table.add_row({cell.strategy, cell.cloud,
                   util::format_fixed(cell.metrics.sla_violation_pct, 2),
                   std::to_string(cell.metrics.sla_violations),
                   util::format_fixed(cell.metrics.makespan_s, 0)});
  }
  table.print(std::cout);

  // The paper observes a correlation between execution time and SLA
  // violations; quantify it across all 12 cells.
  std::vector<double> makespans;
  std::vector<double> violations;
  for (const auto& cell : cells) {
    makespans.push_back(cell.metrics.makespan_s);
    violations.push_back(cell.metrics.sla_violation_pct);
  }
  std::cout << "\ncorrelation(makespan, %violations) = "
            << util::format_fixed(util::pearson(makespans, violations), 3)
            << " (paper: \"the higher the makespan, the higher the "
               "percentage of SLA violations\")\n";
  return 0;
}
