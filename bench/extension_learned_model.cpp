/// Extension: learned model vs exhaustive benchmarking.
///
/// The paper's ongoing work proposes "using machine learning techniques to
/// extract on-the-fly a model out of the sub-system utilization data"
/// instead of benchmarking every combination. This harness trains the IDW
/// k-NN regressor on the measured database, reports leave-one-out accuracy,
/// then re-runs the PROACTIVE evaluation with the allocator driven purely
/// by learned predictions — quantifying how much evaluation quality the
/// shortcut costs.

#include <iostream>

#include "bench/harness_common.hpp"
#include "core/proactive.hpp"
#include "modeldb/learned_model.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& measured = bench::shared_database();

  std::cout << "== Extension: learned model (IDW k-NN) vs measured "
               "database ==\n\n";

  for (const int k : {1, 2, 4, 8}) {
    modeldb::LearnedModelConfig config;
    config.neighbours = k;
    const modeldb::LearnedModel model(measured, config);
    const modeldb::LooStats loo = model.leave_one_out();
    std::cout << "k=" << k << ": leave-one-out MAPE time "
              << util::format_fixed(100.0 * loo.time_mape, 1) << "%, energy "
              << util::format_fixed(100.0 * loo.energy_mape, 1) << "% over "
              << loo.samples << " records\n";
  }

  // The real promise of the learned model: skip most of the combination
  // experiments. Train on the base tests plus every third combination
  // (~2/3 fewer mixed testbed runs) and let k-NN fill the rest of the box.
  std::vector<modeldb::Record> subset;
  std::size_t mixed_seen = 0;
  for (const modeldb::Record& r : measured.records()) {
    const int nonzero =
        (r.key.cpu > 0) + (r.key.mem > 0) + (r.key.io > 0);
    if (nonzero <= 1 || mixed_seen++ % 3 == 0) {
      subset.push_back(r);
    }
  }
  const modeldb::ModelDatabase sparse(subset, measured.base());
  std::cout << "\ntraining on " << sparse.size() << " of " << measured.size()
            << " experiments (base tests + 1/3 of combinations)\n";
  const modeldb::LearnedModel model(sparse);
  const modeldb::ModelDatabase learned = model.materialize(
      workload::ClassCounts{measured.base().cpu.os(),
                            measured.base().mem.os(),
                            measured.base().io.os()});

  const trace::PreparedWorkload workload = bench::standard_workload(measured);
  const datacenter::Simulator sim(measured, bench::smaller_cloud());

  std::cout << "\nPROACTIVE (PA-0.5) on the SMALLER cloud, allocator driven "
               "by:\n";
  util::TablePrinter table(
      {"model", "makespan(s)", "energy(MJ)", "SLA(%)"});
  for (const bool use_learned : {false, true}) {
    core::ProactiveConfig config;
    config.alpha = 0.5;
    const core::ProactiveAllocator allocator(
        use_learned ? learned : measured, config);
    // Accounting always uses the measured database (the "real" testbed
    // behaviour); only the allocator's beliefs change.
    const datacenter::SimMetrics metrics = sim.run(workload, allocator);
    table.add_row({use_learned ? "learned (k-NN)" : "measured (campaign)",
                   util::format_fixed(metrics.makespan_s, 0),
                   util::format_fixed(metrics.energy_j / 1e6, 1),
                   util::format_fixed(metrics.sla_violation_pct, 2)});
  }
  table.print(std::cout);
  std::cout << "\n(learned-model allocation decisions are estimated on "
               "predictions but accounted against the measured model — an "
               "honest generalization test)\n";
  return 0;
}
