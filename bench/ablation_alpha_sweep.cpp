/// Ablation: the α tradeoff sweep.
///
/// The paper reports PA-1 / PA-0.5 / PA-0 and notes that other settings
/// (e.g. α = 0.75) did not change the results significantly. This harness
/// sweeps α across [0, 1] on the standard workload (LARGER cloud, where
/// the goals differentiate most) and prints the resulting
/// makespan/energy/SLA frontier.

#include <iostream>

#include "bench/harness_common.hpp"
#include "core/proactive.hpp"
#include "datacenter/simulator.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();
  const trace::PreparedWorkload workload = bench::standard_workload(db);
  const datacenter::Simulator sim(db, bench::larger_cloud());

  std::cout << "== Ablation: alpha sweep (LARGER cloud) ==\n\n";
  util::TablePrinter table({"alpha", "makespan(s)", "energy(MJ)",
                            "SLA(%)", "mean busy servers"});
  for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    core::ProactiveConfig config;
    config.alpha = alpha;
    const core::ProactiveAllocator allocator(db, config);
    const datacenter::SimMetrics metrics = sim.run(workload, allocator);
    table.add_row({util::format_fixed(alpha, 2),
                   util::format_fixed(metrics.makespan_s, 0),
                   util::format_fixed(metrics.energy_j / 1e6, 1),
                   util::format_fixed(metrics.sla_violation_pct, 2),
                   util::format_fixed(metrics.mean_busy_servers, 1)});
  }
  {
    // The parameterless energy-delay-product goal for comparison.
    core::ProactiveConfig config;
    config.goal = core::ProactiveGoal::kEnergyDelayProduct;
    const core::ProactiveAllocator allocator(db, config);
    const datacenter::SimMetrics metrics = sim.run(workload, allocator);
    table.add_row({"EDP", util::format_fixed(metrics.makespan_s, 0),
                   util::format_fixed(metrics.energy_j / 1e6, 1),
                   util::format_fixed(metrics.sla_violation_pct, 2),
                   util::format_fixed(metrics.mean_busy_servers, 1)});
  }
  table.print(std::cout);
  std::cout << "\n(the paper: differences between intermediate alphas are "
               "not significant — e.g. alpha=0.75)\n";
  return 0;
}
