/// Ablation: database accounting vs fluid ground truth, end to end.
///
/// The paper's evaluation estimates time and energy "using the
/// information of our allocation model" (database lookups per allocation
/// interval). This harness re-runs the evaluation with every server
/// simulated at phase-level fluid fidelity — the same physics the
/// database was measured from — and compares the two backends per
/// strategy. The deltas are the end-to-end modeling error of the paper's
/// methodology (mix-granularity + co-start assumption + interval
/// weighting).

#include <iostream>
#include <memory>

#include "bench/harness_common.hpp"
#include "core/proactive.hpp"
#include "datacenter/ground_truth.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace aeva;
  const modeldb::ModelDatabase& db = bench::shared_database();
  // A 3000-VM slice keeps the fluid backend quick while preserving load
  // pressure on a proportionally smaller cloud.
  const trace::PreparedWorkload workload =
      bench::standard_workload(db, 2026, 3000);
  datacenter::CloudConfig cloud;
  cloud.server_count = 18;

  const datacenter::Simulator db_sim(db, cloud);
  const datacenter::GroundTruthSimulator fluid_sim(
      db, testbed::testbed_server(), cloud);

  std::cout << "== Ablation: DB-interval accounting vs fluid ground truth "
               "(18 servers, 3k VMs) ==\n\n";
  util::TablePrinter table({"strategy", "backend", "makespan(s)",
                            "energy(MJ)", "SLA(%)", "mean busy"});
  const auto run_both = [&](const core::Allocator& strategy) {
    const datacenter::SimMetrics a = db_sim.run(workload, strategy);
    const datacenter::SimMetrics b = fluid_sim.run(workload, strategy);
    table.add_row({strategy.name(), "database",
                   util::format_fixed(a.makespan_s, 0),
                   util::format_fixed(a.energy_j / 1e6, 1),
                   util::format_fixed(a.sla_violation_pct, 2),
                   util::format_fixed(a.mean_busy_servers, 1)});
    table.add_row({strategy.name(), "fluid truth",
                   util::format_fixed(b.makespan_s, 0),
                   util::format_fixed(b.energy_j / 1e6, 1),
                   util::format_fixed(b.sla_violation_pct, 2),
                   util::format_fixed(b.mean_busy_servers, 1)});
    table.add_row({strategy.name(), "delta",
                   util::format_fixed(
                       100.0 * (b.makespan_s - a.makespan_s) / a.makespan_s,
                       1) + "%",
                   util::format_fixed(
                       100.0 * (b.energy_j - a.energy_j) / a.energy_j, 1) +
                       "%",
                   "-", "-"});
  };

  run_both(core::FirstFitAllocator(2));
  core::ProactiveConfig config;
  config.alpha = 0.5;
  run_both(core::ProactiveAllocator(db, config));

  table.print(std::cout);
  std::cout << "\nagreement within a few percent validates the paper's "
               "database-driven evaluation; the residual is the cost of "
               "collapsing phase-level dynamics into per-mix aggregate "
               "records.\n";
  return 0;
}
