/// \file fuzz_serve_snapshot.cpp
/// Fuzz target for the serve-snapshot decoder (persist/serve_snapshot).
///
/// Contract: arbitrary bytes either decode into a ServeSnapshot or are
/// rejected with a typed persist::SnapshotError (bad magic, version
/// mismatch, truncation, CRC failure, malformed payload, out-of-range
/// enums) — never UB, an untyped exception, or an unbounded allocation.
/// Accepted snapshots must survive an encode → decode round trip that
/// reproduces the identifying scalars bit for bit.

#include <cstdint>
#include <string>
#include <string_view>

#include "persist/serve_snapshot.hpp"

namespace {

void expect(bool cond, const char* what) {
  if (!cond) {
    throw std::logic_error(
        std::string("fuzz_serve_snapshot invariant failed: ") + what);
  }
}

std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  static_assert(sizeof(out) == sizeof(value));
  __builtin_memcpy(&out, &value, sizeof(out));
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  aeva::persist::ServeSnapshot snapshot;
  try {
    snapshot = aeva::persist::decode_serve_snapshot(bytes);
  } catch (const aeva::persist::SnapshotError&) {
    return 0;  // typed rejection is the contract for malformed input
  }

  // Round trip: whatever the decoder accepted must re-encode and decode
  // back to the same identifying state (bit-exact doubles included).
  const std::string encoded =
      aeva::persist::encode_serve_snapshot(snapshot);
  aeva::persist::ServeSnapshot reparsed;
  try {
    reparsed = aeva::persist::decode_serve_snapshot(encoded);
  } catch (const aeva::persist::SnapshotError&) {
    expect(false, "encoder output must decode");
  }
  expect(reparsed.stream_fingerprint == snapshot.stream_fingerprint,
         "round trip preserves stream fingerprint");
  expect(reparsed.config_fingerprint == snapshot.config_fingerprint,
         "round trip preserves config fingerprint");
  expect(bits(reparsed.now) == bits(snapshot.now),
         "round trip preserves clock bits");
  expect(reparsed.next_arrival == snapshot.next_arrival,
         "round trip preserves arrival cursor");
  expect(reparsed.next_seq == snapshot.next_seq,
         "round trip preserves event sequence counter");
  expect(reparsed.servers.size() == snapshot.servers.size(),
         "round trip preserves fleet size");
  expect(reparsed.queue.size() == snapshot.queue.size(),
         "round trip preserves queue depth");
  expect(reparsed.retries.size() == snapshot.retries.size(),
         "round trip preserves pending retries");
  expect(reparsed.residents.size() == snapshot.residents.size(),
         "round trip preserves resident groups");
  expect(reparsed.log.size() == snapshot.log.size(),
         "round trip preserves decision-log length");
  expect(reparsed.retry_rng.words == snapshot.retry_rng.words,
         "round trip preserves retry RNG position");
  expect(bits(reparsed.health.latency_ewma_s) ==
             bits(snapshot.health.latency_ewma_s),
         "round trip preserves latency EWMA bits");
  expect(reparsed.metrics.placed == snapshot.metrics.placed,
         "round trip preserves placement tally");
  expect(reparsed.metrics.rejects_by_reason ==
             snapshot.metrics.rejects_by_reason,
         "round trip preserves per-reason reject tallies");
  return 0;
}
