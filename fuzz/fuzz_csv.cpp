/// \file fuzz_csv.cpp
/// Fuzz target for the RFC-4180 CSV layer (util/csv).
///
/// Contract: arbitrary bytes either parse into a CsvTable or are rejected
/// with std::invalid_argument. Accepted tables must survive a
/// write_csv → parse_csv round trip bit-identically (header and rows);
/// any other exception type, sanitizer report, or round-trip mismatch is
/// a finding.

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/csv.hpp"

namespace {

/// Escaping throw = crash under libFuzzer / the standalone driver.
void expect(bool cond, const char* what) {
  if (!cond) {
    throw std::logic_error(std::string("fuzz_csv invariant failed: ") + what);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  // Single-row decoder on the first line.
  const std::size_t eol = text.find('\n');
  const std::string first =
      eol == std::string::npos ? text : text.substr(0, eol);
  try {
    (void)aeva::util::csv_decode_row(first);
  } catch (const std::invalid_argument&) {
    // Typed rejection is the documented behaviour for malformed rows.
  }

  // Full-document parser.
  aeva::util::CsvTable table;
  try {
    table = aeva::util::parse_csv_text(text);
  } catch (const std::invalid_argument&) {
    return 0;
  }

  if (table.header.empty()) {
    return 0;  // empty document
  }
  for (const auto& name : table.header) {
    expect(table.has_column(name), "header column not found by has_column");
  }

  std::ostringstream out;
  aeva::util::write_csv(out, table);
  const aeva::util::CsvTable again = aeva::util::parse_csv_text(out.str());
  expect(again.header == table.header, "round-trip header mismatch");
  expect(again.rows == table.rows, "round-trip rows mismatch");
  return 0;
}
