/// \file fuzz_snapshot.cpp
/// Fuzz target for the snapshot decoder (persist/snapshot).
///
/// Contract: arbitrary bytes either decode into a SimSnapshot or are
/// rejected with a typed persist::SnapshotError (bad magic, version
/// mismatch, truncation, CRC failure, malformed payload) — never UB, an
/// untyped exception, or an unbounded allocation. Accepted snapshots must
/// survive an encode → decode round trip that reproduces the identifying
/// scalars bit for bit.

#include <cstdint>
#include <string>
#include <string_view>

#include "persist/snapshot.hpp"

namespace {

void expect(bool cond, const char* what) {
  if (!cond) {
    throw std::logic_error(std::string("fuzz_snapshot invariant failed: ") +
                           what);
  }
}

std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  static_assert(sizeof(out) == sizeof(value));
  __builtin_memcpy(&out, &value, sizeof(out));
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  aeva::persist::SimSnapshot snapshot;
  try {
    snapshot = aeva::persist::decode_snapshot(bytes);
  } catch (const aeva::persist::SnapshotError&) {
    return 0;  // typed rejection is the contract for malformed input
  }

  // Round trip: whatever the decoder accepted must re-encode and decode
  // back to the same identifying state (bit-exact doubles included).
  const std::string encoded = aeva::persist::encode_snapshot(snapshot);
  aeva::persist::SimSnapshot reparsed;
  try {
    reparsed = aeva::persist::decode_snapshot(encoded);
  } catch (const aeva::persist::SnapshotError&) {
    expect(false, "encoder output must decode");
  }
  expect(reparsed.workload_fingerprint == snapshot.workload_fingerprint,
         "round trip preserves workload fingerprint");
  expect(reparsed.config_fingerprint == snapshot.config_fingerprint,
         "round trip preserves config fingerprint");
  expect(bits(reparsed.now) == bits(snapshot.now),
         "round trip preserves clock bits");
  expect(reparsed.next_job == snapshot.next_job,
         "round trip preserves job cursor");
  expect(reparsed.servers.size() == snapshot.servers.size(),
         "round trip preserves fleet size");
  expect(reparsed.running.size() == snapshot.running.size(),
         "round trip preserves in-flight VM count");
  expect(reparsed.queue == snapshot.queue,
         "round trip preserves queue contents");
  expect(bits(reparsed.metrics.energy_j) == bits(snapshot.metrics.energy_j),
         "round trip preserves energy bits");
  return 0;
}
