/// \file fuzz_failure.cpp
/// Fuzz target for the failure-script parser (datacenter/failure).
///
/// Contract: arbitrary text either parses into a list of FailureEvents or
/// is rejected with std::invalid_argument (unknown kind, wrong arity,
/// non-finite numbers, out-of-range magnitudes). Accepted scripts must
/// survive a write_failure_script → parse_failure_script round trip with
/// the same event count, kinds, and targets, and every accepted event must
/// satisfy the documented field ranges.

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "datacenter/failure.hpp"

namespace {

void expect(bool cond, const char* what) {
  if (!cond) {
    throw std::logic_error(std::string("fuzz_failure invariant failed: ") +
                           what);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  std::vector<aeva::datacenter::FailureEvent> events;
  try {
    events = aeva::datacenter::parse_failure_script(text);
  } catch (const std::invalid_argument&) {
    return 0;
  }

  // Accepted events must obey the documented ranges the parser promises.
  for (const aeva::datacenter::FailureEvent& event : events) {
    expect(event.server >= 0, "server index non-negative");
    expect(event.at_s >= 0.0, "event time non-negative");
    expect(event.duration_s >= 0.0, "duration non-negative");
    if (event.kind == aeva::datacenter::FailureKind::kDegrade) {
      expect(event.magnitude > 0.0 && event.magnitude <= 1.0,
             "degrade multiplier in (0, 1]");
    }
    if (event.kind == aeva::datacenter::FailureKind::kBrownout) {
      expect(event.magnitude > 0.0, "brownout cap positive");
    }
  }

  // Round trip: the writer's output must re-parse to the same structure.
  std::ostringstream out;
  aeva::datacenter::write_failure_script(out, events);
  std::vector<aeva::datacenter::FailureEvent> reparsed;
  try {
    reparsed = aeva::datacenter::parse_failure_script(out.str());
  } catch (const std::invalid_argument&) {
    expect(false, "writer output must re-parse");
  }
  expect(reparsed.size() == events.size(), "round trip preserves count");
  for (std::size_t i = 0; i < events.size(); ++i) {
    expect(reparsed[i].kind == events[i].kind, "round trip preserves kind");
    expect(reparsed[i].server == events[i].server,
           "round trip preserves server");
  }
  return 0;
}
