/// \file fuzz_swf.cpp
/// Fuzz target for the SWF trace parser (trace/swf).
///
/// Contract: arbitrary text either parses into an SwfTrace or is rejected
/// with std::invalid_argument (malformed field, wrong arity, non-finite
/// numeric, out-of-range integer field). Accepted traces must survive a
/// write_swf → parse_swf round trip (same job/comment counts and ids) and
/// clean() must never grow the job list.

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "trace/swf.hpp"

namespace {

void expect(bool cond, const char* what) {
  if (!cond) {
    throw std::logic_error(std::string("fuzz_swf invariant failed: ") + what);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  aeva::trace::SwfTrace trace;
  try {
    std::istringstream in(text);
    trace = aeva::trace::parse_swf(in);
  } catch (const std::invalid_argument&) {
    return 0;
  }

  // Round trip: the writer emits integral seconds, so a re-parse must
  // accept its own output and preserve the record structure.
  std::ostringstream out;
  aeva::trace::write_swf(out, trace);
  std::istringstream in2(out.str());
  const aeva::trace::SwfTrace again = aeva::trace::parse_swf(in2);
  expect(again.jobs.size() == trace.jobs.size(),
         "round-trip job count mismatch");
  expect(again.comments.size() == trace.comments.size(),
         "round-trip comment count mismatch");
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    expect(again.jobs[i].job_id == trace.jobs[i].job_id,
           "round-trip job id mismatch");
    expect(again.jobs[i].status == trace.jobs[i].status,
           "round-trip status mismatch");
  }

  // clean() only removes.
  aeva::trace::SwfTrace cleaned = trace;
  const aeva::trace::CleanStats stats = aeva::trace::clean(cleaned);
  expect(cleaned.jobs.size() + stats.total() == trace.jobs.size(),
         "clean() dropped/added jobs inconsistently with its stats");

  if (!trace.jobs.empty()) {
    (void)aeva::trace::merge_traces({trace, trace});
  }
  return 0;
}
