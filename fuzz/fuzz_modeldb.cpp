/// \file fuzz_modeldb.cpp
/// Fuzz target for the model-database CSV loader (modeldb/database,
/// Table II schema).
///
/// Input layout: a records CSV, optionally followed by a line `@@AUX@@`
/// and an auxiliary base-parameter CSV (the save()/load() pair of files
/// concatenated). Contract: any input either yields a ModelDatabase or is
/// rejected with std::invalid_argument; on success, lookups and the
/// to_csv → from_csv round trip must not crash, hang, or trip a
/// sanitizer.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "modeldb/database.hpp"
#include "util/csv.hpp"
#include "workload/profile.hpp"

namespace {

constexpr const char kAuxSeparator[] = "\n@@AUX@@\n";

/// Aux table matching the shipped model_db_aux.csv shape, used when the
/// input does not carry its own.
aeva::util::CsvTable default_aux() {
  aeva::util::CsvTable aux;
  aux.header = {"param", "value"};
  aux.rows = {{"OSPC", "4"}, {"OSEC", "8"}, {"TC", "61.6"},
              {"OSPM", "2"}, {"OSEM", "4"}, {"TM", "127.9"},
              {"OSPI", "2"}, {"OSEI", "4"}, {"TI", "227.8"}};
  return aux;
}

void expect(bool cond, const char* what) {
  if (!cond) {
    throw std::logic_error(std::string("fuzz_modeldb invariant failed: ") +
                           what);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  std::string records_text = text;
  aeva::util::CsvTable aux = default_aux();

  try {
    const std::size_t sep = text.find(kAuxSeparator);
    if (sep != std::string::npos) {
      records_text = text.substr(0, sep);
      aux = aeva::util::parse_csv_text(
          text.substr(sep + sizeof(kAuxSeparator) - 1));
    }
    const aeva::util::CsvTable records =
        aeva::util::parse_csv_text(records_text);
    const aeva::modeldb::ModelDatabase db =
        aeva::modeldb::ModelDatabase::from_csv(records, aux);

    // Exercise the lookup surface the allocator relies on.
    expect(db.size() == db.records().size(), "size() != records().size()");
    const aeva::workload::ClassCounts extent = db.grid_extent();
    expect(extent.cpu >= 0 && extent.mem >= 0 && extent.io >= 0,
           "negative grid extent");
    for (const auto& r : db.records()) {
      const aeva::modeldb::Record* hit = db.find(r.key);
      expect(hit != nullptr && hit->key == r.key,
             "find() misses a stored key");
      expect(db.measured(r.key), "measured() false for a stored key");
    }
    for (const aeva::workload::ClassCounts key :
         {aeva::workload::ClassCounts{1, 0, 0},
          aeva::workload::ClassCounts{1, 1, 1},
          aeva::workload::ClassCounts{extent.cpu + 1, extent.mem, extent.io}}) {
      const aeva::modeldb::Record est = db.estimate(key);
      expect(est.key == key, "estimate() returned a different key");
      (void)db.estimate_extrapolated(key);
    }

    // Round trip through the persistence schema. Precision loss in
    // format_fixed can push tiny values below the >0 validation, which is
    // a typed rejection, not a bug — hence inside the same try.
    const aeva::modeldb::ModelDatabase again =
        aeva::modeldb::ModelDatabase::from_csv(db.to_csv(), db.aux_to_csv());
    expect(again.size() == db.size(), "round-trip record count mismatch");
  } catch (const std::invalid_argument&) {
    return 0;
  }
  return 0;
}
