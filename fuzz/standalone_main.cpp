/// \file standalone_main.cpp
/// Corpus-replay driver for toolchains without libFuzzer (gcc).
///
/// Linked into every harness unless AEVA_SANITIZE=fuzzer with clang; runs
/// `LLVMFuzzerTestOneInput` once per file argument (directories are
/// walked recursively), or once on stdin when no arguments are given.
/// Exit status 0 means every input was processed without escaping
/// exceptions or sanitizer reports — the fuzz_corpus_* ctest contract.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::string read_all(std::istream& in) {
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void run_one(const std::string& name, const std::string& bytes) {
  std::fprintf(stderr, "standalone_fuzz: %s (%zu bytes)\n", name.c_str(),
               bytes.size());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t count = 0;
  if (argc < 2) {
    run_one("<stdin>", read_all(std::cin));
    ++count;
  }
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::vector<std::filesystem::path> files;
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) {
          files.push_back(entry.path());
        }
      }
      std::sort(files.begin(), files.end());
    } else {
      files.push_back(arg);
    }
    for (const auto& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "standalone_fuzz: cannot open %s\n",
                     file.c_str());
        return 2;
      }
      run_one(file.string(), read_all(in));
      ++count;
    }
  }
  std::fprintf(stderr, "standalone_fuzz: %zu input(s), no crashes\n", count);
  return 0;
}
