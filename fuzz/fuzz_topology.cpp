/// \file fuzz_topology.cpp
/// Fuzz target for the topology-spec parser (datacenter/topology).
///
/// Contract: arbitrary text either parses into a validated Topology or is
/// rejected with std::invalid_argument (unknown keyword, wrong arity,
/// non-integer ids, non-dense id sets, duplicate servers). Accepted
/// topologies must satisfy the structural invariants the class documents
/// — dense ids, total server→domain maps, ascending member spans — and
/// must survive a write_topology → parse_topology round trip with the
/// same rack declarations.

#include <cstdint>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>

#include "datacenter/topology.hpp"

namespace {

void expect(bool cond, const char* what) {
  if (!cond) {
    throw std::logic_error(std::string("fuzz_topology invariant failed: ") +
                           what);
  }
}

void check_invariants(const aeva::datacenter::Topology& topo) {
  expect(topo.server_count() >= 0, "server count non-negative");
  if (topo.empty()) {
    expect(topo.server_count() == 0, "empty topology has no servers");
    return;
  }
  expect(topo.rack_count() >= 1, "at least one rack");
  expect(topo.pdu_count() >= 1 && topo.pdu_count() <= topo.rack_count(),
         "pdu ids dense and rack-bounded");
  expect(topo.tor_count() >= 1 && topo.tor_count() <= topo.rack_count(),
         "tor ids dense and rack-bounded");

  // The server → domain maps must be total and consistent with the rack
  // declarations in both directions.
  int covered = 0;
  for (const aeva::datacenter::RackSpec& rack : topo.racks()) {
    expect(!rack.servers.empty(), "racks are non-empty");
    int prev = -1;
    for (const int server : rack.servers) {
      expect(server > prev, "member lists strictly ascending");
      prev = server;
      expect(server >= 0 && server < topo.server_count(),
             "server ids dense");
      expect(topo.rack_of(server) == rack.rack, "rack_of matches spec");
      expect(topo.pdu_of(server) == rack.pdu, "pdu_of matches spec");
      expect(topo.tor_of(server) == rack.tor, "tor_of matches spec");
      ++covered;
    }
  }
  expect(covered == topo.server_count(), "every server in exactly one rack");

  // Domain member spans partition the servers, ascending.
  for (const bool is_pdu : {true, false}) {
    const int domains = is_pdu ? topo.pdu_count() : topo.tor_count();
    int members = 0;
    for (int d = 0; d < domains; ++d) {
      const std::span<const int> span =
          is_pdu ? topo.servers_on_pdu(d) : topo.servers_on_tor(d);
      int prev = -1;
      for (const int server : span) {
        expect(server > prev, "domain spans strictly ascending");
        prev = server;
        expect((is_pdu ? topo.pdu_of(server) : topo.tor_of(server)) == d,
               "span membership matches server map");
      }
      members += static_cast<int>(span.size());
    }
    expect(members == topo.server_count(), "domain spans partition servers");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  aeva::datacenter::Topology topo;
  try {
    topo = aeva::datacenter::parse_topology(text);
  } catch (const std::invalid_argument&) {
    return 0;
  }

  check_invariants(topo);

  // Round trip: the writer's output must re-parse to the same structure.
  std::ostringstream out;
  aeva::datacenter::write_topology(out, topo);
  aeva::datacenter::Topology reparsed;
  try {
    reparsed = aeva::datacenter::parse_topology(out.str());
  } catch (const std::invalid_argument&) {
    expect(false, "writer output must re-parse");
  }
  expect(reparsed.rack_count() == topo.rack_count(),
         "round trip preserves rack count");
  for (int r = 0; r < topo.rack_count(); ++r) {
    const aeva::datacenter::RackSpec& a = topo.racks()[r];
    const aeva::datacenter::RackSpec& b = reparsed.racks()[r];
    expect(a.rack == b.rack && a.pdu == b.pdu && a.tor == b.tor &&
               a.servers == b.servers,
           "round trip preserves rack declarations");
  }
  return 0;
}
